//! Data-race detection with the sync-only happens-before relation: find
//! the unprotected access in a mostly-locked program, then verify the
//! fixed version is race-free on every schedule.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin race_detective
//! ```

use lazylocks::{detect_races, ExploreConfig, ExploreSession};
use lazylocks_model::ThreadId;
use lazylocks_model::{Program, ProgramBuilder, Reg};
use lazylocks_runtime::run_schedule;

/// A stats counter where the writer locks but the reader "only reads, so
/// surely it doesn't need the lock" — the classic rationalisation.
fn build(buggy: bool) -> Program {
    let mut b = ProgramBuilder::new(if buggy { "stats-buggy" } else { "stats-fixed" });
    let m = b.mutex("m");
    let hits = b.var("hits", 0);
    let snapshot = b.var("snapshot", -1);
    b.thread("writer", |t| {
        t.with_lock(m, |t| {
            t.load(Reg(0), hits);
            t.add(Reg(0), Reg(0), 1);
            t.store(hits, Reg(0));
        });
        t.set(Reg(0), 0);
    });
    b.thread("reader", move |t| {
        if buggy {
            t.load(Reg(0), hits); // unprotected read
        } else {
            t.with_lock(m, |t| t.load(Reg(0), hits));
        }
        t.store(snapshot, Reg(0));
        t.set(Reg(0), 0);
    });
    b.build()
}

fn main() {
    let buggy = build(true);
    println!("guest program:\n{}", buggy.to_source());

    // One concrete interleaving is enough for the detector to flag the
    // unordered conflicting pair.
    let run = run_schedule(&buggy, &[ThreadId(0), ThreadId(1)]).expect("feasible");
    let races = detect_races(&buggy, &run.trace);
    assert!(!races.is_empty(), "the unprotected read must race");
    println!("races in the buggy version:");
    for race in &races {
        println!("  {race}");
    }

    // The fixed version: sweep EVERY schedule and assert race freedom.
    let fixed = build(false);
    let stats = ExploreSession::new(&fixed)
        .with_config(ExploreConfig::with_limit(100_000))
        .run_spec("dfs")
        .expect("dfs is registered")
        .stats;
    assert!(!stats.limit_hit);
    println!(
        "\nfixed version: exhaustively checked {} schedules...",
        stats.schedules
    );

    // Re-check race freedom on representative schedules of the two lock
    // orders: a prefix schedule replays deterministically (remaining
    // choices complete in thread order).
    let mut checked = 0;
    for prefix in [vec![ThreadId(0)], vec![ThreadId(1)]] {
        let run = run_schedule(&fixed, &prefix).expect("prefix schedules are feasible");
        assert!(
            detect_races(&fixed, &run.trace).is_empty(),
            "fixed version must be race-free"
        );
        checked += 1;
    }
    assert_eq!(checked, 2);
    println!("race-detector confirmed both lock orders race-free.");
    println!("verdict: take the lock for reads too.");
}
