//! Quickstart: build the paper's Figure 1 program, explore it with several
//! strategies, and watch the lazy happens-before relation collapse the two
//! mutex orderings into one equivalence class.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin quickstart
//! ```

use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer, HbrCaching};
use lazylocks_examples::print_summary;
use lazylocks_model::{ProgramBuilder, Reg};

fn main() {
    // The program of Figure 1:
    //   T1: lock(m) read(x) unlock(m) write(y)
    //   T2: write(z) lock(m) read(x) unlock(m)
    let mut b = ProgramBuilder::new("figure1");
    let x = b.var("x", 0);
    let y = b.var("y", 0);
    let z = b.var("z", 0);
    let m = b.mutex("m");
    b.thread("T1", |t| {
        t.lock(m);
        t.load(Reg(0), x);
        t.unlock(m);
        t.store(y, Reg(0));
    });
    b.thread("T2", |t| {
        t.store(z, 1);
        t.lock(m);
        t.load(Reg(0), x);
        t.unlock(m);
    });
    let program = b.build();

    println!("guest program:\n{}", program.to_source());

    let config = ExploreConfig::with_limit(100_000);

    // Exhaustive enumeration: the ground truth.
    let dfs = DfsEnumeration.explore(&program, &config);
    print_summary("exhaustive DFS", &dfs);

    // DPOR explores one schedule per *regular* HBR class: the two lock
    // orders stay distinct even though they reach the same state.
    let dpor = Dpor::default().explore(&program, &config);
    print_summary("DPOR", &dpor);

    // Lazy HBR caching identifies the lock orders: a single schedule.
    let lazy = HbrCaching::lazy().explore(&program, &config);
    print_summary("lazy HBR caching", &lazy);

    assert_eq!(dpor.unique_hbrs, 2, "two regular classes (paper §2)");
    assert_eq!(dpor.unique_lazy_hbrs, 1, "one lazy class (paper §2)");
    assert_eq!(lazy.schedules, 1, "lazy caching needs a single schedule");
    println!("\nFigure 1 reproduced: 2 regular HBR classes, 1 lazy class, 1 state.");
}
