//! Quickstart: build the paper's Figure 1 program, explore it through an
//! [`ExploreSession`] with registry spec strings, watch the lazy
//! happens-before relation collapse the two mutex orderings into one
//! equivalence class — and see an observer-driven deadline cancel a DFS
//! over a much bigger program long before its schedule limit.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin quickstart
//! ```

use lazylocks::{ExploreConfig, ExploreSession, Observer, Progress, Verdict};
use lazylocks_examples::print_outcome;
use lazylocks_model::{ProgramBuilder, Reg};
use std::time::Duration;

/// A progress observer: one line every tick.
struct Ticker;

impl Observer for Ticker {
    fn on_progress(&self, p: &Progress) {
        println!(
            "   ... {} schedules so far ({} events)",
            p.schedules, p.events
        );
    }
}

fn main() {
    // The program of Figure 1:
    //   T1: lock(m) read(x) unlock(m) write(y)
    //   T2: write(z) lock(m) read(x) unlock(m)
    let mut b = ProgramBuilder::new("figure1");
    let x = b.var("x", 0);
    let y = b.var("y", 0);
    let z = b.var("z", 0);
    let m = b.mutex("m");
    b.thread("T1", |t| {
        t.lock(m);
        t.load(Reg(0), x);
        t.unlock(m);
        t.store(y, Reg(0));
    });
    b.thread("T2", |t| {
        t.store(z, 1);
        t.lock(m);
        t.load(Reg(0), x);
        t.unlock(m);
    });
    let program = b.build();

    println!("guest program:\n{}", program.to_source());

    // One session, many strategies: the registry turns spec strings into
    // explorers.
    let session = ExploreSession::new(&program).with_config(ExploreConfig::with_limit(100_000));

    // Exhaustive enumeration: the ground truth.
    let dfs = session.run_spec("dfs").unwrap();
    print_outcome("exhaustive DFS", &dfs);

    // DPOR explores one schedule per *regular* HBR class: the two lock
    // orders stay distinct even though they reach the same state.
    let dpor = session.run_spec("dpor").unwrap();
    print_outcome("DPOR", &dpor);

    // Lazy HBR caching identifies the lock orders: a single schedule.
    let lazy = session.run_spec("caching(mode=lazy)").unwrap();
    print_outcome("lazy HBR caching", &lazy);

    assert_eq!(dpor.stats.unique_hbrs, 2, "two regular classes (paper §2)");
    assert_eq!(dpor.stats.unique_lazy_hbrs, 1, "one lazy class (paper §2)");
    assert_eq!(
        lazy.stats.schedules, 1,
        "lazy caching needs a single schedule"
    );
    println!("\nFigure 1 reproduced: 2 regular HBR classes, 1 lazy class, 1 state.\n");

    // --- deadlines and cancellation -----------------------------------
    // Eight racy threads: the schedule tree dwarfs any practical budget.
    // A 50ms deadline stops the DFS cooperatively, long before its
    // (astronomical) schedule limit, and the truncation is recorded in
    // the outcome.
    let mut b = ProgramBuilder::new("wide");
    let w = b.var("w", 0);
    for i in 0..8 {
        b.thread(format!("W{i}"), |t| {
            t.load(Reg(0), w);
            t.add(Reg(0), Reg(0), 1);
            t.store(w, Reg(0));
            t.set(Reg(0), 0);
        });
    }
    let wide = b.build();

    let limit = 1_000_000_000;
    let outcome = ExploreSession::new(&wide)
        .with_config(ExploreConfig::with_limit(limit))
        .deadline(Duration::from_millis(50))
        .progress_every(20_000)
        .observe(Ticker)
        .run_spec("dfs")
        .unwrap();
    print_outcome("8-thread DFS under a 50ms deadline", &outcome);

    assert_eq!(outcome.verdict, Verdict::Cancelled);
    assert!(outcome.stats.cancelled, "truncation recorded in the stats");
    assert!(
        outcome.stats.schedules < limit,
        "stopped far before the schedule limit"
    );
    println!(
        "\ndeadline cancelled the DFS after {} schedules (limit was {limit}).",
        outcome.stats.schedules
    );
}
