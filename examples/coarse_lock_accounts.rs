//! The motivating scenario of the paper's introduction: well-engineered
//! code with a deliberately simple locking discipline (one coarse bank
//! lock) and disjoint data. Partial-order reduction with the *regular*
//! happens-before relation must still enumerate every lock order; the lazy
//! relation reaps the reduction the simple design deserves.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin coarse_lock_accounts
//! ```

use lazylocks::{ExploreConfig, ExploreSession};
use lazylocks_examples::print_outcome;
use lazylocks_suite::families::accounts;

fn main() {
    // Three tellers transfer between disjoint account pairs, all under one
    // bank-wide lock.
    let program = accounts::coarse("bank-day", 6, &[(0, 1), (2, 3), (4, 5)]);
    println!("guest program:\n{}", program.to_source());

    let session = ExploreSession::new(&program).with_config(ExploreConfig::with_limit(100_000));

    let dpor = session.run_spec("dpor").unwrap();
    print_outcome("DPOR (regular HBR)", &dpor);

    let regular = session.run_spec("caching").unwrap();
    print_outcome("HBR caching", &regular);

    let lazy = session.run_spec("caching(mode=lazy)").unwrap();
    print_outcome("lazy HBR caching", &lazy);

    let lazy_dpor = session.run_spec("lazy-dpor").unwrap();
    print_outcome("lazy DPOR prototype (paper §4)", &lazy_dpor);

    assert_eq!(dpor.stats.unique_states, 1, "disjoint transfers commute");
    assert_eq!(lazy.stats.unique_lazy_hbrs, 1);
    assert!(lazy.stats.schedules < regular.stats.schedules);
    assert!(lazy_dpor.stats.schedules < dpor.stats.schedules);
    println!(
        "\ncoarse-locked disjoint transfers: {} schedules for DPOR, {} lazily.",
        dpor.stats.schedules, lazy.stats.schedules
    );
}
