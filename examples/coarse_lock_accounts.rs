//! The motivating scenario of the paper's introduction: well-engineered
//! code with a deliberately simple locking discipline (one coarse bank
//! lock) and disjoint data. Partial-order reduction with the *regular*
//! happens-before relation must still enumerate every lock order; the lazy
//! relation reaps the reduction the simple design deserves.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin coarse_lock_accounts
//! ```

use lazylocks::{Dpor, ExploreConfig, Explorer, HbrCaching, LazyDpor};
use lazylocks_examples::print_summary;
use lazylocks_suite::families::accounts;

fn main() {
    // Three tellers transfer between disjoint account pairs, all under one
    // bank-wide lock.
    let program = accounts::coarse("bank-day", 6, &[(0, 1), (2, 3), (4, 5)]);
    println!("guest program:\n{}", program.to_source());

    let config = ExploreConfig::with_limit(100_000);

    let dpor = Dpor::default().explore(&program, &config);
    print_summary("DPOR (regular HBR)", &dpor);

    let regular = HbrCaching::regular().explore(&program, &config);
    print_summary("HBR caching", &regular);

    let lazy = HbrCaching::lazy().explore(&program, &config);
    print_summary("lazy HBR caching", &lazy);

    let lazy_dpor = LazyDpor::default().explore(&program, &config);
    print_summary("lazy DPOR prototype (paper §4)", &lazy_dpor);

    assert_eq!(dpor.unique_states, 1, "disjoint transfers commute");
    assert_eq!(lazy.unique_lazy_hbrs, 1);
    assert!(lazy.schedules < regular.schedules);
    assert!(lazy_dpor.schedules < dpor.schedules);
    println!(
        "\ncoarse-locked disjoint transfers: {} schedules for DPOR, {} lazily.",
        dpor.schedules, lazy.schedules
    );
}
