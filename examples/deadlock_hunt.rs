//! Hunting a lock-order deadlock in the dining philosophers, and verifying
//! the textbook fix — the bread-and-butter workflow of a systematic
//! concurrency tester.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin deadlock_hunt
//! ```

use lazylocks::{BugKind, Dpor, ExploreConfig, Explorer};
use lazylocks_examples::print_summary;
use lazylocks_suite::families::philosophers;

fn main() {
    // Four naive philosophers: everyone grabs the left fork first.
    let broken = philosophers::philosophers(4, false);
    let config = ExploreConfig::with_limit(100_000).stopping_on_bug();
    let stats = Dpor::default().explore(&broken, &config);
    print_summary("naive philosophers (stop on first bug)", &stats);

    let bug = stats
        .first_bug
        .as_ref()
        .expect("DPOR must reverse a fork acquisition and hit the deadlock");
    println!("\nfound: {bug}");
    match &bug.kind {
        BugKind::Deadlock { waiting } => {
            println!("cycle:");
            for (thread, mutex) in waiting {
                println!("  {thread} waits on {mutex}");
            }
        }
        other => panic!("expected a deadlock, found {other}"),
    }

    // Deterministic replay from the recorded schedule.
    let replay = bug.reproduce(&broken).expect("schedule must be feasible");
    assert!(replay.status.is_deadlock(), "replay reaches the same deadlock");
    println!("replayed the deadlock from the recorded {}-step schedule.", bug.schedule.len());

    // The ordered variant is deadlock-free under the same budget.
    let fixed = philosophers::philosophers(4, true);
    let stats = Dpor::default().explore(&fixed, &ExploreConfig::with_limit(100_000));
    print_summary("ordered philosophers (textbook fix)", &stats);
    assert_eq!(stats.deadlocks, 0, "the fix removes every deadlock");
    println!("\nordered fork acquisition verified deadlock-free over {} schedules.", stats.schedules);
}
