//! Hunting a lock-order deadlock in the dining philosophers, and verifying
//! the textbook fix — the bread-and-butter workflow of a systematic
//! concurrency tester, driven through the session API.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin deadlock_hunt
//! ```

use lazylocks::{BugKind, ExploreConfig, ExploreSession, Verdict};
use lazylocks_examples::print_outcome;
use lazylocks_suite::families::philosophers;

fn main() {
    // Four naive philosophers: everyone grabs the left fork first.
    let broken = philosophers::philosophers(4, false);
    let outcome = ExploreSession::new(&broken)
        .with_config(ExploreConfig::with_limit(100_000).stopping_on_bug())
        .run_spec("dpor")
        .expect("dpor is registered");
    print_outcome("naive philosophers (stop on first bug)", &outcome);
    assert_eq!(outcome.verdict, Verdict::BugFound);

    let bug = outcome
        .bugs
        .first()
        .expect("DPOR must reverse a fork acquisition and hit the deadlock");
    println!("\nfound: {bug}");
    match &bug.kind {
        BugKind::Deadlock { waiting } => {
            println!("cycle:");
            for (thread, mutex) in waiting {
                println!("  {thread} waits on {mutex}");
            }
        }
        other => panic!("expected a deadlock, found {other}"),
    }

    // Deterministic replay from the recorded schedule.
    let replay = bug.reproduce(&broken).expect("schedule must be feasible");
    assert!(
        replay.status.is_deadlock(),
        "replay reaches the same deadlock"
    );
    println!(
        "replayed the deadlock from the recorded {}-step schedule.",
        bug.schedule.len()
    );

    // The ordered variant is deadlock-free under the same budget.
    let fixed = philosophers::philosophers(4, true);
    let outcome = ExploreSession::new(&fixed)
        .with_config(ExploreConfig::with_limit(100_000))
        .run_spec("dpor")
        .expect("dpor is registered");
    print_outcome("ordered philosophers (textbook fix)", &outcome);
    assert_eq!(
        outcome.verdict,
        Verdict::Clean,
        "the fix removes every deadlock"
    );
    println!(
        "\nordered fork acquisition verified deadlock-free over {} schedules.",
        outcome.stats.schedules
    );
}
