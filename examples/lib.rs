//! Shared helpers for the runnable examples.

use lazylocks::{ExploreOutcome, ExploreStats};

/// Prints the standard counter block the examples share.
pub fn print_summary(label: &str, stats: &ExploreStats) {
    println!("── {label}");
    println!(
        "   schedules={} states={} lazyHBRs={} HBRs={} deadlocks={} faults={}{}{}",
        stats.schedules,
        stats.unique_states,
        stats.unique_lazy_hbrs,
        stats.unique_hbrs,
        stats.deadlocks,
        stats.faulted_schedules,
        if stats.limit_hit { " (limit)" } else { "" },
        if stats.cancelled { " (cancelled)" } else { "" },
    );
}

/// Prints a session outcome: strategy id, verdict, then the counter block.
pub fn print_outcome(label: &str, outcome: &ExploreOutcome) {
    print_summary(
        &format!("{label} [{} → {}]", outcome.strategy_id, outcome.verdict),
        &outcome.stats,
    );
}
