//! Finding and reproducing a Heisenbug (CHESS-style): a mutual-exclusion
//! violation that random testing hits rarely becomes a deterministic,
//! replayable schedule once systematic exploration finds it.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin heisenbug_replay
//! ```

use lazylocks::{ExploreConfig, ExploreSession, Verdict};
use lazylocks_examples::print_outcome;
use lazylocks_suite::families::flags;

fn main() {
    // The check-then-act handshake: both threads can pass the flag check
    // before either raises its flag.
    let program = flags::dekker(2);
    println!("guest program:\n{}", program.to_source());

    // Random walks: may or may not trip the assertion.
    let random = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(100).seeded(1))
        .run_spec("random")
        .expect("random is registered");
    print_outcome("100 random walks", &random);

    // Systematic exploration: guaranteed to find it.
    let outcome = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(100_000).stopping_on_bug())
        .run_spec("dpor")
        .expect("dpor is registered");
    print_outcome("DPOR (stop on first bug)", &outcome);
    assert_eq!(outcome.verdict, Verdict::BugFound);

    let bug = outcome
        .bugs
        .first()
        .expect("DPOR must find the TOCTOU violation");
    println!("\nfound: {bug}");

    // The schedule is a complete reproducer: replay it as many times as
    // you like and the assertion fails at the same step.
    for round in 1..=3 {
        let replay = bug.reproduce(&program).expect("feasible schedule");
        assert!(
            replay
                .faults
                .iter()
                .any(|f| f.to_string().contains("mutual exclusion")),
            "replay must re-trigger the assertion"
        );
        println!("replay #{round}: assertion re-triggered deterministically");
    }

    let schedule: Vec<String> = bug.schedule.iter().map(|t| t.to_string()).collect();
    println!("reproducer schedule: {}", schedule.join(" "));
}
