//! Finding and reproducing a Heisenbug (CHESS-style): a mutual-exclusion
//! violation that random testing hits rarely becomes a deterministic,
//! replayable schedule once systematic exploration finds it.
//!
//! Run with:
//! ```text
//! cargo run -p lazylocks-examples --bin heisenbug_replay
//! ```

use lazylocks::{Dpor, ExploreConfig, Explorer, RandomWalk};
use lazylocks_examples::print_summary;
use lazylocks_suite::families::flags;

fn main() {
    // The check-then-act handshake: both threads can pass the flag check
    // before either raises its flag.
    let program = flags::dekker(2);
    println!("guest program:\n{}", program.to_source());

    // Random walks: may or may not trip the assertion.
    let random = RandomWalk.explore(
        &program,
        &ExploreConfig::with_limit(100).seeded(1),
    );
    print_summary("100 random walks", &random);

    // Systematic exploration: guaranteed to find it.
    let config = ExploreConfig::with_limit(100_000).stopping_on_bug();
    let stats = Dpor::default().explore(&program, &config);
    print_summary("DPOR (stop on first bug)", &stats);

    let bug = stats.first_bug.expect("DPOR must find the TOCTOU violation");
    println!("\nfound: {bug}");

    // The schedule is a complete reproducer: replay it as many times as
    // you like and the assertion fails at the same step.
    for round in 1..=3 {
        let replay = bug.reproduce(&program).expect("feasible schedule");
        assert!(
            replay.faults.iter().any(|f| f.to_string().contains("mutual exclusion")),
            "replay must re-trigger the assertion"
        );
        println!("replay #{round}: assertion re-triggered deterministically");
    }

    let schedule: Vec<String> = bug.schedule.iter().map(|t| t.to_string()).collect();
    println!("reproducer schedule: {}", schedule.join(" "));
}
