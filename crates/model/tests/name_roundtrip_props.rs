//! Property tests for the identifier discipline of the `.llk` text format:
//! any program that validates must survive print → parse → print
//! **byte-identically**, whatever names its declarations carry — including
//! names that collide with instruction keywords, register spellings or the
//! pretty-printer's synthetic labels. The fuzz generator
//! (`lazylocks-fuzz`) leans on exactly this guarantee when it embeds
//! generated programs in trace artifacts.
//!
//! The corpus is drawn from a fixed-seed SplitMix64 stream (inlined here —
//! the model crate has no dependency on the core crate's `rng` module), so
//! every run checks the same programs.

use lazylocks_model::{
    is_valid_ident, is_valid_program_name, Instr, MutexDecl, Operand, Program, ProgramBuilder, Reg,
    ThreadDef, VarDecl,
};

/// Minimal SplitMix64 (same constants as `lazylocks::rng::SplitMix64`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        ((self.next() as u128 * n as u128) >> 64) as usize
    }
}

/// Identifier stems chosen to collide with every keyword and token class
/// the parser knows: instruction keywords, operator mnemonics, register
/// spellings, synthetic label names, and declaration keywords.
const HOSTILE_STEMS: &[&str] = &[
    "load", "store", "lock", "unlock", "jump", "goto", "if", "ifz", "assert", "nop", "min", "max",
    "neg", "not", "bnot", "r0", "r31", "L0", "L1", "program", "var", "mutex", "thread", "_", "_0",
    "x",
];

/// A unique, parser-valid identifier built from a hostile stem.
fn ident(rng: &mut Rng, serial: usize) -> String {
    let stem = HOSTILE_STEMS[rng.below(HOSTILE_STEMS.len())];
    // The serial suffix guarantees uniqueness across namespaces; a bare
    // stem is used for serial 0 in each program so raw keyword names are
    // exercised too.
    if serial == 0 {
        stem.to_string()
    } else {
        format!("{stem}_{serial}")
    }
}

fn random_program(rng: &mut Rng, case: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("name-props.case-{case}"));
    let n_vars = 1 + rng.below(3);
    let n_mutexes = 1 + rng.below(2);
    let mut serial = 0;
    let vars: Vec<_> = (0..n_vars)
        .map(|_| {
            let name = ident(rng, serial);
            serial += 1;
            b.var(name, rng.next() as i64 % 100)
        })
        .collect();
    let mutexes: Vec<_> = (0..n_mutexes)
        .map(|_| {
            let name = ident(rng, serial);
            serial += 1;
            b.mutex(name)
        })
        .collect();
    for _ in 0..1 + rng.below(3) {
        let name = ident(rng, serial);
        serial += 1;
        let ops = 1 + rng.below(6);
        let vars = vars.clone();
        let mutexes = mutexes.clone();
        let mut draws: Vec<u64> = Vec::new();
        for _ in 0..ops * 5 {
            draws.push(rng.next());
        }
        b.thread(name, move |t| {
            let mut d = draws.into_iter();
            let mut next = move || d.next().unwrap();
            for _ in 0..ops {
                let v = vars[next() as usize % vars.len()];
                let m = mutexes[next() as usize % mutexes.len()];
                match next() % 7 {
                    0 => t.load(Reg(0), v),
                    1 => t.store(v, (next() % 9) as i64),
                    2 => t.with_lock(m, |t| t.store(v, 1)),
                    3 => t.assert_true(Reg(0), format!("msg #{} \"q\"\n", next() % 5)),
                    4 => {
                        let out = t.label();
                        t.load(Reg(1), v);
                        t.branch_if_zero(Reg(1), out);
                        t.store(v, 2);
                        t.bind(out);
                    }
                    5 => t.un(Reg(2), lazylocks_model::UnOp::Neg, Reg(0)),
                    _ => t.nop(),
                }
            }
        });
    }
    b.build()
}

#[test]
fn hostile_identifier_corpus_round_trips_byte_identically() {
    let mut rng = Rng(0x1de9_7f00_d5ee_d001);
    for case in 0..200 {
        let program = random_program(&mut rng, case);
        let printed = program.to_source();
        let reparsed = Program::parse(&printed)
            .unwrap_or_else(|e| panic!("case {case}: printed source must parse: {e}\n{printed}"));
        assert_eq!(
            program, reparsed,
            "case {case}: round trip changed the program\n{printed}"
        );
        let reprinted = reparsed.to_source();
        assert_eq!(
            printed, reprinted,
            "case {case}: print → parse → print is not byte-identical"
        );
        assert_eq!(program.canonical_bytes(), reparsed.canonical_bytes());
    }
}

#[test]
fn ident_predicates_match_the_parser() {
    for good in ["x", "_", "_9", "load", "r0", "L0", "thread", "A_b_3"] {
        assert!(is_valid_ident(good), "{good:?} must be a valid identifier");
    }
    for bad in ["", "9x", "a-b", "a b", "a.b", "é", "a#", "a\"b", "r0!"] {
        assert!(!is_valid_ident(bad), "{bad:?} must be rejected");
    }
    for good in ["p", "paper-figure1", "fuzz-lock-heavy-3", "a.b.c", "{x}"] {
        assert!(
            is_valid_program_name(good),
            "{good:?} must be a valid program name"
        );
    }
    for bad in ["", "a b", "a#b", "a\"b", "é", "a\tb", "a\nb"] {
        assert!(
            !is_valid_program_name(bad),
            "{bad:?} must be rejected as a program name"
        );
    }
}

#[test]
fn unrepresentable_names_fail_validation_in_every_namespace() {
    use lazylocks_model::ValidateError;

    let thread = |name: &str| ThreadDef {
        name: name.to_string(),
        code: vec![Instr::Nop],
    };
    // Program name with whitespace: the `program` line cannot carry it.
    let err = Program::new("two words", vec![], vec![], vec![thread("T")]).unwrap_err();
    assert!(
        matches!(
            err,
            ValidateError::BadName {
                kind: "program",
                ..
            }
        ),
        "{err}"
    );

    // Hyphenated variable name: `check_ident` in the parser rejects it.
    let err = Program::new(
        "p",
        vec![VarDecl {
            name: "a-b".to_string(),
            init: 0,
        }],
        vec![],
        vec![thread("T")],
    )
    .unwrap_err();
    assert!(
        matches!(err, ValidateError::BadName { kind: "var", .. }),
        "{err}"
    );

    let err = Program::new(
        "p",
        vec![],
        vec![MutexDecl {
            name: "9m".to_string(),
        }],
        vec![thread("T")],
    )
    .unwrap_err();
    assert!(
        matches!(err, ValidateError::BadName { kind: "mutex", .. }),
        "{err}"
    );

    let err = Program::new("p", vec![], vec![], vec![thread("T 1")]).unwrap_err();
    assert!(
        matches!(err, ValidateError::BadName { kind: "thread", .. }),
        "{err}"
    );

    // The builder surfaces the same failure through `try_build`.
    let mut b = ProgramBuilder::new("p");
    b.var("bad name", 0);
    b.thread("T", |t| t.nop());
    let err = b.try_build().unwrap_err();
    assert!(
        matches!(err, ValidateError::BadName { kind: "var", .. }),
        "{err}"
    );
    assert!(err.to_string().contains("not representable"));
}

#[test]
fn store_into_keyword_named_variables_parses_unambiguously() {
    // The sharpest corner: a variable literally named `load` used in both
    // load and store positions, plus a register-spelled variable name.
    let mut b = ProgramBuilder::new("keywords");
    let load = b.var("load", 0);
    let r0 = b.var("r0", 1);
    b.thread("store", |t| {
        t.load(Reg(0), load);
        t.store(load, Reg(0));
        t.load(Reg(1), r0);
        t.store(r0, 3);
    });
    let p = b.build();
    let printed = p.to_source();
    let reparsed = Program::parse(&printed).unwrap();
    assert_eq!(p, reparsed, "{printed}");
    assert_eq!(printed, reparsed.to_source());
    assert!(matches!(
        reparsed.threads()[0].code[0],
        Instr::Load { dst: Reg(0), .. }
    ));
    assert!(matches!(
        reparsed.threads()[0].code[3],
        Instr::Store {
            src: Operand::Const(3),
            ..
        }
    ));
}
