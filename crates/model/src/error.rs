//! Error types for program construction, validation and parsing.

use std::fmt;

/// A structural problem detected by [`Program::validate`].
///
/// [`Program::validate`]: crate::Program::validate
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A program must have at least one thread.
    NoThreads,
    /// Jump or branch target outside the thread's code.
    BadJumpTarget {
        thread: usize,
        pc: usize,
        target: usize,
    },
    /// Register index beyond [`MAX_REGS`](crate::MAX_REGS).
    BadRegister { thread: usize, pc: usize, reg: u8 },
    /// Reference to an undeclared shared variable.
    BadVar { thread: usize, pc: usize, var: u16 },
    /// Reference to an undeclared mutex.
    BadMutex {
        thread: usize,
        pc: usize,
        mutex: u16,
    },
    /// Two declarations share a name.
    DuplicateName { name: String },
    /// A declaration name the text format cannot represent: variable,
    /// mutex and thread names must be identifiers
    /// (`[A-Za-z_][A-Za-z0-9_]*`), and the program name a non-empty run of
    /// printable ASCII without `#` or `"`. Rejecting these at validation
    /// keeps `to_source` canonical: every valid program's printed form
    /// re-parses to the same program, byte for byte.
    BadName {
        /// Which namespace the name belongs to (`"program"`, `"var"`,
        /// `"mutex"` or `"thread"`).
        kind: &'static str,
        /// The offending name.
        name: String,
    },
    /// Too many threads (vector clocks and ids use dense small indices).
    TooManyThreads { count: usize, max: usize },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoThreads => write!(f, "program has no threads"),
            ValidateError::BadJumpTarget { thread, pc, target } => write!(
                f,
                "thread {thread}, instruction {pc}: jump target {target} out of range"
            ),
            ValidateError::BadRegister { thread, pc, reg } => write!(
                f,
                "thread {thread}, instruction {pc}: register r{reg} out of range"
            ),
            ValidateError::BadVar { thread, pc, var } => write!(
                f,
                "thread {thread}, instruction {pc}: undeclared variable v{var}"
            ),
            ValidateError::BadMutex { thread, pc, mutex } => write!(
                f,
                "thread {thread}, instruction {pc}: undeclared mutex m{mutex}"
            ),
            ValidateError::DuplicateName { name } => {
                write!(f, "duplicate declaration name {name:?}")
            }
            ValidateError::BadName { kind, name } => {
                write!(
                    f,
                    "{kind} name {name:?} is not representable in the text format"
                )
            }
            ValidateError::TooManyThreads { count, max } => {
                write!(f, "program has {count} threads; the maximum is {max}")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// A syntax or resolution problem found while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_readably() {
        let e = ValidateError::BadJumpTarget {
            thread: 1,
            pc: 4,
            target: 99,
        };
        assert_eq!(
            e.to_string(),
            "thread 1, instruction 4: jump target 99 out of range"
        );
        let p = ParseError::new(12, "expected mutex name");
        assert_eq!(p.to_string(), "line 12: expected mutex name");
    }
}
