//! The [`Program`] container and its validation pass.

use crate::error::ValidateError;
use crate::ids::{MutexId, ThreadId, Value, VarId};
use crate::instr::{Instr, Operand};
use std::collections::HashSet;
use std::fmt;

/// Number of thread-private registers available to each thread.
pub const MAX_REGS: usize = 32;

/// Maximum number of threads a program may declare. Exploration cost is
/// exponential in practice, so this is generous. Tied to the
/// [`ThreadSet`](crate::ThreadSet) bitmask capacity: validation at this
/// bound is what lets every runtime thread-set operation stay a single
/// `u64` with no overflow path.
pub const MAX_THREADS: usize = crate::ThreadSet::MAX_THREADS;

/// Declaration of a shared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Human-readable name (unique within the program).
    pub name: String,
    /// Initial value at the start of every execution.
    pub init: Value,
}

/// Declaration of a mutex. Mutexes are non-reentrant and initially free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutexDecl {
    /// Human-readable name (unique within the program).
    pub name: String,
}

/// One guest thread: a name and straight-line-with-jumps code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadDef {
    /// Human-readable name (unique within the program).
    pub name: String,
    /// The thread's instructions; control flow targets index into this list.
    pub code: Vec<Instr>,
}

impl ThreadDef {
    /// Number of visible operations on the longest straight-line path, used
    /// as a rough size metric by reports. Counts visible instructions
    /// statically (loops may execute them many times).
    pub fn visible_instruction_count(&self) -> usize {
        self.code.iter().filter(|i| i.is_visible()).count()
    }
}

/// A complete guest program: declarations plus one code body per thread.
///
/// Construct with [`ProgramBuilder`](crate::ProgramBuilder) or
/// [`Program::parse`], or assemble the fields manually and call
/// [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    vars: Vec<VarDecl>,
    mutexes: Vec<MutexDecl>,
    threads: Vec<ThreadDef>,
}

impl Program {
    /// Assembles a program from parts and validates it.
    pub fn new(
        name: impl Into<String>,
        vars: Vec<VarDecl>,
        mutexes: Vec<MutexDecl>,
        threads: Vec<ThreadDef>,
    ) -> Result<Self, ValidateError> {
        let p = Program {
            name: name.into(),
            vars,
            mutexes,
            threads,
        };
        p.validate()?;
        Ok(p)
    }

    /// Parses the text format; see the [`parse`](crate::parse) module for
    /// the grammar.
    pub fn parse(source: &str) -> Result<Self, crate::ParseError> {
        crate::parse::parse_program(source)
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared-variable declarations, indexed by [`VarId`].
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// Mutex declarations, indexed by [`MutexId`].
    pub fn mutexes(&self) -> &[MutexDecl] {
        &self.mutexes
    }

    /// Thread definitions, indexed by [`ThreadId`].
    pub fn threads(&self) -> &[ThreadDef] {
        &self.threads
    }

    /// Number of threads.
    #[inline]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Iterator over all thread ids.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.threads.len()).map(ThreadId::from_index)
    }

    /// Looks up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(VarId::from_index)
    }

    /// Looks up a mutex by name.
    pub fn mutex_by_name(&self, name: &str) -> Option<MutexId> {
        self.mutexes
            .iter()
            .position(|m| m.name == name)
            .map(MutexId::from_index)
    }

    /// Looks up a thread by name.
    pub fn thread_by_name(&self, name: &str) -> Option<ThreadId> {
        self.threads
            .iter()
            .position(|t| t.name == name)
            .map(ThreadId::from_index)
    }

    /// Total number of instructions across all threads.
    pub fn instruction_count(&self) -> usize {
        self.threads.iter().map(|t| t.code.len()).sum()
    }

    /// Static count of visible instructions across all threads — an upper
    /// bound on trace length only for loop-free programs.
    pub fn visible_instruction_count(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.visible_instruction_count())
            .sum()
    }

    /// Renders the program in the text format accepted by
    /// [`Program::parse`].
    pub fn to_source(&self) -> String {
        crate::pretty::program_to_source(self)
    }

    /// The canonical byte encoding of this program, used as the substrate
    /// for program fingerprinting (trace artifacts key their validity on
    /// it).
    ///
    /// The encoding is the pretty-printed source form, which is canonical:
    /// the printer is deterministic, prints every structural field, and
    /// `parse ∘ to_source` is the structural identity (asserted by the
    /// [`pretty`](crate::pretty) tests). Consequently two programs have the
    /// same canonical bytes **iff** they are structurally equal, and a
    /// program survives a print → parse round trip with its canonical
    /// bytes — hence its fingerprint — intact.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.to_source().into_bytes()
    }

    /// Checks structural well-formedness: jump targets in range, registers
    /// within [`MAX_REGS`], variable/mutex references declared, names
    /// unique and representable in the text format, at least one thread.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.threads.is_empty() {
            return Err(ValidateError::NoThreads);
        }
        if self.threads.len() > MAX_THREADS {
            return Err(ValidateError::TooManyThreads {
                count: self.threads.len(),
                max: MAX_THREADS,
            });
        }

        // Name discipline mirrors the parser exactly: what validates here
        // is what `to_source` can print and `parse` will read back — the
        // round trip trace artifacts and the fuzz generator rely on.
        if !is_valid_program_name(&self.name) {
            return Err(ValidateError::BadName {
                kind: "program",
                name: self.name.clone(),
            });
        }
        let mut names = HashSet::new();
        for (kind, name) in self
            .vars
            .iter()
            .map(|v| ("var", &v.name))
            .chain(self.mutexes.iter().map(|m| ("mutex", &m.name)))
            .chain(self.threads.iter().map(|t| ("thread", &t.name)))
        {
            if !is_valid_ident(name) {
                return Err(ValidateError::BadName {
                    kind,
                    name: name.clone(),
                });
            }
            if !names.insert(name.as_str()) {
                return Err(ValidateError::DuplicateName { name: name.clone() });
            }
        }

        for (tix, thread) in self.threads.iter().enumerate() {
            for (pc, instr) in thread.code.iter().enumerate() {
                self.validate_instr(tix, pc, instr, thread.code.len())?;
            }
        }
        Ok(())
    }

    fn validate_instr(
        &self,
        thread: usize,
        pc: usize,
        instr: &Instr,
        code_len: usize,
    ) -> Result<(), ValidateError> {
        let check_reg = |reg: crate::Reg| -> Result<(), ValidateError> {
            if reg.index() >= MAX_REGS {
                Err(ValidateError::BadRegister {
                    thread,
                    pc,
                    reg: reg.0,
                })
            } else {
                Ok(())
            }
        };
        let check_operand = |op: Operand| -> Result<(), ValidateError> {
            match op {
                Operand::Reg(r) => check_reg(r),
                Operand::Const(_) => Ok(()),
            }
        };
        let check_var = |var: VarId| -> Result<(), ValidateError> {
            if var.index() >= self.vars.len() {
                Err(ValidateError::BadVar {
                    thread,
                    pc,
                    var: var.0,
                })
            } else {
                Ok(())
            }
        };
        let check_mutex = |mutex: MutexId| -> Result<(), ValidateError> {
            if mutex.index() >= self.mutexes.len() {
                Err(ValidateError::BadMutex {
                    thread,
                    pc,
                    mutex: mutex.0,
                })
            } else {
                Ok(())
            }
        };
        let check_target = |target: usize| -> Result<(), ValidateError> {
            // A target equal to code_len is allowed: it means "jump to end"
            // (thread termination), which the builder uses for forward exits.
            if target > code_len {
                Err(ValidateError::BadJumpTarget { thread, pc, target })
            } else {
                Ok(())
            }
        };

        match instr {
            Instr::Load { dst, var } => {
                check_reg(*dst)?;
                check_var(*var)
            }
            Instr::Store { var, src } => {
                check_var(*var)?;
                check_operand(*src)
            }
            Instr::Lock(m) | Instr::Unlock(m) => check_mutex(*m),
            Instr::Set { dst, src } => {
                check_reg(*dst)?;
                check_operand(*src)
            }
            Instr::Bin { dst, lhs, rhs, .. } => {
                check_reg(*dst)?;
                check_operand(*lhs)?;
                check_operand(*rhs)
            }
            Instr::Un { dst, src, .. } => {
                check_reg(*dst)?;
                check_operand(*src)
            }
            Instr::Jump { target } => check_target(*target),
            Instr::Branch { cond, target, .. } => {
                check_operand(*cond)?;
                check_target(*target)
            }
            Instr::Assert { cond, .. } => check_operand(*cond),
            Instr::Nop => Ok(()),
        }
    }
}

/// Is `s` an identifier the text format accepts for variable, mutex and
/// thread names? The rule is the parser's: `[A-Za-z_][A-Za-z0-9_]*`.
pub fn is_valid_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        _ => false,
    }
}

/// Is `s` a program name the text format can carry? Program names are a
/// single token on the `program` line, so any non-empty run of printable
/// ASCII works as long as it contains no whitespace, no `#` (the comment
/// marker) and no `"` (the string-literal delimiter the comment stripper
/// honours). Benchmark names such as `paper-figure1` remain valid.
pub fn is_valid_program_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_graphic() && c != '#' && c != '"')
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;

    fn thread(name: &str, code: Vec<Instr>) -> ThreadDef {
        ThreadDef {
            name: name.to_string(),
            code,
        }
    }

    fn var(name: &str, init: Value) -> VarDecl {
        VarDecl {
            name: name.to_string(),
            init,
        }
    }

    #[test]
    fn empty_thread_list_rejected() {
        let err = Program::new("p", vec![], vec![], vec![]).unwrap_err();
        assert_eq!(err, ValidateError::NoThreads);
    }

    #[test]
    fn minimal_program_validates() {
        let p = Program::new("p", vec![], vec![], vec![thread("T", vec![Instr::Nop])]).unwrap();
        assert_eq!(p.thread_count(), 1);
        assert_eq!(p.instruction_count(), 1);
        assert_eq!(p.visible_instruction_count(), 0);
    }

    #[test]
    fn undeclared_variable_rejected() {
        let err = Program::new(
            "p",
            vec![],
            vec![],
            vec![thread(
                "T",
                vec![Instr::Load {
                    dst: Reg(0),
                    var: VarId(0),
                }],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, ValidateError::BadVar { var: 0, .. }));
    }

    #[test]
    fn undeclared_mutex_rejected() {
        let err = Program::new(
            "p",
            vec![],
            vec![],
            vec![thread("T", vec![Instr::Lock(MutexId(3))])],
        )
        .unwrap_err();
        assert!(matches!(err, ValidateError::BadMutex { mutex: 3, .. }));
    }

    #[test]
    fn jump_past_end_rejected_but_to_end_allowed() {
        // Target == len is "jump to end": fine.
        let ok = Program::new(
            "p",
            vec![],
            vec![],
            vec![thread("T", vec![Instr::Jump { target: 1 }])],
        );
        assert!(ok.is_ok());
        // Target > len: rejected.
        let err = Program::new(
            "p",
            vec![],
            vec![],
            vec![thread("T", vec![Instr::Jump { target: 2 }])],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ValidateError::BadJumpTarget { target: 2, .. }
        ));
    }

    #[test]
    fn register_out_of_range_rejected() {
        let err = Program::new(
            "p",
            vec![var("x", 0)],
            vec![],
            vec![thread(
                "T",
                vec![Instr::Load {
                    dst: Reg(MAX_REGS as u8),
                    var: VarId(0),
                }],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, ValidateError::BadRegister { .. }));
    }

    #[test]
    fn duplicate_names_rejected_across_namespaces() {
        let err = Program::new(
            "p",
            vec![var("x", 0)],
            vec![MutexDecl {
                name: "x".to_string(),
            }],
            vec![thread("T", vec![Instr::Nop])],
        )
        .unwrap_err();
        assert!(matches!(err, ValidateError::DuplicateName { .. }));
    }

    #[test]
    fn name_lookups() {
        let p = Program::new(
            "p",
            vec![var("x", 1), var("y", 2)],
            vec![MutexDecl {
                name: "m".to_string(),
            }],
            vec![thread("T0", vec![Instr::Nop]), thread("T1", vec![])],
        )
        .unwrap();
        assert_eq!(p.var_by_name("y"), Some(VarId(1)));
        assert_eq!(p.var_by_name("z"), None);
        assert_eq!(p.mutex_by_name("m"), Some(MutexId(0)));
        assert_eq!(p.thread_by_name("T1"), Some(ThreadId(1)));
        assert_eq!(p.thread_ids().count(), 2);
    }

    #[test]
    fn canonical_bytes_survive_source_round_trip() {
        let p = Program::new(
            "canon",
            vec![var("x", 3)],
            vec![MutexDecl {
                name: "m".to_string(),
            }],
            vec![thread(
                "T",
                vec![
                    Instr::Lock(MutexId(0)),
                    Instr::Store {
                        var: VarId(0),
                        src: Operand::Const(7),
                    },
                    Instr::Unlock(MutexId(0)),
                ],
            )],
        )
        .unwrap();
        let reparsed = Program::parse(&p.to_source()).unwrap();
        assert_eq!(p.canonical_bytes(), reparsed.canonical_bytes());

        // Any structural change perturbs the canonical bytes.
        let renamed = Program::new(
            "canon2",
            p.vars().to_vec(),
            p.mutexes().to_vec(),
            p.threads().to_vec(),
        )
        .unwrap();
        assert_ne!(p.canonical_bytes(), renamed.canonical_bytes());
    }

    #[test]
    fn operand_register_checked_in_all_instruction_forms() {
        let bad = Operand::Reg(Reg(200));
        let cases: Vec<Instr> = vec![
            Instr::Store {
                var: VarId(0),
                src: bad,
            },
            Instr::Set {
                dst: Reg(0),
                src: bad,
            },
            Instr::Bin {
                dst: Reg(0),
                op: crate::BinOp::Add,
                lhs: bad,
                rhs: Operand::Const(0),
            },
            Instr::Un {
                dst: Reg(0),
                op: crate::UnOp::Neg,
                src: bad,
            },
            Instr::Branch {
                cond: bad,
                target: 0,
                when_zero: false,
            },
            Instr::Assert {
                cond: bad,
                msg: String::new(),
            },
        ];
        for instr in cases {
            let err = Program::new(
                "p",
                vec![var("x", 0)],
                vec![],
                vec![thread("T", vec![instr.clone()])],
            )
            .unwrap_err();
            assert!(
                matches!(err, ValidateError::BadRegister { .. }),
                "{instr:?} should be rejected"
            );
        }
    }
}
