//! Typed identifiers for the guest-program model.
//!
//! All identifiers are small dense indices into the owning [`Program`]'s
//! declaration tables, wrapped in newtypes so they cannot be confused with
//! one another.
//!
//! [`Program`]: crate::Program

use std::fmt;

/// The scalar value type of the guest machine. All shared variables and
//  registers hold `Value`s.
pub type Value = i64;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u16);

        impl $name {
            /// The identifier as a dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds the identifier from a dense index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in a `u16`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u16::MAX as usize, concat!(stringify!($name), " overflow"));
                $name(index as u16)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A guest thread, identified by its index in [`Program::threads`].
    ///
    /// [`Program::threads`]: crate::Program::threads
    ThreadId,
    "t"
);

id_type!(
    /// A shared variable, identified by its index in [`Program::vars`].
    ///
    /// [`Program::vars`]: crate::Program::vars
    VarId,
    "v"
);

id_type!(
    /// A mutex, identified by its index in [`Program::mutexes`].
    ///
    /// [`Program::mutexes`]: crate::Program::mutexes
    MutexId,
    "m"
);

/// A thread-private register. Each thread has [`MAX_REGS`] registers, all
/// initially zero.
///
/// [`MAX_REGS`]: crate::MAX_REGS
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The register as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_indices() {
        let t = ThreadId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(format!("{t}"), "t7");
        let v = VarId::from_index(0);
        assert_eq!(format!("{v:?}"), "v0");
        let m = MutexId::from_index(3);
        assert_eq!(format!("{m}"), "m3");
        let r = Reg(5);
        assert_eq!(r.index(), 5);
        assert_eq!(format!("{r}"), "r5");
    }

    #[test]
    #[should_panic(expected = "ThreadId overflow")]
    fn thread_id_overflow_panics() {
        let _ = ThreadId::from_index(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(VarId(0) < VarId(9));
    }
}
