//! Guest-program model for systematic concurrency testing.
//!
//! This crate defines the *programs under test* explored by the `lazylocks`
//! engines. A program is a fixed set of threads, each a small register
//! machine over:
//!
//! * **shared variables** (`var x = 0`) — reads and writes are *visible*
//!   events, the `read(x)` / `write(x)` of the paper's §2 model;
//! * **mutexes** (`mutex m`) — `lock` / `unlock` are visible events with
//!   blocking acquire semantics;
//! * **registers** — thread-private scalars; arithmetic, moves, branches and
//!   assertions over registers are *invisible* (local) instructions that the
//!   scheduler never interleaves on.
//!
//! The event alphabet therefore matches the paper exactly: `read(x)`,
//! `write(x)`, `lock(m)`, `unlock(m)`.
//!
//! Three ways to obtain a [`Program`]:
//!
//! 1. the fluent [`ProgramBuilder`] DSL (used by the benchmark suite),
//! 2. the text format via [`Program::parse`] (see [`parse`] for the grammar),
//! 3. constructing [`Program`] pieces directly and calling
//!    [`Program::validate`].
//!
//! ```
//! use lazylocks_model::{ProgramBuilder, Operand, Reg};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let x = b.var("x", 0);
//! let m = b.mutex("m");
//! b.thread("T1", |t| {
//!     t.lock(m);
//!     t.load(Reg(0), x);
//!     t.add(Reg(0), Operand::Reg(Reg(0)), Operand::Const(1));
//!     t.store(x, Operand::Reg(Reg(0)));
//!     t.unlock(m);
//! });
//! b.thread("T2", |t| {
//!     t.lock(m);
//!     t.store(x, Operand::Const(10));
//!     t.unlock(m);
//! });
//! let program = b.build();
//! assert_eq!(program.threads().len(), 2);
//! ```

mod builder;
mod error;
mod ids;
mod instr;
pub mod parse;
mod pretty;
mod program;
mod thread_set;

pub use builder::{Label, ProgramBuilder, ThreadBuilder};
pub use error::{ParseError, ValidateError};
pub use ids::{MutexId, Reg, ThreadId, Value, VarId};
pub use instr::{BinOp, Instr, Operand, UnOp, VisibleKind};
pub use program::{
    is_valid_ident, is_valid_program_name, MutexDecl, Program, ThreadDef, VarDecl, MAX_REGS,
};
pub use thread_set::ThreadSet;
