//! Pretty-printer: renders a [`Program`] in the text format accepted by
//! [`Program::parse`], such that parsing the output reproduces the program
//! exactly (label *names* are synthesised, but resolve to the same targets).

use crate::instr::Instr;
use crate::program::Program;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Renders `program` as parseable source text.
pub fn program_to_source(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", program.name());
    for v in program.vars() {
        let _ = writeln!(out, "var {} = {}", v.name, v.init);
    }
    for m in program.mutexes() {
        let _ = writeln!(out, "mutex {}", m.name);
    }
    for thread in program.threads() {
        let _ = writeln!(out);
        let _ = writeln!(out, "thread {} {{", thread.name);

        // Collect jump targets and give each a synthetic label.
        let mut labels: BTreeMap<usize, String> = BTreeMap::new();
        for instr in &thread.code {
            if let Instr::Jump { target } | Instr::Branch { target, .. } = instr {
                let next = labels.len();
                labels.entry(*target).or_insert_with(|| format!("L{next}"));
            }
        }

        for (pc, instr) in thread.code.iter().enumerate() {
            if let Some(label) = labels.get(&pc) {
                let _ = writeln!(out, "{label}:");
            }
            let _ = writeln!(out, "  {}", render_instr(program, instr, &labels));
        }
        if let Some(label) = labels.get(&thread.code.len()) {
            let _ = writeln!(out, "{label}:");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn render_instr(program: &Program, instr: &Instr, labels: &BTreeMap<usize, String>) -> String {
    let var_name = |v: crate::VarId| program.vars()[v.index()].name.as_str();
    let mutex_name = |m: crate::MutexId| program.mutexes()[m.index()].name.as_str();
    match instr {
        Instr::Load { dst, var } => format!("{dst} = load {}", var_name(*var)),
        Instr::Store { var, src } => format!("store {} = {src}", var_name(*var)),
        Instr::Lock(m) => format!("lock {}", mutex_name(*m)),
        Instr::Unlock(m) => format!("unlock {}", mutex_name(*m)),
        Instr::Set { dst, src } => format!("{dst} = {src}"),
        Instr::Bin { dst, op, lhs, rhs } => format!("{dst} = {lhs} {} {rhs}", op.token()),
        Instr::Un { dst, op, src } => format!("{dst} = {} {src}", op.token()),
        Instr::Jump { target } => format!("jump {}", labels[target]),
        Instr::Branch {
            cond,
            target,
            when_zero,
        } => {
            let kw = if *when_zero { "ifz" } else { "if" };
            format!("{kw} {cond} goto {}", labels[target])
        }
        Instr::Assert { cond, msg } => format!("assert {cond} \"{}\"", escape_msg(msg)),
        Instr::Nop => "nop".to_string(),
    }
}

/// Escapes an assert message for the text format, so that arbitrary
/// builder-constructed messages (embedded quotes, backslashes, newlines)
/// survive the print → parse round trip.
fn escape_msg(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    for c in msg.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Operand, Program, ProgramBuilder, Reg};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new("round_trip");
        let x = b.var("x", 5);
        let y = b.var("y", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
            });
            let done = t.label();
            t.branch_if_zero(Reg(0), done);
            t.store(y, 1);
            t.bind(done);
            t.assert_true(Operand::Const(1), "always fine");
        });
        b.thread("T2", |t| {
            let top = t.here();
            t.load(Reg(0), y);
            t.branch_if(Reg(0), top);
            t.nop();
        });
        b.build()
    }

    #[test]
    fn round_trip_parse_of_pretty_output() {
        let p = sample_program();
        let src = p.to_source();
        let reparsed = Program::parse(&src).expect("pretty output must parse");
        assert_eq!(
            p, reparsed,
            "pretty-print / parse round trip changed the program:\n{src}"
        );
    }

    #[test]
    fn pretty_output_contains_declarations() {
        let src = sample_program().to_source();
        assert!(src.contains("program round_trip"));
        assert!(src.contains("var x = 5"));
        assert!(src.contains("mutex m"));
        assert!(src.contains("thread T1 {"));
        assert!(src.contains("assert 1 \"always fine\""));
    }

    #[test]
    fn hostile_assert_messages_round_trip() {
        // Quotes, backslashes, newlines, tabs, '#' (the comment marker)
        // and runs of spaces must all survive print → parse — trace
        // artifacts embed programs as source and rely on it.
        let messages = [
            "with \"embedded quotes\"",
            "back\\slash and trailing \\",
            "multi\nline\tmessage\r",
            "not # a comment",
            "spaced    out",
            "",
        ];
        let mut b = ProgramBuilder::new("hostile");
        b.thread("T", |t| {
            for msg in messages {
                t.assert_true(Operand::Const(1), msg);
            }
        });
        let p = b.build();
        let reparsed = Program::parse(&p.to_source()).expect("escaped output must parse");
        assert_eq!(
            p,
            reparsed,
            "assert-message round trip changed the program:\n{}",
            p.to_source()
        );
    }

    #[test]
    fn bad_escapes_are_rejected() {
        let err = Program::parse("program p\nthread T {\n assert 1 \"bad \\q\"\n}\n").unwrap_err();
        assert!(err.to_string().contains("invalid escape"));
        let err = Program::parse("program p\nthread T {\n assert 1 \"bad \\\"\n}\n").unwrap_err();
        assert!(err.to_string().contains("backslash") || err.to_string().contains("quoted"));
    }

    #[test]
    fn display_matches_to_source() {
        let p = sample_program();
        assert_eq!(format!("{p}"), p.to_source());
    }

    #[test]
    fn end_of_body_label_round_trips() {
        let mut b = ProgramBuilder::new("end_label");
        b.thread("T", |t| {
            let end = t.label();
            t.jump(end);
            t.nop();
            t.bind(end);
        });
        let p = b.build();
        let reparsed = Program::parse(&p.to_source()).unwrap();
        assert_eq!(p, reparsed);
    }
}
