//! Fluent construction of guest programs.
//!
//! [`ProgramBuilder`] declares shared state and threads; each thread body is
//! built through a [`ThreadBuilder`] closure with labelled control flow and
//! convenience emitters for common shapes (critical sections, bounded spins,
//! unrolled repetition).

use crate::ids::{MutexId, Reg, ThreadId, Value, VarId};
use crate::instr::{BinOp, Instr, Operand, UnOp};
use crate::program::{MutexDecl, Program, ThreadDef, VarDecl, MAX_REGS};
use crate::ValidateError;

/// A forward-referenceable position in a thread's code. Create with
/// [`ThreadBuilder::label`], place with [`ThreadBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builder for a [`Program`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    vars: Vec<VarDecl>,
    mutexes: Vec<MutexDecl>,
    threads: Vec<ThreadDef>,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            vars: Vec::new(),
            mutexes: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Declares a shared variable with an initial value.
    pub fn var(&mut self, name: impl Into<String>, init: Value) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(VarDecl {
            name: name.into(),
            init,
        });
        id
    }

    /// Declares `count` shared variables named `{prefix}0..{prefix}{count-1}`.
    pub fn var_array(&mut self, prefix: &str, count: usize, init: Value) -> Vec<VarId> {
        (0..count)
            .map(|i| self.var(format!("{prefix}{i}"), init))
            .collect()
    }

    /// Declares a mutex.
    pub fn mutex(&mut self, name: impl Into<String>) -> MutexId {
        let id = MutexId::from_index(self.mutexes.len());
        self.mutexes.push(MutexDecl { name: name.into() });
        id
    }

    /// Declares `count` mutexes named `{prefix}0..{prefix}{count-1}`.
    pub fn mutex_array(&mut self, prefix: &str, count: usize) -> Vec<MutexId> {
        (0..count)
            .map(|i| self.mutex(format!("{prefix}{i}")))
            .collect()
    }

    /// Adds a thread whose body is emitted by `body`.
    pub fn thread(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut ThreadBuilder),
    ) -> ThreadId {
        let id = ThreadId::from_index(self.threads.len());
        let mut tb = ThreadBuilder::new();
        body(&mut tb);
        self.threads.push(tb.finish(name.into()));
        id
    }

    /// Finishes and validates the program.
    ///
    /// # Panics
    /// Panics if validation fails — builder-produced programs are
    /// structurally correct unless ids from a *different* builder were mixed
    /// in, which is a programming error.
    pub fn build(self) -> Program {
        self.try_build().expect("builder produced invalid program")
    }

    /// Finishes the program, returning validation errors instead of
    /// panicking.
    pub fn try_build(self) -> Result<Program, ValidateError> {
        Program::new(self.name, self.vars, self.mutexes, self.threads)
    }
}

/// Emits the body of a single thread.
///
/// Register discipline: registers you name explicitly (`Reg(k)`) and
/// registers from [`alloc_reg`](Self::alloc_reg) can be mixed freely —
/// `alloc_reg` always returns a register strictly above every register the
/// body has referenced so far.
#[derive(Debug)]
pub struct ThreadBuilder {
    code: Vec<Instr>,
    /// Resolved pc for each label, if bound.
    labels: Vec<Option<usize>>,
    /// Instructions whose jump target awaits label resolution.
    fixups: Vec<(usize, Label)>,
    /// One more than the highest register index referenced so far.
    reg_high_water: u8,
}

impl ThreadBuilder {
    fn new() -> Self {
        ThreadBuilder {
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            reg_high_water: 0,
        }
    }

    fn note_reg(&mut self, r: Reg) {
        if r.0 + 1 > self.reg_high_water {
            self.reg_high_water = r.0 + 1;
        }
    }

    fn note_operand(&mut self, op: Operand) {
        if let Operand::Reg(r) = op {
            self.note_reg(r);
        }
    }

    /// Returns a fresh register above everything referenced so far.
    ///
    /// # Panics
    /// Panics if the thread would need more than [`MAX_REGS`] registers.
    pub fn alloc_reg(&mut self) -> Reg {
        assert!(
            (self.reg_high_water as usize) < MAX_REGS,
            "thread exceeds {MAX_REGS} registers"
        );
        let r = Reg(self.reg_high_water);
        self.reg_high_water += 1;
        r
    }

    // --- visible operations -------------------------------------------------

    /// Emits `lock m`.
    pub fn lock(&mut self, m: MutexId) {
        self.code.push(Instr::Lock(m));
    }

    /// Emits `unlock m`.
    pub fn unlock(&mut self, m: MutexId) {
        self.code.push(Instr::Unlock(m));
    }

    /// Emits `dst = load var`.
    pub fn load(&mut self, dst: Reg, var: VarId) {
        self.note_reg(dst);
        self.code.push(Instr::Load { dst, var });
    }

    /// Emits `store var = src`.
    pub fn store(&mut self, var: VarId, src: impl Into<Operand>) {
        let src = src.into();
        self.note_operand(src);
        self.code.push(Instr::Store { var, src });
    }

    // --- local operations ---------------------------------------------------

    /// Emits `dst = src`.
    pub fn set(&mut self, dst: Reg, src: impl Into<Operand>) {
        let src = src.into();
        self.note_reg(dst);
        self.note_operand(src);
        self.code.push(Instr::Set { dst, src });
    }

    /// Emits `dst = lhs op rhs`.
    pub fn bin(&mut self, dst: Reg, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        let (lhs, rhs) = (lhs.into(), rhs.into());
        self.note_reg(dst);
        self.note_operand(lhs);
        self.note_operand(rhs);
        self.code.push(Instr::Bin { dst, op, lhs, rhs });
    }

    /// Emits `dst = lhs + rhs`.
    pub fn add(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(dst, BinOp::Add, lhs, rhs);
    }

    /// Emits `dst = lhs - rhs`.
    pub fn sub(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(dst, BinOp::Sub, lhs, rhs);
    }

    /// Emits `dst = lhs * rhs`.
    pub fn mul(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(dst, BinOp::Mul, lhs, rhs);
    }

    /// Emits `dst = (lhs == rhs)`.
    pub fn eq(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(dst, BinOp::Eq, lhs, rhs);
    }

    /// Emits `dst = (lhs != rhs)`.
    pub fn ne(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(dst, BinOp::Ne, lhs, rhs);
    }

    /// Emits `dst = (lhs < rhs)`.
    pub fn lt(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(dst, BinOp::Lt, lhs, rhs);
    }

    /// Emits `dst = (lhs >= rhs)`.
    pub fn ge(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(dst, BinOp::Ge, lhs, rhs);
    }

    /// Emits `dst = op src`.
    pub fn un(&mut self, dst: Reg, op: UnOp, src: impl Into<Operand>) {
        let src = src.into();
        self.note_reg(dst);
        self.note_operand(src);
        self.code.push(Instr::Un { dst, op, src });
    }

    /// Emits a no-op (handy as a label anchor).
    pub fn nop(&mut self) {
        self.code.push(Instr::Nop);
    }

    /// Emits `assert cond "msg"` — fails the thread when `cond` is zero.
    pub fn assert_true(&mut self, cond: impl Into<Operand>, msg: impl Into<String>) {
        let cond = cond.into();
        self.note_operand(cond);
        self.code.push(Instr::Assert {
            cond,
            msg: msg.into(),
        });
    }

    /// Emits `scratch = (lhs == rhs); assert scratch` using a fresh scratch
    /// register.
    pub fn assert_eq(
        &mut self,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        msg: impl Into<String>,
    ) {
        let scratch = self.alloc_reg();
        self.bin(scratch, BinOp::Eq, lhs, rhs);
        self.assert_true(scratch, msg);
    }

    // --- control flow -------------------------------------------------------

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.labels.len());
        self.labels.push(None);
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice in thread body"
        );
        self.labels[label.0] = Some(self.code.len());
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Jump { target: usize::MAX });
    }

    /// Emits a jump to `label` taken when `cond` is non-zero.
    pub fn branch_if(&mut self, cond: impl Into<Operand>, label: Label) {
        let cond = cond.into();
        self.note_operand(cond);
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Branch {
            cond,
            target: usize::MAX,
            when_zero: false,
        });
    }

    /// Emits a jump to `label` taken when `cond` is zero.
    pub fn branch_if_zero(&mut self, cond: impl Into<Operand>, label: Label) {
        let cond = cond.into();
        self.note_operand(cond);
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Branch {
            cond,
            target: usize::MAX,
            when_zero: true,
        });
    }

    // --- composite emitters ---------------------------------------------------

    /// Emits `lock m; body; unlock m`.
    pub fn with_lock(&mut self, m: MutexId, body: impl FnOnce(&mut Self)) {
        self.lock(m);
        body(self);
        self.unlock(m);
    }

    /// Statically unrolls `body` `n` times, passing the iteration index.
    pub fn repeat(&mut self, n: usize, mut body: impl FnMut(&mut Self, usize)) {
        for i in 0..n {
            body(self, i);
        }
    }

    /// Emits `var := var + delta` under no lock (a read and a write — the
    /// classic racy increment).
    pub fn fetch_add_racy(&mut self, var: VarId, delta: Value) {
        let r = self.alloc_reg();
        self.load(r, var);
        self.add(r, r, delta);
        self.store(var, r);
    }

    /// Emits a *bounded* spin: re-reads `var` up to `max_tries` times until
    /// it equals `expected`, then gives up and jumps to `give_up` (which the
    /// caller binds). Keeps all executions finite, which the exploration
    /// engines rely on.
    pub fn spin_until_eq_bounded(
        &mut self,
        var: VarId,
        expected: Value,
        max_tries: usize,
        give_up: Label,
    ) {
        let val = self.alloc_reg();
        let hit = self.label();
        for _ in 0..max_tries {
            self.load(val, var);
            self.eq(val, val, expected);
            self.branch_if(val, hit);
        }
        self.jump(give_up);
        self.bind(hit);
    }

    fn finish(mut self, name: String) -> ThreadDef {
        let end = self.code.len();
        for (pc, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("unbound label used at instruction {pc} of {name:?}"));
            match &mut self.code[pc] {
                Instr::Jump { target: t } | Instr::Branch { target: t, .. } => *t = target,
                other => unreachable!("fixup points at non-jump {other:?}"),
            }
        }
        // Labels bound at the very end of the body resolve to `end`, which
        // the validator accepts as "jump to termination".
        debug_assert!(self
            .code
            .iter()
            .all(|i| !matches!(i, Instr::Jump { target } | Instr::Branch { target, .. } if *target == usize::MAX && end != usize::MAX)));
        ThreadDef {
            name,
            code: self.code,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_thread_program_builds() {
        let mut b = ProgramBuilder::new("demo");
        let x = b.var("x", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
            });
        });
        b.thread("T2", |t| {
            t.with_lock(m, |t| t.store(x, 10));
        });
        let p = b.build();
        assert_eq!(p.thread_count(), 2);
        assert_eq!(p.threads()[0].code.len(), 5);
        assert_eq!(p.threads()[0].visible_instruction_count(), 4);
        assert_eq!(p.threads()[1].visible_instruction_count(), 3);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new("loops");
        let x = b.var("x", 0);
        b.thread("T", |t| {
            let top = t.here(); // backward target
            let out = t.label(); // forward target
            t.load(Reg(0), x);
            t.branch_if(Reg(0), out);
            t.store(x, 1);
            t.jump(top);
            t.bind(out);
        });
        let p = b.build();
        let code = &p.threads()[0].code;
        assert_eq!(
            code[1],
            Instr::Branch {
                cond: Operand::Reg(Reg(0)),
                target: 4, // bound at end
                when_zero: false
            }
        );
        assert_eq!(code[3], Instr::Jump { target: 0 });
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("bad");
        b.thread("T", |t| {
            let l = t.label();
            t.jump(l);
            // never bound
        });
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("bad");
        b.thread("T", |t| {
            let l = t.label();
            t.bind(l);
            t.bind(l);
        });
    }

    #[test]
    fn alloc_reg_avoids_explicit_registers() {
        let mut b = ProgramBuilder::new("regs");
        let x = b.var("x", 0);
        b.thread("T", |t| {
            t.load(Reg(4), x); // explicit high register
            let r = t.alloc_reg();
            assert_eq!(r, Reg(5));
            let r2 = t.alloc_reg();
            assert_eq!(r2, Reg(6));
        });
        b.build();
    }

    #[test]
    fn var_and_mutex_arrays_number_sequentially() {
        let mut b = ProgramBuilder::new("arrays");
        let vs = b.var_array("slot", 3, 7);
        let ms = b.mutex_array("lk", 2);
        b.thread("T", |_| {});
        let p = b.build();
        assert_eq!(vs, vec![VarId(0), VarId(1), VarId(2)]);
        assert_eq!(ms, vec![MutexId(0), MutexId(1)]);
        assert_eq!(p.vars()[2].name, "slot2");
        assert_eq!(p.vars()[2].init, 7);
        assert_eq!(p.mutexes()[1].name, "lk1");
    }

    #[test]
    fn repeat_unrolls_statically() {
        let mut b = ProgramBuilder::new("unroll");
        let x = b.var("x", 0);
        b.thread("T", |t| {
            t.repeat(3, |t, i| t.store(x, i as Value));
        });
        let p = b.build();
        assert_eq!(p.threads()[0].code.len(), 3);
        assert_eq!(
            p.threads()[0].code[2],
            Instr::Store {
                var: x,
                src: Operand::Const(2)
            }
        );
    }

    #[test]
    fn assert_eq_uses_fresh_scratch() {
        let mut b = ProgramBuilder::new("asserts");
        let x = b.var("x", 0);
        b.thread("T", |t| {
            t.load(Reg(0), x);
            t.assert_eq(Reg(0), 0, "x starts at zero");
        });
        let p = b.build();
        let code = &p.threads()[0].code;
        assert!(matches!(
            code[1],
            Instr::Bin {
                dst: Reg(1),
                op: BinOp::Eq,
                ..
            }
        ));
        assert!(matches!(code[2], Instr::Assert { .. }));
    }

    #[test]
    fn bounded_spin_emits_finite_code() {
        let mut b = ProgramBuilder::new("spin");
        let flag = b.var("flag", 0);
        let x = b.var("x", 0);
        b.thread("T", |t| {
            let give_up = t.label();
            t.spin_until_eq_bounded(flag, 1, 3, give_up);
            t.store(x, 1); // only on success path
            t.bind(give_up);
        });
        let p = b.build();
        // 3 iterations * (load, eq, branch) + jump + store.
        assert_eq!(p.threads()[0].code.len(), 11);
        p.validate().unwrap();
    }
}
