//! Instruction set of the guest register machine.

use crate::ids::{MutexId, Reg, Value, VarId};
use std::fmt;

/// A source operand: either an immediate constant or a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An immediate value.
    Const(Value),
    /// The current contents of a register.
    Reg(Reg),
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Const(v)
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(v) => write!(f, "{v}"),
            Operand::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// Binary operations over guest values.
///
/// Comparison operators produce `1` for true and `0` for false. Division and
/// remainder by zero produce `0` (the guest machine is total: no instruction
/// can trap). All arithmetic wraps on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Applies the operation; total on all inputs.
    pub fn apply(self, a: Value, b: Value) -> Value {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Eq => (a == b) as Value,
            BinOp::Ne => (a != b) as Value,
            BinOp::Lt => (a < b) as Value,
            BinOp::Le => (a <= b) as Value,
            BinOp::Gt => (a > b) as Value,
            BinOp::Ge => (a >= b) as Value,
        }
    }

    /// Concrete-syntax token used by the parser and pretty-printer.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }

    /// Parses a concrete-syntax token.
    pub fn from_token(tok: &str) -> Option<BinOp> {
        Some(match tok {
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "/" => BinOp::Div,
            "%" => BinOp::Rem,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            "&" => BinOp::And,
            "|" => BinOp::Or,
            "^" => BinOp::Xor,
            "==" => BinOp::Eq,
            "!=" => BinOp::Ne,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            ">=" => BinOp::Ge,
            _ => return None,
        })
    }

    /// All operations, for exhaustive tests.
    pub const ALL: [BinOp; 16] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];
}

/// Unary operations over guest values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (wrapping).
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical negation: `0 ↦ 1`, anything else `↦ 0`.
    BoolNot,
}

impl UnOp {
    /// Applies the operation.
    pub fn apply(self, a: Value) -> Value {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
            UnOp::BoolNot => (a == 0) as Value,
        }
    }

    /// Concrete-syntax token.
    pub fn token(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::BoolNot => "bnot",
        }
    }

    /// Parses a concrete-syntax token.
    pub fn from_token(tok: &str) -> Option<UnOp> {
        Some(match tok {
            "neg" => UnOp::Neg,
            "not" => UnOp::Not,
            "bnot" => UnOp::BoolNot,
            _ => return None,
        })
    }
}

/// The kind of a *visible* operation — the event alphabet of the paper's
/// schedule model. Everything else a thread does is invisible to the
/// scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VisibleKind {
    /// `read(x)`: load a shared variable.
    Read(VarId),
    /// `write(x)`: store to a shared variable.
    Write(VarId),
    /// `lock(m)`: blocking mutex acquire.
    Lock(MutexId),
    /// `unlock(m)`: mutex release.
    Unlock(MutexId),
}

impl VisibleKind {
    /// `true` if the operation targets a mutex rather than a variable.
    #[inline]
    pub fn is_mutex_op(self) -> bool {
        matches!(self, VisibleKind::Lock(_) | VisibleKind::Unlock(_))
    }

    /// `true` if the operation modifies its target. Writes modify their
    /// variable; lock and unlock both modify their mutex (paper §2: "at
    /// least one access is a modification" — every mutex operation counts).
    #[inline]
    pub fn is_modification(self) -> bool {
        !matches!(self, VisibleKind::Read(_))
    }

    /// The variable accessed, if any.
    #[inline]
    pub fn var(self) -> Option<VarId> {
        match self {
            VisibleKind::Read(v) | VisibleKind::Write(v) => Some(v),
            _ => None,
        }
    }

    /// The mutex accessed, if any.
    #[inline]
    pub fn mutex(self) -> Option<MutexId> {
        match self {
            VisibleKind::Lock(m) | VisibleKind::Unlock(m) => Some(m),
            _ => None,
        }
    }

    /// Dependence under the **regular** happens-before relation (paper §2,
    /// clause (b)): same variable or same mutex, with at least one side a
    /// modification.
    pub fn dependent_regular(self, other: VisibleKind) -> bool {
        match (self.var(), other.var()) {
            (Some(a), Some(b)) if a == b => self.is_modification() || other.is_modification(),
            _ => matches!((self.mutex(), other.mutex()), (Some(a), Some(b)) if a == b),
        }
    }

    /// Dependence under the **lazy** happens-before relation (paper §2,
    /// modified clause (b)): same *non-mutex* variable with at least one
    /// modification. Mutex operations induce no dependence.
    pub fn dependent_lazy(self, other: VisibleKind) -> bool {
        match (self.var(), other.var()) {
            (Some(a), Some(b)) if a == b => self.is_modification() || other.is_modification(),
            _ => false,
        }
    }
}

impl fmt::Display for VisibleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisibleKind::Read(v) => write!(f, "read({v})"),
            VisibleKind::Write(v) => write!(f, "write({v})"),
            VisibleKind::Lock(m) => write!(f, "lock({m})"),
            VisibleKind::Unlock(m) => write!(f, "unlock({m})"),
        }
    }
}

/// One instruction of the guest register machine.
///
/// `Load`, `Store`, `Lock` and `Unlock` are visible; the rest are local.
/// Control-flow targets are absolute instruction indices within the owning
/// thread's code (the builder resolves labels at [`build`] time).
///
/// [`build`]: crate::ProgramBuilder::build
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Visible: `dst := x` for shared variable `x`.
    Load { dst: Reg, var: VarId },
    /// Visible: `x := src` for shared variable `x`.
    Store { var: VarId, src: Operand },
    /// Visible: blocking acquire of mutex `m`.
    Lock(MutexId),
    /// Visible: release of mutex `m`. Releasing a mutex the thread does not
    /// hold is a program error that fails the run.
    Unlock(MutexId),
    /// Local: `dst := src`.
    Set { dst: Reg, src: Operand },
    /// Local: `dst := lhs op rhs`.
    Bin {
        dst: Reg,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Local: `dst := op src`.
    Un { dst: Reg, op: UnOp, src: Operand },
    /// Local: unconditional jump to instruction index `target`.
    Jump { target: usize },
    /// Local: jump to `target` when `cond` is non-zero (or zero, when
    /// `when_zero` is set).
    Branch {
        cond: Operand,
        target: usize,
        when_zero: bool,
    },
    /// Local: fail the thread with `msg` when `cond` evaluates to zero.
    Assert { cond: Operand, msg: String },
    /// Local: no effect. Useful as a label anchor.
    Nop,
}

impl Instr {
    /// The visible operation this instruction performs, if any.
    pub fn visible_kind(&self) -> Option<VisibleKind> {
        match *self {
            Instr::Load { var, .. } => Some(VisibleKind::Read(var)),
            Instr::Store { var, .. } => Some(VisibleKind::Write(var)),
            Instr::Lock(m) => Some(VisibleKind::Lock(m)),
            Instr::Unlock(m) => Some(VisibleKind::Unlock(m)),
            _ => None,
        }
    }

    /// `true` if the instruction is a visible operation.
    #[inline]
    pub fn is_visible(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Lock(_) | Instr::Unlock(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_arithmetic_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Sub.apply(2, 3), -1);
        assert_eq!(BinOp::Mul.apply(4, 5), 20);
        assert_eq!(BinOp::Div.apply(7, 2), 3);
        assert_eq!(BinOp::Rem.apply(7, 2), 1);
        assert_eq!(BinOp::Min.apply(7, 2), 2);
        assert_eq!(BinOp::Max.apply(7, 2), 7);
    }

    #[test]
    fn binop_division_by_zero_is_zero() {
        assert_eq!(BinOp::Div.apply(42, 0), 0);
        assert_eq!(BinOp::Rem.apply(42, 0), 0);
    }

    #[test]
    fn binop_overflow_wraps() {
        assert_eq!(BinOp::Add.apply(Value::MAX, 1), Value::MIN);
        assert_eq!(BinOp::Mul.apply(Value::MAX, 2), -2);
        assert_eq!(BinOp::Sub.apply(Value::MIN, 1), Value::MAX);
    }

    #[test]
    fn binop_comparisons_produce_zero_one() {
        assert_eq!(BinOp::Eq.apply(3, 3), 1);
        assert_eq!(BinOp::Eq.apply(3, 4), 0);
        assert_eq!(BinOp::Lt.apply(3, 4), 1);
        assert_eq!(BinOp::Ge.apply(3, 4), 0);
        assert_eq!(BinOp::Ne.apply(3, 4), 1);
        assert_eq!(BinOp::Le.apply(4, 4), 1);
        assert_eq!(BinOp::Gt.apply(5, 4), 1);
    }

    #[test]
    fn binop_tokens_round_trip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_token(op.token()), Some(op), "{op:?}");
        }
        assert_eq!(BinOp::from_token("<<"), None);
    }

    #[test]
    fn unop_semantics_and_tokens() {
        assert_eq!(UnOp::Neg.apply(5), -5);
        assert_eq!(UnOp::Neg.apply(Value::MIN), Value::MIN); // wraps
        assert_eq!(UnOp::Not.apply(0), -1);
        assert_eq!(UnOp::BoolNot.apply(0), 1);
        assert_eq!(UnOp::BoolNot.apply(17), 0);
        for op in [UnOp::Neg, UnOp::Not, UnOp::BoolNot] {
            assert_eq!(UnOp::from_token(op.token()), Some(op));
        }
    }

    #[test]
    fn visible_kind_classification() {
        let r = VisibleKind::Read(VarId(0));
        let w = VisibleKind::Write(VarId(0));
        let l = VisibleKind::Lock(MutexId(0));
        let u = VisibleKind::Unlock(MutexId(0));
        assert!(!r.is_mutex_op());
        assert!(l.is_mutex_op() && u.is_mutex_op());
        assert!(!r.is_modification());
        assert!(w.is_modification() && l.is_modification() && u.is_modification());
        assert_eq!(r.var(), Some(VarId(0)));
        assert_eq!(l.mutex(), Some(MutexId(0)));
        assert_eq!(r.mutex(), None);
        assert_eq!(l.var(), None);
    }

    #[test]
    fn regular_dependence_matches_paper_clause_b() {
        let rx = VisibleKind::Read(VarId(0));
        let wx = VisibleKind::Write(VarId(0));
        let ry = VisibleKind::Read(VarId(1));
        let lm = VisibleKind::Lock(MutexId(0));
        let um = VisibleKind::Unlock(MutexId(0));
        let ln = VisibleKind::Lock(MutexId(1));

        // Read-read on the same variable: independent.
        assert!(!rx.dependent_regular(rx));
        // Read-write / write-write on the same variable: dependent.
        assert!(rx.dependent_regular(wx));
        assert!(wx.dependent_regular(rx));
        assert!(wx.dependent_regular(wx));
        // Different variables: independent.
        assert!(!rx.dependent_regular(ry));
        assert!(!wx.dependent_regular(ry));
        // Same mutex: always dependent (lock and unlock both modify).
        assert!(lm.dependent_regular(um));
        assert!(lm.dependent_regular(lm));
        assert!(um.dependent_regular(um));
        // Different mutexes: independent.
        assert!(!lm.dependent_regular(ln));
        // Variable vs mutex: independent.
        assert!(!rx.dependent_regular(lm));
    }

    #[test]
    fn lazy_dependence_drops_mutex_edges() {
        let wx = VisibleKind::Write(VarId(0));
        let rx = VisibleKind::Read(VarId(0));
        let lm = VisibleKind::Lock(MutexId(0));
        let um = VisibleKind::Unlock(MutexId(0));

        // Variable dependence is unchanged...
        assert!(wx.dependent_lazy(rx));
        assert!(!rx.dependent_lazy(rx));
        // ...but mutex operations never induce dependence.
        assert!(!lm.dependent_lazy(um));
        assert!(!lm.dependent_lazy(lm));
        assert!(!wx.dependent_lazy(lm));
    }

    #[test]
    fn lazy_dependence_is_subset_of_regular() {
        let kinds = [
            VisibleKind::Read(VarId(0)),
            VisibleKind::Write(VarId(0)),
            VisibleKind::Read(VarId(1)),
            VisibleKind::Write(VarId(1)),
            VisibleKind::Lock(MutexId(0)),
            VisibleKind::Unlock(MutexId(0)),
            VisibleKind::Lock(MutexId(1)),
        ];
        for &a in &kinds {
            for &b in &kinds {
                if a.dependent_lazy(b) {
                    assert!(a.dependent_regular(b), "{a} {b}");
                }
                // Both relations are symmetric.
                assert_eq!(a.dependent_lazy(b), b.dependent_lazy(a));
                assert_eq!(a.dependent_regular(b), b.dependent_regular(a));
            }
        }
    }

    #[test]
    fn instr_visibility() {
        assert!(Instr::Lock(MutexId(0)).is_visible());
        assert!(Instr::Load {
            dst: Reg(0),
            var: VarId(0)
        }
        .is_visible());
        assert!(!Instr::Nop.is_visible());
        assert!(!Instr::Jump { target: 0 }.is_visible());
        assert_eq!(
            Instr::Store {
                var: VarId(2),
                src: Operand::Const(1)
            }
            .visible_kind(),
            Some(VisibleKind::Write(VarId(2)))
        );
        assert_eq!(Instr::Nop.visible_kind(), None);
    }

    #[test]
    fn operand_conversions_and_display() {
        let c: Operand = 5.into();
        let r: Operand = Reg(2).into();
        assert_eq!(c, Operand::Const(5));
        assert_eq!(r, Operand::Reg(Reg(2)));
        assert_eq!(format!("{c}"), "5");
        assert_eq!(format!("{r}"), "r2");
    }
}
