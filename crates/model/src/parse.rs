//! Text format for guest programs.
//!
//! The format is line-oriented; `#` starts a comment. Grammar:
//!
//! ```text
//! program <name>
//! var <name> = <int>              # shared variable
//! mutex <name>
//! thread <name> {
//!   lock <mutex>
//!   unlock <mutex>
//!   <reg> = load <var>
//!   store <var> = <operand>
//!   <reg> = <operand>
//!   <reg> = <operand> <binop> <operand>
//!   <reg> = <unop> <operand>
//!   jump <label>
//!   if <operand> goto <label>     # taken when non-zero
//!   ifz <operand> goto <label>    # taken when zero
//!   assert <operand> "message"
//!   nop
//! <label>:
//! }
//! ```
//!
//! Registers are `r0`–`r31`, operands are registers or signed integer
//! literals, binary operators are `+ - * / % min max & | ^ == != < <= > >=`
//! and unary operators are `neg not bnot`. Labels may be bound at the end of
//! a thread body (jump-to-termination).
//!
//! ```
//! use lazylocks_model::Program;
//!
//! let p = Program::parse(r#"
//! program tiny
//! var x = 0
//! mutex m
//! thread T1 {
//!   lock m
//!   r0 = load x
//!   r0 = r0 + 1
//!   store x = r0
//!   unlock m
//! }
//! "#).unwrap();
//! assert_eq!(p.name(), "tiny");
//! assert_eq!(p.threads()[0].code.len(), 5);
//! ```

use crate::error::ParseError;
use crate::ids::{Reg, Value};
use crate::instr::{BinOp, Instr, Operand, UnOp};
use crate::program::{MutexDecl, Program, ThreadDef, VarDecl};
use std::collections::HashMap;

/// Parses a program from the text format.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    Parser::new(source).parse()
}

struct PendingThread {
    name: String,
    code: Vec<Instr>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String, usize)>, // (instr index, label, source line)
    start_line: usize,
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    name: Option<String>,
    vars: Vec<VarDecl>,
    mutexes: Vec<MutexDecl>,
    threads: Vec<ThreadDef>,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Self {
        let lines = source
            .lines()
            .enumerate()
            .map(|(i, l)| {
                // Strip from the first '#' that is *outside* a string
                // literal (assert messages may legally contain '#').
                let cut = l
                    .match_indices('#')
                    .map(|(ix, _)| ix)
                    .find(|&ix| !in_string(l, ix));
                let no_comment = match cut {
                    Some(ix) => &l[..ix],
                    None => l,
                };
                (i + 1, no_comment.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            lines,
            pos: 0,
            name: None,
            vars: Vec::new(),
            mutexes: Vec::new(),
            threads: Vec::new(),
        }
    }

    fn parse(mut self) -> Result<Program, ParseError> {
        while self.pos < self.lines.len() {
            let (line_no, line) = self.lines[self.pos];
            let mut words = line.split_whitespace();
            match words.next() {
                Some("program") => {
                    let name = words
                        .next()
                        .ok_or_else(|| ParseError::new(line_no, "expected program name"))?;
                    self.name = Some(name.to_string());
                    self.pos += 1;
                }
                Some("var") => {
                    self.parse_var(line_no, line)?;
                    self.pos += 1;
                }
                Some("mutex") => {
                    let name = words
                        .next()
                        .ok_or_else(|| ParseError::new(line_no, "expected mutex name"))?;
                    check_ident(line_no, name)?;
                    self.mutexes.push(MutexDecl {
                        name: name.to_string(),
                    });
                    self.pos += 1;
                }
                Some("thread") => self.parse_thread(line_no, line)?,
                Some(other) => {
                    return Err(ParseError::new(
                        line_no,
                        format!("unexpected top-level keyword {other:?}"),
                    ))
                }
                None => unreachable!("blank lines are filtered"),
            }
        }
        let name = self.name.unwrap_or_else(|| "unnamed".to_string());
        Program::new(name, self.vars, self.mutexes, self.threads)
            .map_err(|e| ParseError::new(0, format!("validation failed: {e}")))
    }

    fn parse_var(&mut self, line_no: usize, line: &str) -> Result<(), ParseError> {
        // var <name> = <int>
        let rest = line.strip_prefix("var").unwrap().trim();
        let (name, init) = rest
            .split_once('=')
            .ok_or_else(|| ParseError::new(line_no, "expected `var <name> = <int>`"))?;
        let name = name.trim();
        check_ident(line_no, name)?;
        let init: Value = init
            .trim()
            .parse()
            .map_err(|_| ParseError::new(line_no, "expected integer initial value"))?;
        self.vars.push(VarDecl {
            name: name.to_string(),
            init,
        });
        Ok(())
    }

    fn parse_thread(&mut self, line_no: usize, line: &str) -> Result<(), ParseError> {
        let rest = line.strip_prefix("thread").unwrap().trim();
        let name = rest
            .strip_suffix('{')
            .ok_or_else(|| ParseError::new(line_no, "expected `thread <name> {`"))?
            .trim();
        check_ident(line_no, name)?;
        let mut pending = PendingThread {
            name: name.to_string(),
            code: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            start_line: line_no,
        };
        self.pos += 1;
        loop {
            let Some(&(body_line_no, body_line)) = self.lines.get(self.pos) else {
                return Err(ParseError::new(
                    pending.start_line,
                    format!("thread {:?} is missing a closing `}}`", pending.name),
                ));
            };
            self.pos += 1;
            if body_line == "}" {
                break;
            }
            self.parse_body_line(&mut pending, body_line_no, body_line)?;
        }
        // Resolve labels; end-of-body binding is permitted.
        let end = pending.code.len();
        for (pc, label, fix_line) in pending.fixups {
            let target = *pending
                .labels
                .get(&label)
                .ok_or_else(|| ParseError::new(fix_line, format!("undefined label {label:?}")))?;
            match &mut pending.code[pc] {
                Instr::Jump { target: t } | Instr::Branch { target: t, .. } => *t = target,
                _ => unreachable!(),
            }
        }
        debug_assert!(pending.labels.values().all(|&t| t <= end));
        self.threads.push(ThreadDef {
            name: pending.name,
            code: pending.code,
        });
        Ok(())
    }

    fn parse_body_line(
        &mut self,
        pending: &mut PendingThread,
        line_no: usize,
        line: &str,
    ) -> Result<(), ParseError> {
        // Label binding: `<ident>:`
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            check_ident(line_no, label)?;
            if pending
                .labels
                .insert(label.to_string(), pending.code.len())
                .is_some()
            {
                return Err(ParseError::new(
                    line_no,
                    format!("label {label:?} bound twice"),
                ));
            }
            return Ok(());
        }

        let words: Vec<&str> = tokenize(line);
        let instr = match words.as_slice() {
            ["lock", m] => Instr::Lock(self.mutex_ref(line_no, m)?),
            ["unlock", m] => Instr::Unlock(self.mutex_ref(line_no, m)?),
            ["nop"] => Instr::Nop,
            ["jump", label] => {
                pending
                    .fixups
                    .push((pending.code.len(), label.to_string(), line_no));
                Instr::Jump { target: usize::MAX }
            }
            ["if", cond, "goto", label] => {
                pending
                    .fixups
                    .push((pending.code.len(), label.to_string(), line_no));
                Instr::Branch {
                    cond: parse_operand(line_no, cond)?,
                    target: usize::MAX,
                    when_zero: false,
                }
            }
            ["ifz", cond, "goto", label] => {
                pending
                    .fixups
                    .push((pending.code.len(), label.to_string(), line_no));
                Instr::Branch {
                    cond: parse_operand(line_no, cond)?,
                    target: usize::MAX,
                    when_zero: true,
                }
            }
            ["assert", cond, msg @ ..] => {
                let msg_text = msg.join(" ");
                let msg_text = msg_text
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| {
                        ParseError::new(line_no, "assert message must be double-quoted")
                    })?;
                Instr::Assert {
                    cond: parse_operand(line_no, cond)?,
                    msg: unescape_msg(line_no, msg_text)?,
                }
            }
            ["store", var, "=", src] => Instr::Store {
                var: self.var_ref(line_no, var)?,
                src: parse_operand(line_no, src)?,
            },
            [dst, "=", "load", var] => Instr::Load {
                dst: parse_reg(line_no, dst)?,
                var: self.var_ref(line_no, var)?,
            },
            [dst, "=", src] => Instr::Set {
                dst: parse_reg(line_no, dst)?,
                src: parse_operand(line_no, src)?,
            },
            [dst, "=", lhs, op, rhs] => {
                let op = BinOp::from_token(op).ok_or_else(|| {
                    ParseError::new(line_no, format!("unknown binary operator {op:?}"))
                })?;
                Instr::Bin {
                    dst: parse_reg(line_no, dst)?,
                    op,
                    lhs: parse_operand(line_no, lhs)?,
                    rhs: parse_operand(line_no, rhs)?,
                }
            }
            [dst, "=", op, src] => {
                let op = UnOp::from_token(op).ok_or_else(|| {
                    ParseError::new(line_no, format!("unknown unary operator {op:?}"))
                })?;
                Instr::Un {
                    dst: parse_reg(line_no, dst)?,
                    op,
                    src: parse_operand(line_no, src)?,
                }
            }
            _ => {
                return Err(ParseError::new(
                    line_no,
                    format!("cannot parse instruction {line:?}"),
                ))
            }
        };
        pending.code.push(instr);
        Ok(())
    }

    fn var_ref(&self, line_no: usize, name: &str) -> Result<crate::VarId, ParseError> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(crate::VarId::from_index)
            .ok_or_else(|| ParseError::new(line_no, format!("undeclared variable {name:?}")))
    }

    fn mutex_ref(&self, line_no: usize, name: &str) -> Result<crate::MutexId, ParseError> {
        self.mutexes
            .iter()
            .position(|m| m.name == name)
            .map(crate::MutexId::from_index)
            .ok_or_else(|| ParseError::new(line_no, format!("undeclared mutex {name:?}")))
    }
}

/// Splits a body line into tokens, keeping quoted strings (with their
/// quotes) as single tokens.
fn tokenize(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while !rest.is_empty() {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        if let Some(stripped) = rest.strip_prefix('"') {
            let close = find_unescaped_quote(stripped)
                .map(|i| i + 1)
                .unwrap_or(rest.len() - 1);
            let (tok, tail) = rest.split_at(close + 1);
            out.push(tok);
            rest = tail;
        } else {
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let (tok, tail) = rest.split_at(end);
            out.push(tok);
            rest = tail;
        }
    }
    out
}

/// Byte offset of the first `"` in `s` that is not preceded by a `\`
/// escape.
fn find_unescaped_quote(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// `true` if byte offset `ix` falls inside a string literal, honouring
/// `\"` escapes.
fn in_string(line: &str, ix: usize) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut inside = false;
    while i < ix.min(bytes.len()) {
        match bytes[i] {
            b'\\' if inside => i += 2,
            b'"' => {
                inside = !inside;
                i += 1;
            }
            _ => i += 1,
        }
    }
    inside
}

/// Decodes the escapes produced by the pretty-printer inside an assert
/// message: `\\`, `\"`, `\n`, `\r`, `\t`.
fn unescape_msg(line_no: usize, s: &str) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => {
                return Err(ParseError::new(
                    line_no,
                    format!("invalid escape \\{other} in assert message"),
                ))
            }
            None => {
                return Err(ParseError::new(
                    line_no,
                    "assert message ends with a bare backslash",
                ))
            }
        }
    }
    Ok(out)
}

fn check_ident(line_no: usize, s: &str) -> Result<(), ParseError> {
    // One rule, shared with `Program::validate`: names the validator
    // accepts are exactly the names the parser reads back.
    if crate::is_valid_ident(s) {
        Ok(())
    } else {
        Err(ParseError::new(
            line_no,
            format!("invalid identifier {s:?}"),
        ))
    }
}

fn parse_reg(line_no: usize, s: &str) -> Result<Reg, ParseError> {
    s.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Reg)
        .ok_or_else(|| ParseError::new(line_no, format!("expected register, found {s:?}")))
}

fn parse_operand(line_no: usize, s: &str) -> Result<Operand, ParseError> {
    if let Ok(v) = s.parse::<Value>() {
        return Ok(Operand::Const(v));
    }
    parse_reg(line_no, s).map(Operand::Reg).map_err(|_| {
        ParseError::new(
            line_no,
            format!("expected register or integer literal, found {s:?}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MutexId, VarId};

    #[test]
    fn parses_declarations_and_bodies() {
        let p = Program::parse(
            r#"
# A tiny program.
program demo
var x = 0
var y = -3
mutex m

thread T1 {
  lock m           # enter critical section
  r0 = load x
  r0 = r0 + 1
  store x = r0
  unlock m
}
thread T2 {
  store y = 7
}
"#,
        )
        .unwrap();
        assert_eq!(p.name(), "demo");
        assert_eq!(p.vars().len(), 2);
        assert_eq!(p.vars()[1].init, -3);
        assert_eq!(p.mutexes().len(), 1);
        assert_eq!(p.thread_count(), 2);
        assert_eq!(p.threads()[0].code[0], Instr::Lock(MutexId(0)));
        assert_eq!(
            p.threads()[1].code[0],
            Instr::Store {
                var: VarId(1),
                src: Operand::Const(7)
            }
        );
    }

    #[test]
    fn trailing_comment_after_hash_in_assert_message() {
        // The first '#' is inside the string and must be kept; the second
        // starts a real comment and must be stripped.
        let p =
            Program::parse("program p\nthread T {\n assert 1 \"50% # done\" # TODO revisit\n}\n")
                .unwrap();
        assert_eq!(
            p.threads()[0].code[0],
            Instr::Assert {
                cond: Operand::Const(1),
                msg: "50% # done".to_string(),
            }
        );
    }

    #[test]
    fn parses_control_flow_with_labels() {
        let p = Program::parse(
            r#"
program loops
var flag = 0
thread T {
top:
  r0 = load flag
  ifz r0 goto top
  jump done
  store flag = 9
done:
}
"#,
        )
        .unwrap();
        let code = &p.threads()[0].code;
        assert_eq!(
            code[1],
            Instr::Branch {
                cond: Operand::Reg(Reg(0)),
                target: 0,
                when_zero: true
            }
        );
        assert_eq!(code[2], Instr::Jump { target: 4 });
    }

    #[test]
    fn parses_assert_with_spaces_and_hash_in_message() {
        let p = Program::parse(
            r#"
program asserts
thread T {
  r1 = 5
  assert r1 "value #1 must hold"
}
"#,
        )
        .unwrap();
        assert_eq!(
            p.threads()[0].code[1],
            Instr::Assert {
                cond: Operand::Reg(Reg(1)),
                msg: "value #1 must hold".to_string()
            }
        );
    }

    #[test]
    fn parses_unary_and_binary_ops() {
        let p = Program::parse(
            r#"
program ops
thread T {
  r0 = 6
  r1 = r0 % 4
  r2 = neg r1
  r3 = r1 min r0
}
"#,
        )
        .unwrap();
        let code = &p.threads()[0].code;
        assert!(matches!(code[1], Instr::Bin { op: BinOp::Rem, .. }));
        assert!(matches!(code[2], Instr::Un { op: UnOp::Neg, .. }));
        assert!(matches!(code[3], Instr::Bin { op: BinOp::Min, .. }));
    }

    #[test]
    fn rejects_undeclared_references() {
        let err = Program::parse("program p\nthread T {\n lock ghost\n}\n").unwrap_err();
        assert!(err.message.contains("undeclared mutex"));
        let err = Program::parse("program p\nthread T {\n r0 = load ghost\n}\n").unwrap_err();
        assert!(err.message.contains("undeclared variable"));
    }

    #[test]
    fn rejects_undefined_and_duplicate_labels() {
        let err = Program::parse("program p\nthread T {\n jump nowhere\n}\n").unwrap_err();
        assert!(err.message.contains("undefined label"));
        let err = Program::parse("program p\nthread T {\nl:\nl:\n}\n").unwrap_err();
        assert!(err.message.contains("bound twice"));
    }

    #[test]
    fn rejects_missing_close_brace() {
        let err = Program::parse("program p\nthread T {\n nop\n").unwrap_err();
        assert!(err.message.contains("missing a closing"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Program::parse("florble\n").is_err());
        let err = Program::parse("program p\nthread T {\n r0 = r1 <=> r2\n}\n").unwrap_err();
        assert!(err.message.contains("unknown binary operator"));
        let err = Program::parse("program p\nthread T {\n frobnicate\n}\n").unwrap_err();
        assert!(err.message.contains("cannot parse instruction"));
    }

    #[test]
    fn label_at_end_of_body_is_termination() {
        let p = Program::parse(
            "program p\nthread T {\n jump fin\n store_is_skipped:\nfin:\n}\nvar x = 0\n",
        );
        // `var` after thread also works (order free). Both trailing lines
        // are labels, so the body is the single jump and `fin` binds to the
        // end of the body (index 1 = termination).
        let p = p.unwrap();
        assert_eq!(p.threads()[0].code.len(), 1);
        assert_eq!(p.threads()[0].code[0], Instr::Jump { target: 1 });
    }

    #[test]
    fn default_program_name_when_missing() {
        let p = Program::parse("thread T {\n nop\n}\n").unwrap();
        assert_eq!(p.name(), "unnamed");
    }
}
