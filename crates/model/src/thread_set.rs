//! [`ThreadSet`]: a `u64`-bitmask set of [`ThreadId`]s.
//!
//! Exploration engines keep several small thread sets per search-stack
//! frame (backtrack, done and sleep sets) and consult them on every step.
//! A `BTreeSet<ThreadId>` pays a heap allocation per inserted element and
//! pointer chasing per query; a bitmask is one register. Guest programs
//! are bounded to [`ThreadSet::MAX_THREADS`] threads — far beyond what any
//! systematic exploration can cover — so a single `u64` always suffices.

use crate::ids::ThreadId;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not, Sub};

/// An allocation-free set of threads, stored as a `u64` bitmask.
///
/// Iteration order is ascending thread id, matching the ordered-set
/// semantics the exploration engines rely on (deterministic picks).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ThreadSet(u64);

impl ThreadSet {
    /// Capacity of the bitmask: thread ids must be below this.
    pub const MAX_THREADS: usize = 64;

    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        ThreadSet(0)
    }

    /// The set `{0, 1, …, n-1}` of the first `n` thread ids.
    ///
    /// # Panics
    /// Panics if `n > MAX_THREADS`.
    pub fn first_n(n: usize) -> Self {
        assert!(
            n <= Self::MAX_THREADS,
            "ThreadSet supports at most {} threads",
            Self::MAX_THREADS
        );
        if n == Self::MAX_THREADS {
            ThreadSet(u64::MAX)
        } else {
            ThreadSet((1u64 << n) - 1)
        }
    }

    #[inline]
    fn bit(thread: ThreadId) -> u64 {
        assert!(
            thread.index() < Self::MAX_THREADS,
            "ThreadSet supports at most {} threads, got {thread}",
            Self::MAX_THREADS
        );
        1u64 << thread.index()
    }

    /// Adds `thread`; returns `true` if it was not yet present.
    #[inline]
    pub fn insert(&mut self, thread: ThreadId) -> bool {
        let bit = Self::bit(thread);
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes `thread`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, thread: ThreadId) -> bool {
        let bit = Self::bit(thread);
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// `true` if `thread` is in the set.
    #[inline]
    pub fn contains(&self, thread: ThreadId) -> bool {
        thread.index() < Self::MAX_THREADS && self.0 & Self::bit(thread) != 0
    }

    /// `true` if no thread is in the set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of threads in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// The smallest thread id in the set, if any.
    #[inline]
    pub fn first(&self) -> Option<ThreadId> {
        if self.0 == 0 {
            None
        } else {
            Some(ThreadId(self.0.trailing_zeros() as u16))
        }
    }

    /// The `n`-th smallest thread id in the set (0-based), if any.
    pub fn nth(&self, n: usize) -> Option<ThreadId> {
        self.iter().nth(n)
    }

    /// Iterates the set in ascending thread-id order.
    #[inline]
    pub fn iter(&self) -> Iter {
        Iter(self.0)
    }

    /// The union of both sets.
    #[inline]
    pub fn union(self, other: ThreadSet) -> ThreadSet {
        ThreadSet(self.0 | other.0)
    }

    /// The intersection of both sets.
    #[inline]
    pub fn intersection(self, other: ThreadSet) -> ThreadSet {
        ThreadSet(self.0 & other.0)
    }

    /// The threads of `self` not in `other`.
    #[inline]
    pub fn difference(self, other: ThreadSet) -> ThreadSet {
        ThreadSet(self.0 & !other.0)
    }

    /// The raw bitmask, for serialisation.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a set from a raw bitmask produced by [`ThreadSet::bits`].
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        ThreadSet(bits)
    }
}

/// Ascending-order iterator over a [`ThreadSet`].
#[derive(Clone, Copy, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = ThreadId;

    #[inline]
    fn next(&mut self) -> Option<ThreadId> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros();
        self.0 &= self.0 - 1; // clear the lowest set bit
        Some(ThreadId(idx as u16))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for ThreadSet {
    type Item = ThreadId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<ThreadId> for ThreadSet {
    fn from_iter<I: IntoIterator<Item = ThreadId>>(iter: I) -> Self {
        let mut set = ThreadSet::new();
        for t in iter {
            set.insert(t);
        }
        set
    }
}

impl Extend<ThreadId> for ThreadSet {
    fn extend<I: IntoIterator<Item = ThreadId>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl BitOr for ThreadSet {
    type Output = ThreadSet;
    fn bitor(self, rhs: ThreadSet) -> ThreadSet {
        self.union(rhs)
    }
}

impl BitOrAssign for ThreadSet {
    fn bitor_assign(&mut self, rhs: ThreadSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for ThreadSet {
    type Output = ThreadSet;
    fn bitand(self, rhs: ThreadSet) -> ThreadSet {
        self.intersection(rhs)
    }
}

impl Sub for ThreadSet {
    type Output = ThreadSet;
    fn sub(self, rhs: ThreadSet) -> ThreadSet {
        self.difference(rhs)
    }
}

impl Not for ThreadSet {
    type Output = ThreadSet;
    /// Complement within the full `MAX_THREADS` universe; intersect with an
    /// enabled/declared set before iterating.
    fn not(self) -> ThreadSet {
        ThreadSet(!self.0)
    }
}

impl fmt::Debug for ThreadSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = ThreadSet::new();
        assert!(s.is_empty());
        assert!(s.insert(t(3)));
        assert!(!s.insert(t(3)), "second insert reports existing");
        assert!(s.contains(t(3)));
        assert!(!s.contains(t(4)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(t(3)));
        assert!(!s.remove(t(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_ascending() {
        let s: ThreadSet = [t(9), t(0), t(63), t(4)].into_iter().collect();
        let order: Vec<ThreadId> = s.iter().collect();
        assert_eq!(order, vec![t(0), t(4), t(9), t(63)]);
        assert_eq!(s.first(), Some(t(0)));
        assert_eq!(s.nth(2), Some(t(9)));
        assert_eq!(s.nth(4), None);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn set_algebra() {
        let a: ThreadSet = [t(0), t(1), t(2)].into_iter().collect();
        let b: ThreadSet = [t(1), t(2), t(3)].into_iter().collect();
        assert_eq!((a | b).len(), 4);
        assert_eq!((a & b).len(), 2);
        assert_eq!(a - b, [t(0)].into_iter().collect());
        let mut c = a;
        c |= b;
        assert_eq!(c, a | b);
        assert_eq!((!a & b), [t(3)].into_iter().collect());
    }

    #[test]
    fn first_n_builds_prefix_sets() {
        assert!(ThreadSet::first_n(0).is_empty());
        assert_eq!(ThreadSet::first_n(3).len(), 3);
        assert_eq!(ThreadSet::first_n(64).len(), 64);
        assert_eq!(ThreadSet::first_n(3).iter().last(), Some(t(2)));
    }

    #[test]
    #[should_panic(expected = "at most 64 threads")]
    fn inserting_beyond_capacity_panics() {
        ThreadSet::new().insert(t(64));
    }

    #[test]
    fn bits_round_trip() {
        let s: ThreadSet = [t(0), t(2), t(63)].into_iter().collect();
        assert_eq!(ThreadSet::from_bits(s.bits()), s);
        assert_eq!(ThreadSet::from_bits(0), ThreadSet::new());
    }

    #[test]
    fn debug_renders_as_set() {
        let s: ThreadSet = [t(1), t(5)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{t1, t5}");
    }
}
