//! # lazylocks-trace — persistent counterexamples, corpus management and
//! replay verification.
//!
//! The paper's value proposition is *reproducible* schedules: a bug found
//! by lazy-HBR DPOR is only useful if the failing interleaving can be
//! stored, replayed in a fresh process, and shrunk later. This crate is
//! that operational substrate, with zero external dependencies:
//!
//! * [`json`] — a small self-contained JSON encoder/decoder (the workspace
//!   builds offline; serde is unavailable);
//! * [`TraceArtifact`] — the versioned artifact format: tool version,
//!   canonical program fingerprint **and embedded source**, strategy spec,
//!   seed, schedule choice list, bug, and exploration counters;
//! * [`CorpusStore`] — a directory of artifacts with fingerprint-keyed
//!   dedup, atomic writes, listing and pruning;
//! * [`replay_embedded`] / [`replay_against`] — replay verification that
//!   classifies an artifact as [`Reproduced`](ReplayVerdict::Reproduced),
//!   [`Diverged`](ReplayVerdict::Diverged) or
//!   [`ProgramChanged`](ReplayVerdict::ProgramChanged) with a
//!   human-readable diagnosis;
//! * [`TraceRecorder`] — a session [`Observer`](lazylocks::Observer) that
//!   auto-saves (by default minimised) artifacts for every bug found;
//! * [`drive`] — the one exploration entry point shared by the CLI `run`
//!   command, the fuzz repro paths and the `lazylocks-server` job runner:
//!   session build, observer/cancellation wiring, recording, spec
//!   resolution and minimisation in a single call;
//! * [`CheckpointDoc`] / [`CheckpointWriter`] — the versioned on-disk
//!   checkpoint format and the observer that persists exploration
//!   frontiers durably, so an interrupted run resumes where it left off;
//! * [`FaultPlan`] / [`write_atomic_durable`] — the shared
//!   temp-file + fsync + rename + directory-fsync write path, with hooks
//!   for injecting torn writes, fsync failures and short reads in tests.
//!
//! ```
//! use lazylocks::{Dpor, ExploreConfig, Explorer};
//! use lazylocks_model::ProgramBuilder;
//! use lazylocks_trace::{replay_embedded, ReplayVerdict, TraceArtifact};
//!
//! // Find the AB-BA deadlock...
//! let mut b = ProgramBuilder::new("abba");
//! let l0 = b.mutex("l0");
//! let l1 = b.mutex("l1");
//! b.thread("T1", |t| { t.lock(l0); t.lock(l1); });
//! b.thread("T2", |t| { t.lock(l1); t.lock(l0); });
//! let program = b.build();
//! let stats = Dpor::default()
//!     .explore(&program, &ExploreConfig::with_limit(1_000).stopping_on_bug());
//! let bug = stats.first_bug.unwrap();
//!
//! // ...persist it as a self-contained artifact...
//! let artifact = TraceArtifact::from_bug(&program, "dpor", 0, &bug);
//! let text = artifact.to_json_string();
//!
//! // ...and replay it from the text alone, program included.
//! let loaded = TraceArtifact::parse(&text).unwrap();
//! let report = replay_embedded(&loaded).unwrap();
//! assert_eq!(report.verdict, ReplayVerdict::Reproduced);
//! ```

pub mod artifact;
pub mod checkpoint;
pub mod drive;
pub mod fault;
pub mod json;
pub mod profile;
pub mod recorder;
pub mod replay;
pub mod store;

pub use artifact::{
    bug_class, bug_kind_from_json, bug_kind_to_json, stats_from_json, stats_to_json, ArtifactError,
    TraceArtifact, FORMAT_NAME, FORMAT_VERSION,
};
pub use checkpoint::{
    load_checkpoint, CheckpointDoc, CheckpointWriter, CHECKPOINT_FILE, CHECKPOINT_FORMAT_NAME,
    CHECKPOINT_FORMAT_VERSION,
};
pub use drive::{drive, outcome_json, DriveRequest, DriveResult};
pub use fault::{fsync_dir, read_with, write_atomic_durable, FaultPlan};
pub use json::{Json, JsonError};
pub use profile::{
    render_profile, snapshot_from_json, ProfileDoc, ProfileDocError, PROFILE_FORMAT_NAME,
    PROFILE_FORMAT_VERSION,
};
pub use recorder::{FinalizedTrace, TraceRecorder};
pub use replay::{
    bug_matches, replay_against, replay_against_with, replay_embedded, replay_embedded_with,
    ReplayReport, ReplayVerdict,
};
pub use store::{CorpusEntry, CorpusStore, PruneReport, SaveOutcome};
