//! Automatic trace recording during exploration.
//!
//! A [`TraceRecorder`] is a session [`Observer`] that persists a trace
//! artifact into a [`CorpusStore`] for every distinct bug an exploration
//! finds. Artifacts are streamed out from `on_bug` — so even a cancelled,
//! crashed or deadline-stopped exploration leaves its counterexamples on
//! disk — and upgraded at [`TraceRecorder::finalize`] with a minimised
//! schedule (on by default) and the final exploration counters.

use crate::artifact::TraceArtifact;
use crate::store::CorpusStore;
use lazylocks::{minimize_schedule, BugReport, ExploreStats, Observer};
use lazylocks_model::Program;
use std::path::PathBuf;
use std::sync::Mutex;

/// Observer that saves an artifact per distinct bug. Attach with
/// [`ExploreSession::observe_arc`] (keep a handle to
/// [`TraceRecorder::finalize`] afterwards):
///
/// ```
/// use lazylocks::{ExploreConfig, ExploreSession};
/// use lazylocks_model::ProgramBuilder;
/// use lazylocks_trace::{CorpusStore, TraceRecorder};
/// use std::sync::Arc;
///
/// let mut b = ProgramBuilder::new("abba");
/// let l0 = b.mutex("l0");
/// let l1 = b.mutex("l1");
/// b.thread("T1", |t| { t.lock(l0); t.lock(l1); t.unlock(l1); t.unlock(l0); });
/// b.thread("T2", |t| { t.lock(l1); t.lock(l0); t.unlock(l0); t.unlock(l1); });
/// let program = b.build();
///
/// let dir = std::env::temp_dir().join("lazylocks-recorder-doc");
/// let store = CorpusStore::open(&dir).unwrap();
/// let recorder = Arc::new(TraceRecorder::new(store, &program, "dpor", 1));
///
/// let outcome = ExploreSession::new(&program)
///     .observe_arc(recorder.clone())
///     .run_spec("dpor")
///     .unwrap();
///
/// let (saved, errors) = recorder.finalize(&outcome.stats);
/// assert_eq!(saved.len(), 1);
/// assert!(errors.is_empty());
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
///
/// [`ExploreSession::observe_arc`]: lazylocks::ExploreSession::observe_arc
pub struct TraceRecorder {
    store: CorpusStore,
    program: Program,
    strategy_spec: String,
    seed: u64,
    minimize: bool,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    /// One report per distinct bug kind, in discovery order.
    bugs: Vec<BugReport>,
    /// I/O errors encountered while streaming artifacts out.
    errors: Vec<String>,
}

impl TraceRecorder {
    /// A recorder saving into `store` for an exploration of `program`
    /// under `strategy_spec`/`seed`. Schedules are minimised at
    /// finalisation by default; see [`TraceRecorder::minimizing`].
    pub fn new(
        store: CorpusStore,
        program: &Program,
        strategy_spec: impl Into<String>,
        seed: u64,
    ) -> TraceRecorder {
        TraceRecorder {
            store,
            program: program.clone(),
            strategy_spec: strategy_spec.into(),
            seed,
            minimize: true,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Enables or disables delta-debugging minimisation of saved
    /// schedules (enabled by default).
    pub fn minimizing(mut self, minimize: bool) -> TraceRecorder {
        self.minimize = minimize;
        self
    }

    /// The store this recorder writes to.
    pub fn store(&self) -> &CorpusStore {
        &self.store
    }

    fn artifact_for(&self, bug: &BugReport) -> TraceArtifact {
        TraceArtifact::from_bug(&self.program, &self.strategy_spec, self.seed, bug)
    }

    /// Re-saves every recorded bug with the final exploration counters and
    /// (by default) a minimised schedule. Returns the persisted artifacts
    /// — path plus the exact (possibly minimised) report each one carries,
    /// so callers can report the same schedules without re-minimising —
    /// and any I/O errors accumulated over the whole run.
    pub fn finalize(&self, stats: &ExploreStats) -> (Vec<FinalizedTrace>, Vec<String>) {
        let mut inner = self.inner.lock().unwrap();
        let mut saved = Vec::new();
        let bugs = inner.bugs.clone();
        for bug in &bugs {
            let (bug, minimized) = if self.minimize {
                (minimize_schedule(&self.program, bug), true)
            } else {
                (bug.clone(), false)
            };
            let mut artifact = self.artifact_for(&bug).with_stats(stats);
            artifact.minimized = minimized;
            match self.store.save_overwrite(&artifact) {
                Ok(path) => saved.push(FinalizedTrace { path, bug }),
                Err(e) => inner
                    .errors
                    .push(format!("saving trace for {}: {e}", bug.kind)),
            }
        }
        (saved, std::mem::take(&mut inner.errors))
    }
}

/// One artifact persisted by [`TraceRecorder::finalize`].
#[derive(Debug, Clone)]
pub struct FinalizedTrace {
    /// Where the artifact was written.
    pub path: PathBuf,
    /// The report the artifact carries — minimised when minimisation is
    /// on.
    pub bug: BugReport,
}

impl Observer for TraceRecorder {
    fn on_bug(&self, bug: &BugReport) {
        let mut inner = self.inner.lock().unwrap();
        if inner.bugs.iter().any(|b| b.kind == bug.kind) {
            return;
        }
        inner.bugs.push(bug.clone());
        // Stream the raw artifact out immediately: a crash or cancellation
        // between here and finalize() must not lose the counterexample.
        if let Err(e) = self.store.save(&self.artifact_for(bug)) {
            inner
                .errors
                .push(format!("saving trace for {}: {e}", bug.kind));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay_embedded, ReplayVerdict};
    use lazylocks::{ExploreConfig, ExploreSession};
    use lazylocks_model::ProgramBuilder;
    use std::sync::Arc;

    fn temp_store(tag: &str) -> CorpusStore {
        let dir = std::env::temp_dir().join(format!(
            "lazylocks-recorder-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CorpusStore::open(dir).unwrap()
    }

    fn noisy_abba() -> Program {
        let mut b = ProgramBuilder::new("noisy-abba");
        let noise = b.var("noise", 0);
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        b.thread("T1", |t| {
            t.store(noise, 1);
            t.lock(l0);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l0);
        });
        b.thread("T2", |t| {
            t.store(noise, 2);
            t.lock(l1);
            t.lock(l0);
            t.unlock(l0);
            t.unlock(l1);
        });
        b.build()
    }

    #[test]
    fn records_minimises_and_replays() {
        let p = noisy_abba();
        let recorder = Arc::new(TraceRecorder::new(temp_store("rec"), &p, "dpor", 9));
        let outcome = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(10_000))
            .observe_arc(recorder.clone())
            .run_spec("dpor")
            .unwrap();
        assert!(outcome.found_bug());

        let (saved, errors) = recorder.finalize(&outcome.stats);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(saved.len(), 1, "one distinct deadlock");

        let text = std::fs::read_to_string(&saved[0].path).unwrap();
        let artifact = TraceArtifact::parse(&text).unwrap();
        assert!(artifact.minimized);
        assert_eq!(artifact.strategy_spec, "dpor");
        assert_eq!(artifact.seed, 9);
        assert_eq!(
            artifact.stats.as_ref().unwrap().schedules,
            outcome.stats.schedules
        );
        // The minimised deadlock schedule for AB-BA needs at most the two
        // lock prefixes plus the noise stores.
        assert!(artifact.schedule.len() <= 4, "{:?}", artifact.schedule);

        let report = replay_embedded(&artifact).unwrap();
        assert_eq!(report.verdict, ReplayVerdict::Reproduced);
    }

    #[test]
    fn streams_artifacts_before_finalize() {
        let p = noisy_abba();
        let store = temp_store("stream");
        let recorder = Arc::new(TraceRecorder::new(store, &p, "dfs", 1));
        let _ = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(10_000).stopping_on_bug())
            .observe_arc(recorder.clone())
            .run_spec("dfs")
            .unwrap();
        // No finalize: the streamed artifact is already on disk and
        // replayable (it just lacks stats and minimisation).
        let entries = recorder.store().list().unwrap();
        assert_eq!(entries.len(), 1);
        let artifact = entries[0].artifact.as_ref().unwrap();
        assert!(!artifact.minimized);
        assert!(artifact.stats.is_none());
        assert!(replay_embedded(artifact).unwrap().reproduced());
    }

    #[test]
    fn unminimised_mode_keeps_raw_schedules() {
        let p = noisy_abba();
        let recorder =
            Arc::new(TraceRecorder::new(temp_store("raw"), &p, "dpor", 1).minimizing(false));
        let outcome = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(10_000))
            .observe_arc(recorder.clone())
            .run_spec("dpor")
            .unwrap();
        let (saved, _) = recorder.finalize(&outcome.stats);
        let artifact =
            TraceArtifact::parse(&std::fs::read_to_string(&saved[0].path).unwrap()).unwrap();
        assert!(!artifact.minimized);
        assert_eq!(
            artifact.schedule, outcome.bugs[0].schedule,
            "raw schedule preserved"
        );
    }
}
