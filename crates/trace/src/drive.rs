//! One reusable exploration entry point.
//!
//! Every frontend — the `run` CLI subcommand, the fuzz harness's repro
//! paths, and the `lazylocks-server` job runner — needs the same
//! plumbing: build an [`ExploreSession`] from a config, wire observers
//! and cancellation, optionally attach a [`TraceRecorder`] so bugs
//! persist into a [`CorpusStore`], run a registry spec, finalize the
//! recorder, and pick the (possibly minimised) bug schedules to report.
//! [`drive`] is that plumbing, once; [`outcome_json`] is the shared
//! machine-readable rendering of the result.

use crate::artifact::{bug_kind_to_json, stats_to_json};
use crate::json::Json;
use crate::recorder::{FinalizedTrace, TraceRecorder};
use crate::store::CorpusStore;
use lazylocks::{
    minimize_schedule, BugReport, CancelToken, ExploreConfig, ExploreOutcome, ExploreSession,
    Observer, SpecError, StrategyRegistry,
};
use lazylocks_model::Program;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Everything one exploration run needs, decoupled from any frontend.
pub struct DriveRequest<'p> {
    program: &'p Program,
    spec: String,
    config: ExploreConfig,
    registry: Option<&'p StrategyRegistry>,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    observers: Vec<Arc<dyn Observer>>,
    progress_every: usize,
    minimize: bool,
    store: Option<CorpusStore>,
}

impl<'p> DriveRequest<'p> {
    /// A request to run `spec` over `program` with the default config (use
    /// the builder methods to change anything).
    pub fn new(program: &'p Program, spec: impl Into<String>) -> Self {
        DriveRequest {
            program,
            spec: spec.into(),
            config: ExploreConfig::default(),
            registry: None,
            deadline: None,
            cancel: None,
            observers: Vec::new(),
            progress_every: 0,
            minimize: false,
            store: None,
        }
    }

    /// Replaces the exploration config (budget, seed, bounds, …). The
    /// config's seed also stamps any persisted artifacts.
    pub fn with_config(mut self, config: ExploreConfig) -> Self {
        self.config = config;
        self
    }

    /// Resolves the spec against `registry` instead of the default one.
    pub fn with_registry(mut self, registry: &'p StrategyRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Stops the run after this much wall-clock time.
    pub fn deadline(mut self, after: Duration) -> Self {
        self.deadline = Some(after);
        self
    }

    /// Shares an externally owned cancellation token with the run.
    pub fn cancel_with(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches an observer (progress ticks, bug streaming, stop votes).
    pub fn observe(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Fires progress ticks every `n` complete schedules (0 = never).
    pub fn progress_every(mut self, n: usize) -> Self {
        self.progress_every = n;
        self
    }

    /// Minimises reported bug schedules (and any persisted artifacts).
    pub fn minimizing(mut self, minimize: bool) -> Self {
        self.minimize = minimize;
        self
    }

    /// Persists every bug found into `store` via a [`TraceRecorder`]
    /// (streamed immediately, finalized with stats after the run).
    pub fn saving_into(mut self, store: CorpusStore) -> Self {
        self.store = Some(store);
        self
    }
}

/// What [`drive`] produced.
pub struct DriveResult {
    /// The session outcome: stats, verdict, strategy id, raw bugs.
    pub outcome: ExploreOutcome,
    /// The bug reports to present — minimised when the request asked for
    /// it (reusing the recorder's already-minimised schedules when traces
    /// were saved, so nothing is minimised twice).
    pub bugs: Vec<BugReport>,
    /// Artifacts persisted by the recorder, in bug-discovery order.
    pub traces: Vec<FinalizedTrace>,
    /// I/O errors from trace persistence (the run itself still succeeded).
    pub trace_errors: Vec<String>,
}

impl DriveResult {
    /// The persisted artifact paths, in bug-discovery order.
    pub fn trace_paths(&self) -> Vec<PathBuf> {
        self.traces.iter().map(|f| f.path.clone()).collect()
    }
}

/// Runs one exploration per `request`: session build, observer and
/// cancellation wiring, optional trace recording, spec resolution, run,
/// finalization, minimisation. Fails only on an unresolvable spec;
/// persistence problems come back as [`DriveResult::trace_errors`].
pub fn drive(request: DriveRequest<'_>) -> Result<DriveResult, SpecError> {
    let mut session = ExploreSession::new(request.program)
        .with_config(request.config.clone())
        .progress_every(request.progress_every);
    if let Some(deadline) = request.deadline {
        session = session.deadline(deadline);
    }
    if let Some(token) = request.cancel {
        session = session.cancel_with(token);
    }
    for observer in request.observers {
        session = session.observe_arc(observer);
    }
    let recorder = request.store.map(|store| {
        let recorder = Arc::new(
            TraceRecorder::new(store, request.program, &request.spec, request.config.seed)
                .minimizing(request.minimize),
        );
        (recorder.clone(), recorder as Arc<dyn Observer>)
    });
    if let Some((_, observer)) = &recorder {
        session = session.observe_arc(observer.clone());
    }

    let default_registry;
    let registry = match request.registry {
        Some(registry) => registry,
        None => {
            default_registry = StrategyRegistry::default();
            &default_registry
        }
    };
    let outcome = session.run_with(registry, &request.spec)?;

    let (traces, trace_errors) = match &recorder {
        Some((recorder, _)) => recorder.finalize(&outcome.stats),
        None => (Vec::new(), Vec::new()),
    };
    let bugs: Vec<BugReport> = if !request.minimize {
        outcome.bugs.clone()
    } else if recorder.is_some() {
        traces.iter().map(|f| f.bug.clone()).collect()
    } else {
        outcome
            .bugs
            .iter()
            .map(|b| minimize_schedule(request.program, b))
            .collect()
    };
    Ok(DriveResult {
        outcome,
        bugs,
        traces,
        trace_errors,
    })
}

/// The machine-readable form of a drive result — the schema behind
/// `run --json` and the server's job results.
pub fn outcome_json(
    program: &str,
    spec: &str,
    outcome: &ExploreOutcome,
    bugs: &[BugReport],
    minimized: bool,
    traces: &[PathBuf],
) -> Json {
    Json::obj([
        ("program", Json::Str(program.to_string())),
        ("strategy", Json::Str(outcome.strategy_id.clone())),
        ("spec", Json::Str(spec.to_string())),
        ("verdict", Json::Str(outcome.verdict.to_string())),
        ("stats", stats_to_json(&outcome.stats)),
        (
            "bugs",
            Json::Arr(
                bugs.iter()
                    .map(|b| {
                        Json::obj([
                            ("kind", bug_kind_to_json(&b.kind)),
                            (
                                "schedule",
                                Json::Arr(
                                    b.schedule
                                        .iter()
                                        .map(|t| Json::Int(i128::from(t.0)))
                                        .collect(),
                                ),
                            ),
                            ("trace_len", Json::Int(b.trace_len as i128)),
                            ("minimized", Json::Bool(minimized)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "traces",
            Json::Arr(
                traces
                    .iter()
                    .map(|p| Json::Str(p.display().to_string()))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_embedded;
    use lazylocks::Verdict;
    use lazylocks_model::ProgramBuilder;

    fn abba() -> Program {
        let mut b = ProgramBuilder::new("abba");
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        b.thread("T1", |t| {
            t.lock(l0);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l0);
        });
        b.thread("T2", |t| {
            t.lock(l1);
            t.lock(l0);
            t.unlock(l0);
            t.unlock(l1);
        });
        b.build()
    }

    fn temp_store(tag: &str) -> CorpusStore {
        let dir =
            std::env::temp_dir().join(format!("lazylocks-drive-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CorpusStore::open(dir).unwrap()
    }

    #[test]
    fn drive_without_store_reports_raw_bugs() {
        let p = abba();
        let result =
            drive(DriveRequest::new(&p, "dpor").with_config(ExploreConfig::with_limit(10_000)))
                .unwrap();
        assert_eq!(result.outcome.verdict, Verdict::BugFound);
        assert_eq!(result.bugs.len(), 1);
        assert!(result.traces.is_empty());
        assert_eq!(result.bugs[0].schedule, result.outcome.bugs[0].schedule);
    }

    #[test]
    fn drive_with_store_persists_minimised_replayable_artifacts() {
        let p = abba();
        let store = temp_store("persist");
        let root = store.root().to_path_buf();
        let result = drive(
            DriveRequest::new(&p, "dpor(sleep=true)")
                .with_config(ExploreConfig::with_limit(10_000).stopping_on_bug())
                .minimizing(true)
                .saving_into(store),
        )
        .unwrap();
        assert!(result.trace_errors.is_empty(), "{:?}", result.trace_errors);
        assert_eq!(result.traces.len(), 1);
        // Reported bugs are the recorder's minimised ones, verbatim.
        assert_eq!(result.bugs[0].schedule, result.traces[0].bug.schedule);
        let text = std::fs::read_to_string(&result.traces[0].path).unwrap();
        let artifact = crate::artifact::TraceArtifact::parse(&text).unwrap();
        assert!(artifact.minimized);
        assert!(replay_embedded(&artifact).unwrap().reproduced());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn drive_rejects_unknown_specs() {
        let p = abba();
        assert!(drive(DriveRequest::new(&p, "no-such-strategy")).is_err());
    }

    #[test]
    fn shared_cancel_token_stops_the_run() {
        let p = abba();
        let token = CancelToken::new();
        token.cancel();
        let result = drive(
            DriveRequest::new(&p, "dfs")
                .with_config(ExploreConfig::with_limit(1_000_000))
                .cancel_with(token),
        )
        .unwrap();
        assert_eq!(result.outcome.verdict, Verdict::Cancelled);
    }
}
