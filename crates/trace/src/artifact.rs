//! The versioned trace-artifact format.
//!
//! A [`TraceArtifact`] is a self-contained, machine-readable record of one
//! counterexample (or witness) execution: the exact program (embedded as
//! canonical source plus fingerprint), the strategy spec and seed that
//! found it, the schedule choice list, the bug, and the exploration
//! counters. Self-containment is the point — an artifact replays in a
//! fresh process with no access to the original benchmark registry.
//!
//! ## Versioning policy
//!
//! Every artifact carries `"format": "lazylocks-trace"` and an integer
//! `"format_version"` (currently [`FORMAT_VERSION`]). Readers accept any
//! version `<=` their own and reject newer ones with
//! [`ArtifactError::Version`]; writers always emit the current version.
//! Adding an optional field is a non-breaking change (readers default it);
//! removing or re-typing a field bumps the version.

use crate::json::{Json, JsonError};
use lazylocks::{BugKind, BugReport, ExploreStats};
use lazylocks_model::{MutexId, ThreadId};
use lazylocks_runtime::{program_fingerprint, Fault, FaultKind, Fnv128};
use std::fmt;
use std::time::Duration;

/// Current artifact format version. See the module docs for the policy.
pub const FORMAT_VERSION: u64 = 1;

/// The `"format"` marker every artifact carries.
pub const FORMAT_NAME: &str = "lazylocks-trace";

/// A persistent, replayable record of one explored execution.
#[derive(Debug, Clone)]
pub struct TraceArtifact {
    /// Version of the tool that wrote the artifact (`CARGO_PKG_VERSION`).
    pub tool_version: String,
    /// The guest program's name.
    pub program_name: String,
    /// Canonical fingerprint of the program
    /// ([`lazylocks_runtime::program_fingerprint`]).
    pub program_fingerprint: u128,
    /// The program itself, in the `.llk` text format — what makes the
    /// artifact self-contained.
    pub program_source: String,
    /// The strategy registry spec that produced the schedule.
    pub strategy_spec: String,
    /// The exploration seed.
    pub seed: u64,
    /// The schedule choice list; replaying it reproduces the execution.
    pub schedule: Vec<ThreadId>,
    /// `true` if the schedule went through delta-debugging minimisation.
    pub minimized: bool,
    /// The bug the schedule triggers; `None` for plain witness traces.
    pub bug: Option<BugKind>,
    /// Number of visible events in the recorded execution.
    pub trace_len: usize,
    /// Exploration counters at the time the artifact was (re)written.
    /// `None` when the artifact was streamed out mid-exploration.
    pub stats: Option<ExploreStats>,
}

/// Artifacts compare by their serialized form, which covers every
/// semantic field (the counters inside `stats` do not implement `Eq`
/// directly).
impl PartialEq for TraceArtifact {
    fn eq(&self, other: &Self) -> bool {
        self.to_json() == other.to_json()
    }
}

impl TraceArtifact {
    /// Builds an artifact for a bug found while exploring `program`.
    pub fn from_bug(
        program: &lazylocks_model::Program,
        strategy_spec: &str,
        seed: u64,
        bug: &BugReport,
    ) -> TraceArtifact {
        TraceArtifact {
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            program_name: program.name().to_string(),
            program_fingerprint: program_fingerprint(program),
            program_source: program.to_source(),
            strategy_spec: strategy_spec.to_string(),
            seed,
            schedule: bug.schedule.clone(),
            minimized: false,
            bug: Some(bug.kind.clone()),
            trace_len: bug.trace_len,
            stats: None,
        }
    }

    /// Attaches final exploration counters, returning `self` for chaining.
    pub fn with_stats(mut self, stats: &ExploreStats) -> TraceArtifact {
        self.stats = Some(stats.clone());
        self
    }

    /// The recorded bug as a [`BugReport`] (schedule + kind), if any.
    pub fn bug_report(&self) -> Option<BugReport> {
        self.bug.as_ref().map(|kind| BugReport {
            kind: kind.clone(),
            schedule: self.schedule.clone(),
            trace_len: self.trace_len,
        })
    }

    /// One-line human label for the recorded outcome: `"clean"` for
    /// witness traces, otherwise the bug class (see [`bug_class`]).
    pub fn outcome_label(&self) -> String {
        match &self.bug {
            None => "clean".to_string(),
            Some(kind) => bug_class(kind),
        }
    }

    /// The corpus dedup key: a fingerprint over the program fingerprint and
    /// the bug *class* (not the schedule), so re-finding the same bug along
    /// a different interleaving — or after minimisation — lands on the same
    /// corpus slot.
    pub fn corpus_key(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write(b"lazylocks-corpus-key-v1\0");
        h.write(&self.program_fingerprint.to_le_bytes());
        match &self.bug {
            None => h.write(b"clean"),
            Some(BugKind::Deadlock { waiting }) => {
                h.write(b"deadlock");
                let mut waiting = waiting.clone();
                waiting.sort();
                for (t, m) in waiting {
                    h.write_u32(u32::from(t.0));
                    h.write_u32(u32::from(m.0));
                }
            }
            Some(BugKind::Fault(fault)) => {
                h.write(b"fault");
                h.write_u32(u32::from(fault.thread.0));
                h.write_u32(fault.pc);
                match &fault.kind {
                    FaultKind::AssertFailed { msg } => {
                        h.write(b"assert\0");
                        h.write(msg.as_bytes());
                    }
                    FaultKind::UnlockNotHeld { mutex } => {
                        h.write(b"unlock\0");
                        h.write_u32(u32::from(mutex.0));
                    }
                    FaultKind::LocalStepBudget => h.write(b"budget\0"),
                }
            }
        }
        h.finish()
    }

    /// Encodes the artifact as a JSON document (pretty-printed; artifacts
    /// are meant to live in a repository and diff well).
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// The artifact as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format", Json::Str(FORMAT_NAME.to_string())),
            ("format_version", Json::Int(i128::from(FORMAT_VERSION))),
            ("tool_version", Json::Str(self.tool_version.clone())),
            (
                "program",
                Json::obj([
                    ("name", Json::Str(self.program_name.clone())),
                    ("fingerprint", Json::u128_hex(self.program_fingerprint)),
                    ("source", Json::Str(self.program_source.clone())),
                ]),
            ),
            ("strategy", Json::Str(self.strategy_spec.clone())),
            ("seed", Json::Int(i128::from(self.seed))),
            (
                "schedule",
                Json::Arr(
                    self.schedule
                        .iter()
                        .map(|t| Json::Int(i128::from(t.0)))
                        .collect(),
                ),
            ),
            ("minimized", Json::Bool(self.minimized)),
            (
                "bug",
                match &self.bug {
                    None => Json::Null,
                    Some(kind) => bug_kind_to_json(kind),
                },
            ),
            ("trace_len", Json::Int(self.trace_len as i128)),
            (
                "stats",
                match &self.stats {
                    None => Json::Null,
                    Some(stats) => stats_to_json(stats),
                },
            ),
        ])
    }

    /// Parses an artifact from its JSON text.
    pub fn parse(text: &str) -> Result<TraceArtifact, ArtifactError> {
        TraceArtifact::from_json(&Json::parse(text)?)
    }

    /// Decodes an artifact from a JSON value.
    pub fn from_json(v: &Json) -> Result<TraceArtifact, ArtifactError> {
        if v.get("format").and_then(Json::as_str) != Some(FORMAT_NAME) {
            return Err(ArtifactError::schema(
                "format",
                format!("missing or wrong format marker (want {FORMAT_NAME:?})"),
            ));
        }
        let version = require(v, "format_version", Json::as_u64)?;
        if version > FORMAT_VERSION {
            return Err(ArtifactError::Version { found: version });
        }
        let program = v
            .get("program")
            .ok_or_else(|| ArtifactError::schema("program", "missing"))?;
        let schedule = require(v, "schedule", Json::as_arr)?
            .iter()
            .map(|t| {
                t.as_u64()
                    .and_then(|t| u16::try_from(t).ok())
                    .map(ThreadId)
                    .ok_or_else(|| ArtifactError::schema("schedule", "not a thread index"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let bug = match v
            .get("bug")
            .ok_or_else(|| ArtifactError::schema("bug", "missing"))?
        {
            Json::Null => None,
            other => Some(bug_kind_from_json(other)?),
        };
        let stats = match v.get("stats") {
            None | Some(Json::Null) => None,
            Some(other) => Some(stats_from_json(other)?),
        };
        Ok(TraceArtifact {
            tool_version: require(v, "tool_version", Json::as_str)?.to_string(),
            program_name: require(program, "name", Json::as_str)?.to_string(),
            program_fingerprint: require(program, "fingerprint", Json::as_u128_hex)?,
            program_source: require(program, "source", Json::as_str)?.to_string(),
            strategy_spec: require(v, "strategy", Json::as_str)?.to_string(),
            seed: require(v, "seed", Json::as_u64)?,
            schedule,
            minimized: require(v, "minimized", Json::as_bool)?,
            bug,
            trace_len: require(v, "trace_len", Json::as_usize)?,
            stats,
        })
    }
}

/// The stable class label of a bug, used for replay classification
/// messages: deadlocks are one class, faults are classed by thread,
/// program counter and fault kind.
pub fn bug_class(kind: &BugKind) -> String {
    match kind {
        BugKind::Deadlock { .. } => "deadlock".to_string(),
        BugKind::Fault(fault) => format!("fault({fault})"),
    }
}

/// Encodes a [`BugKind`] as JSON (shared with the CLI's `--json` output).
pub fn bug_kind_to_json(kind: &BugKind) -> Json {
    match kind {
        BugKind::Deadlock { waiting } => Json::obj([
            ("class", Json::Str("deadlock".to_string())),
            (
                "waiting",
                Json::Arr(
                    waiting
                        .iter()
                        .map(|(t, m)| {
                            Json::Arr(vec![Json::Int(i128::from(t.0)), Json::Int(i128::from(m.0))])
                        })
                        .collect(),
                ),
            ),
        ]),
        BugKind::Fault(fault) => {
            let kind = match &fault.kind {
                FaultKind::AssertFailed { msg } => Json::obj([
                    ("type", Json::Str("assert-failed".to_string())),
                    ("msg", Json::Str(msg.clone())),
                ]),
                FaultKind::UnlockNotHeld { mutex } => Json::obj([
                    ("type", Json::Str("unlock-not-held".to_string())),
                    ("mutex", Json::Int(i128::from(mutex.0))),
                ]),
                FaultKind::LocalStepBudget => {
                    Json::obj([("type", Json::Str("local-step-budget".to_string()))])
                }
            };
            Json::obj([
                ("class", Json::Str("fault".to_string())),
                ("thread", Json::Int(i128::from(fault.thread.0))),
                ("pc", Json::Int(i128::from(fault.pc))),
                ("kind", kind),
            ])
        }
    }
}

/// Decodes a [`BugKind`] from the JSON produced by [`bug_kind_to_json`]
/// (shared with the checkpoint codec).
pub fn bug_kind_from_json(v: &Json) -> Result<BugKind, ArtifactError> {
    let id16 = |field: &'static str, v: &Json| {
        v.as_u64()
            .and_then(|n| u16::try_from(n).ok())
            .ok_or_else(|| ArtifactError::schema(field, "not a 16-bit id"))
    };
    match require(v, "class", Json::as_str)? {
        "deadlock" => {
            let waiting = require(v, "waiting", Json::as_arr)?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        ArtifactError::schema("waiting", "not a [thread, mutex] pair")
                    })?;
                    Ok((
                        ThreadId(id16("waiting", &pair[0])?),
                        MutexId(id16("waiting", &pair[1])?),
                    ))
                })
                .collect::<Result<Vec<_>, ArtifactError>>()?;
            Ok(BugKind::Deadlock { waiting })
        }
        "fault" => {
            let kind_v = v
                .get("kind")
                .ok_or_else(|| ArtifactError::schema("kind", "missing"))?;
            let kind = match require(kind_v, "type", Json::as_str)? {
                "assert-failed" => FaultKind::AssertFailed {
                    msg: require(kind_v, "msg", Json::as_str)?.to_string(),
                },
                "unlock-not-held" => FaultKind::UnlockNotHeld {
                    mutex: MutexId(id16("mutex", kind_v.get("mutex").unwrap_or(&Json::Null))?),
                },
                "local-step-budget" => FaultKind::LocalStepBudget,
                other => {
                    return Err(ArtifactError::schema(
                        "kind",
                        format!("unknown fault kind {other:?}"),
                    ))
                }
            };
            Ok(BugKind::Fault(Fault {
                thread: ThreadId(id16("thread", v.get("thread").unwrap_or(&Json::Null))?),
                pc: require(v, "pc", Json::as_u64)?
                    .try_into()
                    .map_err(|_| ArtifactError::schema("pc", "out of range"))?,
                kind,
            }))
        }
        other => Err(ArtifactError::schema(
            "class",
            format!("unknown bug class {other:?}"),
        )),
    }
}

/// Encodes the scalar counters of [`ExploreStats`] as JSON (shared with
/// the CLI's `--json` output). Witness lists and the embedded first-bug
/// report are deliberately not persisted: artifacts carry their own
/// schedule, and witnesses can be arbitrarily large.
pub fn stats_to_json(stats: &ExploreStats) -> Json {
    Json::obj([
        ("schedules", Json::Int(stats.schedules as i128)),
        ("events", Json::Int(i128::from(stats.events))),
        ("unique_states", Json::Int(stats.unique_states as i128)),
        ("unique_hbrs", Json::Int(stats.unique_hbrs as i128)),
        (
            "unique_lazy_hbrs",
            Json::Int(stats.unique_lazy_hbrs as i128),
        ),
        ("deadlocks", Json::Int(stats.deadlocks as i128)),
        (
            "faulted_schedules",
            Json::Int(stats.faulted_schedules as i128),
        ),
        ("max_depth", Json::Int(stats.max_depth as i128)),
        ("limit_hit", Json::Bool(stats.limit_hit)),
        ("cancelled", Json::Bool(stats.cancelled)),
        ("cache_prunes", Json::Int(stats.cache_prunes as i128)),
        ("sleep_prunes", Json::Int(stats.sleep_prunes as i128)),
        ("bound_prunes", Json::Int(stats.bound_prunes as i128)),
        ("truncated_runs", Json::Int(stats.truncated_runs as i128)),
        (
            "events_compared",
            Json::Int(i128::from(stats.events_compared)),
        ),
        (
            "subtrees_stolen",
            Json::Int(i128::from(stats.subtrees_stolen)),
        ),
        ("frames_pooled", Json::Int(i128::from(stats.frames_pooled))),
        ("workers", Json::Int(i128::from(stats.workers))),
        (
            "wall_time_us",
            Json::Int(stats.wall_time.as_micros().min(u64::MAX as u128) as i128),
        ),
    ])
}

/// Decodes the scalar counters of [`ExploreStats`] from the JSON produced
/// by [`stats_to_json`] (shared with the checkpoint codec). Witness lists
/// and the embedded first-bug report are not part of the encoding and
/// come back empty.
pub fn stats_from_json(v: &Json) -> Result<ExploreStats, ArtifactError> {
    Ok(ExploreStats {
        schedules: require(v, "schedules", Json::as_usize)?,
        events: require(v, "events", Json::as_u64)?,
        unique_states: require(v, "unique_states", Json::as_usize)?,
        unique_hbrs: require(v, "unique_hbrs", Json::as_usize)?,
        unique_lazy_hbrs: require(v, "unique_lazy_hbrs", Json::as_usize)?,
        deadlocks: require(v, "deadlocks", Json::as_usize)?,
        faulted_schedules: require(v, "faulted_schedules", Json::as_usize)?,
        max_depth: require(v, "max_depth", Json::as_usize)?,
        limit_hit: require(v, "limit_hit", Json::as_bool)?,
        cancelled: require(v, "cancelled", Json::as_bool)?,
        cache_prunes: require(v, "cache_prunes", Json::as_usize)?,
        sleep_prunes: require(v, "sleep_prunes", Json::as_usize)?,
        bound_prunes: require(v, "bound_prunes", Json::as_usize)?,
        truncated_runs: require(v, "truncated_runs", Json::as_usize)?,
        // Added after format_version 1 shipped: default only when the key
        // is *absent* (an older artifact); a present-but-malformed value
        // is an error like any other field.
        events_compared: match v.get("events_compared") {
            None => 0,
            Some(_) => require(v, "events_compared", Json::as_u64)?,
        },
        subtrees_stolen: match v.get("subtrees_stolen") {
            None => 0,
            Some(_) => require(v, "subtrees_stolen", Json::as_u64)?,
        },
        frames_pooled: match v.get("frames_pooled") {
            None => 0,
            Some(_) => require(v, "frames_pooled", Json::as_u64)?,
        },
        workers: match v.get("workers") {
            None => 0,
            Some(_) => require(v, "workers", Json::as_u64)? as u32,
        },
        wall_time: Duration::from_micros(require(v, "wall_time_us", Json::as_u64)?),
        ..ExploreStats::default()
    })
}

fn require<'a, T>(
    v: &'a Json,
    field: &'static str,
    accessor: impl Fn(&'a Json) -> Option<T>,
) -> Result<T, ArtifactError> {
    v.get(field)
        .and_then(accessor)
        .ok_or_else(|| ArtifactError::schema(field, "missing or wrong type"))
}

/// Why an artifact could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The text is not well-formed JSON.
    Json(JsonError),
    /// The JSON does not match the artifact schema.
    Schema {
        /// The offending field.
        field: &'static str,
        /// What is wrong with it.
        message: String,
    },
    /// The artifact was written by a newer tool.
    Version {
        /// The version the artifact declares.
        found: u64,
    },
}

impl ArtifactError {
    fn schema(field: &'static str, message: impl Into<String>) -> ArtifactError {
        ArtifactError::Schema {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "{e}"),
            ArtifactError::Schema { field, message } => {
                write!(f, "artifact field {field:?}: {message}")
            }
            ArtifactError::Version { found } => write!(
                f,
                "artifact format version {found} is newer than this tool's {FORMAT_VERSION}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn deadlock_artifact() -> TraceArtifact {
        let mut b = ProgramBuilder::new("abba");
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        b.thread("T1", |t| {
            t.lock(l0);
            t.lock(l1);
        });
        b.thread("T2", |t| {
            t.lock(l1);
            t.lock(l0);
        });
        let p = b.build();
        let bug = BugReport {
            kind: BugKind::Deadlock {
                waiting: vec![(ThreadId(0), l1), (ThreadId(1), l0)],
            },
            schedule: vec![ThreadId(0), ThreadId(1)],
            trace_len: 2,
        };
        TraceArtifact::from_bug(&p, "dpor(sleep=true)", 7, &bug)
    }

    fn fault_artifact() -> TraceArtifact {
        let mut b = ProgramBuilder::new("assert");
        let x = b.var("x", 0);
        b.thread("T1", |t| {
            t.load(Reg(0), x);
            t.assert_true(Reg(0), "x must be set — with \"quotes\" and\nnewlines");
        });
        b.thread("T2", |t| t.store(x, 1));
        let p = b.build();
        let bug = BugReport {
            kind: BugKind::Fault(Fault {
                thread: ThreadId(0),
                pc: 1,
                kind: FaultKind::AssertFailed {
                    msg: "x must be set — with \"quotes\" and\nnewlines".to_string(),
                },
            }),
            schedule: vec![ThreadId(0)],
            trace_len: 1,
        };
        TraceArtifact::from_bug(&p, "dfs", 42, &bug).with_stats(&ExploreStats {
            schedules: 3,
            events: 9,
            unique_states: 2,
            subtrees_stolen: 5,
            frames_pooled: 7,
            workers: 2,
            wall_time: Duration::from_micros(1234),
            ..ExploreStats::default()
        })
    }

    #[test]
    fn deadlock_artifact_round_trips() {
        let a = deadlock_artifact();
        let back = TraceArtifact::parse(&a.to_json_string()).unwrap();
        assert_eq!(a, back);
        assert_eq!(back.outcome_label(), "deadlock");
        assert!(back.stats.is_none());
    }

    #[test]
    fn fault_artifact_round_trips_with_stats() {
        let a = fault_artifact();
        let back = TraceArtifact::parse(&a.to_json_string()).unwrap();
        assert_eq!(a, back);
        assert!(back.outcome_label().starts_with("fault("));
        let stats = back.stats.unwrap();
        assert_eq!(stats.schedules, 3);
        assert_eq!(stats.subtrees_stolen, 5);
        assert_eq!(stats.frames_pooled, 7);
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.wall_time, Duration::from_micros(1234));
    }

    #[test]
    fn corpus_key_ignores_schedule_but_not_bug_class() {
        let a = deadlock_artifact();
        let mut b = a.clone();
        b.schedule = vec![ThreadId(1), ThreadId(0), ThreadId(1)];
        b.minimized = true;
        assert_eq!(a.corpus_key(), b.corpus_key());
        let mut c = a.clone();
        c.bug = None;
        assert_ne!(a.corpus_key(), c.corpus_key());
        let mut d = a.clone();
        d.program_fingerprint ^= 1;
        assert_ne!(a.corpus_key(), d.corpus_key());
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut v = deadlock_artifact().to_json();
        if let Json::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "format_version" {
                    *val = Json::Int(i128::from(FORMAT_VERSION + 1));
                }
            }
        }
        let err = TraceArtifact::from_json(&v).unwrap_err();
        assert!(matches!(
            err,
            ArtifactError::Version {
                found
            } if found == FORMAT_VERSION + 1
        ));
        assert!(err.to_string().contains("newer"));
    }

    #[test]
    fn schema_violations_name_the_field() {
        let err = TraceArtifact::parse("{}").unwrap_err();
        assert!(err.to_string().contains("format"));

        let mut v = deadlock_artifact().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "schedule");
        }
        let err = TraceArtifact::from_json(&v).unwrap_err();
        assert!(matches!(
            err,
            ArtifactError::Schema {
                field: "schedule",
                ..
            }
        ));

        let err = TraceArtifact::parse("not json").unwrap_err();
        assert!(matches!(err, ArtifactError::Json(_)));
    }

    #[test]
    fn embedded_source_reparses_to_the_recorded_fingerprint() {
        let a = fault_artifact();
        let p = lazylocks_model::Program::parse(&a.program_source).unwrap();
        assert_eq!(program_fingerprint(&p), a.program_fingerprint);
    }
}
