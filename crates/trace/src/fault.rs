//! Fault injection for durability testing, plus the shared durable-write
//! helper every persistent writer (corpus store, checkpoint writer, job
//! journal) goes through.
//!
//! A [`FaultPlan`] is a cheap, clonable handle. The default is *inert* —
//! every check is a single `Option` test — so production writers carry one
//! unconditionally. Tests arm a plan and schedule faults on it: torn
//! writes (the payload is cut short and the writer reports a crash),
//! failing fsyncs, and short reads. Clones share the schedule, so the
//! test keeps a handle to the same plan it injected into the writer.
//!
//! The same hooks cover the **socket path**: the server crate's HTTP
//! client threads a plan through its wire layer, where a torn write
//! models a request cut mid-flight (or, with `keep = 0`, a connection
//! dropped before any byte left) and a short read models a truncated
//! response — so the distributed lease protocol's retry and idempotency
//! handling is exercised under the same injected faults as the
//! persistence layer, without a misbehaving network.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A shared schedule of injected storage faults. Inert by default.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan(Option<Arc<Inner>>);

#[derive(Debug, Default)]
struct Inner {
    /// Keep only this many bytes of the next write, then report a crash.
    torn_write: Mutex<Option<usize>>,
    /// Number of upcoming fsync calls that fail.
    failing_fsyncs: AtomicUsize,
    /// Keep only this many bytes of the next read.
    short_read: Mutex<Option<usize>>,
    /// Total faults injected so far.
    injected: AtomicUsize,
}

impl FaultPlan {
    /// The production plan: every check is a no-op.
    pub fn inert() -> FaultPlan {
        FaultPlan(None)
    }

    /// A live plan ready to have faults scheduled on it.
    pub fn armed() -> FaultPlan {
        FaultPlan(Some(Arc::new(Inner::default())))
    }

    /// `true` if this plan can inject faults at all.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// Total faults injected so far (0 for an inert plan).
    pub fn injected(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |i| i.injected.load(Ordering::Relaxed))
    }

    /// Cuts the next durable write down to its first `keep` bytes; the
    /// writer then reports the crash as an [`io::ErrorKind::Interrupted`]
    /// error, leaving the torn bytes behind exactly as a power cut would.
    pub fn truncate_next_write(&self, keep: usize) {
        if let Some(i) = &self.0 {
            *i.torn_write.lock().unwrap() = Some(keep);
        }
    }

    /// Makes the next `count` fsync calls fail.
    pub fn fail_fsyncs(&self, count: usize) {
        if let Some(i) = &self.0 {
            i.failing_fsyncs.store(count, Ordering::Relaxed);
        }
    }

    /// Cuts the next read down to its first `keep` bytes.
    pub fn truncate_next_read(&self, keep: usize) {
        if let Some(i) = &self.0 {
            *i.short_read.lock().unwrap() = Some(keep);
        }
    }

    /// Consumes a scheduled torn write, if any (writer-side hook).
    pub fn take_torn_write(&self) -> Option<usize> {
        let i = self.0.as_ref()?;
        let taken = i.torn_write.lock().unwrap().take();
        if taken.is_some() {
            i.injected.fetch_add(1, Ordering::Relaxed);
        }
        taken
    }

    /// Fails if an fsync fault is scheduled (writer-side hook; call
    /// *before* the real fsync).
    pub fn check_fsync(&self) -> io::Result<()> {
        let Some(i) = &self.0 else {
            return Ok(());
        };
        let mut remaining = i.failing_fsyncs.load(Ordering::Relaxed);
        while remaining > 0 {
            match i.failing_fsyncs.compare_exchange(
                remaining,
                remaining - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    i.injected.fetch_add(1, Ordering::Relaxed);
                    return Err(io::Error::other("injected fsync failure"));
                }
                Err(actual) => remaining = actual,
            }
        }
        Ok(())
    }

    /// Applies a scheduled short read to freshly read bytes (reader-side
    /// hook).
    pub fn apply_read(&self, mut data: Vec<u8>) -> Vec<u8> {
        if let Some(i) = &self.0 {
            if let Some(keep) = i.short_read.lock().unwrap().take() {
                i.injected.fetch_add(1, Ordering::Relaxed);
                data.truncate(keep);
            }
        }
        data
    }
}

/// Fsyncs a directory so a just-renamed entry survives a crash. A no-op
/// on platforms where directories cannot be opened for syncing.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Writes `bytes` to `path` atomically *and durably*: temp file, fsync,
/// rename, parent-directory fsync. Readers never observe a torn file, and
/// the completed write survives a crash immediately after return.
pub fn write_atomic_durable(path: &Path, bytes: &[u8], faults: &FaultPlan) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let torn = faults.take_torn_write();
    let payload = match torn {
        Some(keep) => &bytes[..keep.min(bytes.len())],
        None => bytes,
    };
    let write = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(payload)?;
        if torn.is_some() {
            // Crash mid-write: the torn temp file stays behind, the
            // destination is never touched.
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected torn write",
            ));
        }
        faults.check_fsync()?;
        f.sync_all()
    })();
    if let Err(e) = write {
        if torn.is_none() {
            let _ = fs::remove_file(&tmp);
        }
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(parent) = path.parent() {
        fsync_dir(parent)?;
    }
    Ok(())
}

/// Reads a file through the plan's short-read hook.
pub fn read_with(path: &Path, faults: &FaultPlan) -> io::Result<Vec<u8>> {
    let mut data = Vec::new();
    fs::File::open(path)?.read_to_end(&mut data)?;
    Ok(faults.apply_read(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lazylocks-fault-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("file.json")
    }

    #[test]
    fn inert_plan_writes_normally() {
        let path = temp_path("inert");
        write_atomic_durable(&path, b"hello", &FaultPlan::inert()).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        assert_eq!(FaultPlan::inert().injected(), 0);
    }

    #[test]
    fn torn_write_never_touches_the_destination() {
        let path = temp_path("torn");
        let plan = FaultPlan::armed();
        write_atomic_durable(&path, b"first", &plan).unwrap();
        plan.truncate_next_write(3);
        let err = write_atomic_durable(&path, b"second", &plan).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(
            fs::read(&path).unwrap(),
            b"first",
            "destination survives the torn write intact"
        );
        assert_eq!(plan.injected(), 1);
        // The plan is one-shot: the next write goes through.
        write_atomic_durable(&path, b"second", &plan).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
    }

    #[test]
    fn fsync_failure_surfaces_and_leaves_destination_intact() {
        let path = temp_path("fsync");
        let plan = FaultPlan::armed();
        write_atomic_durable(&path, b"first", &plan).unwrap();
        plan.fail_fsyncs(1);
        let err = write_atomic_durable(&path, b"second", &plan).unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"));
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic_durable(&path, b"third", &plan).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"third");
    }

    #[test]
    fn short_reads_truncate_once() {
        let path = temp_path("short");
        let plan = FaultPlan::armed();
        write_atomic_durable(&path, b"0123456789", &plan).unwrap();
        plan.truncate_next_read(4);
        assert_eq!(read_with(&path, &plan).unwrap(), b"0123");
        assert_eq!(read_with(&path, &plan).unwrap(), b"0123456789");
    }
}
