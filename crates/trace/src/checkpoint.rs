//! The versioned on-disk checkpoint format and the [`CheckpointWriter`]
//! session observer.
//!
//! A checkpoint document wraps a [`CheckpointState`] (the engine's
//! resumable frontier: schedule prefix, per-frame sets, statistics and
//! explored-set fingerprints) together with enough identity to refuse a
//! mismatched resume: the program name and fingerprint, the strategy
//! spec, and the seed. Like trace artifacts, documents carry a format
//! marker and integer version; readers accept any version `<=` their own
//! and reject newer ones.
//!
//! Durability: the writer goes through
//! [`write_atomic_durable`](crate::fault::write_atomic_durable) — temp
//! file, fsync, rename, parent-directory fsync — so a crash at any point
//! leaves either the previous checkpoint or the new one, never a torn
//! file.
//!
//! The same document doubles as the **lease wire envelope** in
//! distributed exploration: a `serve --distributed` coordinator inlines
//! the current frontier as a checkpoint document inside each subtree
//! lease, and a worker validates it with [`CheckpointDoc::check_matches`]
//! before resuming — so a lease for the wrong program, strategy or seed
//! is refused at the worker exactly as a mismatched `--resume` is
//! refused at the CLI. Incomplete slices return the end-of-slice
//! frontier in the same format.

use crate::artifact::{
    bug_kind_from_json, bug_kind_to_json, stats_from_json, stats_to_json, ArtifactError,
};
use crate::fault::{read_with, write_atomic_durable, FaultPlan};
use crate::json::Json;
use lazylocks::checkpoint::{CheckpointState, FrameSets};
use lazylocks::obs::{ids, MetricsHandle, MetricsShard};
use lazylocks::{BugReport, Observer};
use lazylocks_model::{Program, ThreadId};
use lazylocks_runtime::program_fingerprint;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Current checkpoint format version.
pub const CHECKPOINT_FORMAT_VERSION: u64 = 1;

/// The `"format"` marker every checkpoint document carries.
pub const CHECKPOINT_FORMAT_NAME: &str = "lazylocks-checkpoint";

/// The file name a [`CheckpointWriter`] maintains inside its directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// A self-identifying, resumable exploration snapshot.
#[derive(Debug, Clone)]
pub struct CheckpointDoc {
    /// The guest program's name (informational).
    pub program_name: String,
    /// Canonical fingerprint of the program the frontier belongs to.
    pub program_fingerprint: u128,
    /// The strategy registry spec the exploration ran under.
    pub strategy_spec: String,
    /// The exploration seed.
    pub seed: u64,
    /// The engine frontier itself.
    pub state: CheckpointState,
}

impl CheckpointDoc {
    /// Encodes the document as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// The document as a JSON value.
    pub fn to_json(&self) -> Json {
        let fps = |fps: &[u128]| Json::Arr(fps.iter().map(|&fp| Json::u128_hex(fp)).collect());
        Json::obj([
            ("format", Json::Str(CHECKPOINT_FORMAT_NAME.to_string())),
            (
                "format_version",
                Json::Int(i128::from(CHECKPOINT_FORMAT_VERSION)),
            ),
            (
                "program",
                Json::obj([
                    ("name", Json::Str(self.program_name.clone())),
                    ("fingerprint", Json::u128_hex(self.program_fingerprint)),
                ]),
            ),
            ("strategy", Json::Str(self.strategy_spec.clone())),
            ("seed", Json::Int(i128::from(self.seed))),
            (
                "schedule",
                Json::Arr(
                    self.state
                        .schedule
                        .iter()
                        .map(|t| Json::Int(i128::from(t.0)))
                        .collect(),
                ),
            ),
            (
                "frames",
                Json::Arr(
                    self.state
                        .frames
                        .iter()
                        .map(|f| {
                            Json::Arr(vec![
                                Json::Int(i128::from(f.backtrack)),
                                Json::Int(i128::from(f.done)),
                                Json::Int(i128::from(f.sleep)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("stats", stats_to_json(&self.state.stats)),
            (
                "first_bug",
                match &self.state.stats.first_bug {
                    None => Json::Null,
                    Some(bug) => Json::obj([
                        ("kind", bug_kind_to_json(&bug.kind)),
                        (
                            "schedule",
                            Json::Arr(
                                bug.schedule
                                    .iter()
                                    .map(|t| Json::Int(i128::from(t.0)))
                                    .collect(),
                            ),
                        ),
                        ("trace_len", Json::Int(bug.trace_len as i128)),
                    ]),
                },
            ),
            ("states", fps(&self.state.states)),
            ("hbrs", fps(&self.state.hbrs)),
            ("lazy_hbrs", fps(&self.state.lazy_hbrs)),
            ("pool_free", Json::Int(i128::from(self.state.pool_free))),
        ])
    }

    /// Parses a document from its JSON text.
    pub fn parse(text: &str) -> Result<CheckpointDoc, ArtifactError> {
        CheckpointDoc::from_json(&Json::parse(text)?)
    }

    /// Decodes a document from a JSON value.
    pub fn from_json(v: &Json) -> Result<CheckpointDoc, ArtifactError> {
        if v.get("format").and_then(Json::as_str) != Some(CHECKPOINT_FORMAT_NAME) {
            return Err(schema(
                "format",
                format!("missing or wrong format marker (want {CHECKPOINT_FORMAT_NAME:?})"),
            ));
        }
        let version = require(v, "format_version", Json::as_u64)?;
        if version > CHECKPOINT_FORMAT_VERSION {
            return Err(ArtifactError::Version { found: version });
        }
        let program = v
            .get("program")
            .ok_or_else(|| schema("program", "missing"))?;
        let schedule = thread_list(require(v, "schedule", Json::as_arr)?, "schedule")?;
        let frames = require(v, "frames", Json::as_arr)?
            .iter()
            .map(|f| {
                let triple = f.as_arr().filter(|t| t.len() == 3).ok_or_else(|| {
                    schema("frames", "not a [backtrack, done, sleep] bitmask triple")
                })?;
                let bits = |j: &Json| {
                    j.as_u64()
                        .ok_or_else(|| schema("frames", "bitmask out of range"))
                };
                Ok(FrameSets {
                    backtrack: bits(&triple[0])?,
                    done: bits(&triple[1])?,
                    sleep: bits(&triple[2])?,
                })
            })
            .collect::<Result<Vec<_>, ArtifactError>>()?;
        let mut stats = stats_from_json(v.get("stats").ok_or_else(|| schema("stats", "missing"))?)?;
        stats.first_bug = match v.get("first_bug") {
            None | Some(Json::Null) => None,
            Some(bug) => Some(BugReport {
                kind: bug_kind_from_json(
                    bug.get("kind")
                        .ok_or_else(|| schema("first_bug", "missing kind"))?,
                )?,
                schedule: thread_list(require(bug, "schedule", Json::as_arr)?, "first_bug")?,
                trace_len: require(bug, "trace_len", Json::as_usize)?,
            }),
        };
        let fps = |field: &'static str| -> Result<Vec<u128>, ArtifactError> {
            require(v, field, Json::as_arr)?
                .iter()
                .map(|j| {
                    j.as_u128_hex()
                        .ok_or_else(|| schema(field, "not a hex fingerprint"))
                })
                .collect()
        };
        let doc = CheckpointDoc {
            program_name: require(program, "name", Json::as_str)?.to_string(),
            program_fingerprint: require(program, "fingerprint", Json::as_u128_hex)?,
            strategy_spec: require(v, "strategy", Json::as_str)?.to_string(),
            seed: require(v, "seed", Json::as_u64)?,
            state: CheckpointState {
                schedule,
                frames,
                stats,
                states: fps("states")?,
                hbrs: fps("hbrs")?,
                lazy_hbrs: fps("lazy_hbrs")?,
                // Absent in documents written before pool warm-up
                // existed; a cold resume is still correct, merely off
                // by the pool-hit delta.
                pool_free: v.get("pool_free").and_then(Json::as_u64).unwrap_or(0),
            },
        };
        doc.state
            .validate()
            .map_err(|message| schema("frames", message))?;
        Ok(doc)
    }

    /// Checks the document against the program/strategy/seed of the run
    /// about to resume; an error names the first mismatch.
    pub fn check_matches(&self, program: &Program, spec: &str, seed: u64) -> Result<(), String> {
        let fp = program_fingerprint(program);
        if self.program_fingerprint != fp {
            return Err(format!(
                "checkpoint was taken from program {:#034x}, not {:#034x} ({})",
                self.program_fingerprint,
                fp,
                program.name()
            ));
        }
        if self.strategy_spec != spec {
            return Err(format!(
                "checkpoint was taken under strategy {:?}, not {spec:?}",
                self.strategy_spec
            ));
        }
        if self.seed != seed {
            return Err(format!(
                "checkpoint was taken with seed {}, not {seed}",
                self.seed
            ));
        }
        Ok(())
    }
}

fn schema(field: &'static str, message: impl Into<String>) -> ArtifactError {
    ArtifactError::Schema {
        field,
        message: message.into(),
    }
}

fn require<'a, T>(
    v: &'a Json,
    field: &'static str,
    accessor: impl Fn(&'a Json) -> Option<T>,
) -> Result<T, ArtifactError> {
    v.get(field)
        .and_then(accessor)
        .ok_or_else(|| schema(field, "missing or wrong type"))
}

fn thread_list(arr: &[Json], field: &'static str) -> Result<Vec<ThreadId>, ArtifactError> {
    arr.iter()
        .map(|t| {
            t.as_u64()
                .and_then(|t| u16::try_from(t).ok())
                .map(ThreadId)
                .ok_or_else(|| schema(field, "not a thread index"))
        })
        .collect()
}

/// Loads the checkpoint document maintained by a [`CheckpointWriter`]
/// under `dir`.
pub fn load_checkpoint(dir: &Path) -> io::Result<Result<CheckpointDoc, ArtifactError>> {
    let bytes = read_with(&dir.join(CHECKPOINT_FILE), &FaultPlan::inert())?;
    let text = String::from_utf8_lossy(&bytes);
    Ok(CheckpointDoc::parse(&text))
}

/// A session [`Observer`] that persists every frontier snapshot the
/// engine emits (see `ExploreConfig::checkpoint_every`) to
/// `dir/checkpoint.json`, atomically and durably. Write failures are
/// recorded (and printed to stderr once per distinct error) but never
/// interrupt the exploration — a checkpoint is a best-effort safety net.
pub struct CheckpointWriter {
    path: PathBuf,
    program_name: String,
    program_fingerprint: u128,
    strategy_spec: String,
    seed: u64,
    faults: FaultPlan,
    shard: MetricsShard,
    last_error: Mutex<Option<String>>,
}

impl CheckpointWriter {
    /// A writer maintaining `dir/checkpoint.json` for an exploration of
    /// `program` under `spec` with `seed`. Creates `dir` if needed.
    pub fn new(
        dir: impl Into<PathBuf>,
        program: &Program,
        spec: &str,
        seed: u64,
    ) -> io::Result<CheckpointWriter> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointWriter {
            path: dir.join(CHECKPOINT_FILE),
            program_name: program.name().to_string(),
            program_fingerprint: program_fingerprint(program),
            strategy_spec: spec.to_string(),
            seed,
            faults: FaultPlan::inert(),
            shard: MetricsShard::disabled(),
            last_error: Mutex::new(None),
        })
    }

    /// Records checkpoint counters (`checkpoints_written`,
    /// `checkpoint_bytes`) on `metrics`, returning `self` for chaining.
    pub fn with_metrics(mut self, metrics: &MetricsHandle) -> CheckpointWriter {
        self.shard = metrics.shard();
        self
    }

    /// Injects a fault plan (tests), returning `self` for chaining.
    pub fn with_faults(mut self, faults: FaultPlan) -> CheckpointWriter {
        self.faults = faults;
        self
    }

    /// The checkpoint file this writer maintains.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The most recent write error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().unwrap().clone()
    }
}

impl Observer for CheckpointWriter {
    fn on_checkpoint(&self, checkpoint: &CheckpointState) {
        let doc = CheckpointDoc {
            program_name: self.program_name.clone(),
            program_fingerprint: self.program_fingerprint,
            strategy_spec: self.strategy_spec.clone(),
            seed: self.seed,
            state: checkpoint.clone(),
        };
        let text = doc.to_json_string();
        match write_atomic_durable(&self.path, text.as_bytes(), &self.faults) {
            Ok(()) => {
                self.shard.inc(ids::CHECKPOINTS_WRITTEN);
                self.shard.add(ids::CHECKPOINT_BYTES, text.len() as u64);
                *self.last_error.lock().unwrap() = None;
            }
            Err(e) => {
                let msg = e.to_string();
                let mut last = self.last_error.lock().unwrap();
                if last.as_deref() != Some(&msg) {
                    eprintln!(
                        "warning: checkpoint write to {} failed: {msg}",
                        self.path.display()
                    );
                }
                *last = Some(msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::checkpoint::FrameSets;
    use lazylocks::{BugKind, ExploreStats};
    use lazylocks_model::ProgramBuilder;

    fn sample_doc() -> CheckpointDoc {
        CheckpointDoc {
            program_name: "sample".to_string(),
            program_fingerprint: 0xdead_beef_dead_beef_dead_beef_dead_beef,
            strategy_spec: "dpor(sleep=true)".to_string(),
            seed: 7,
            state: CheckpointState {
                schedule: vec![ThreadId(0), ThreadId(2)],
                frames: vec![
                    FrameSets {
                        backtrack: 0b101,
                        done: 0b001,
                        sleep: 0,
                    },
                    FrameSets {
                        backtrack: 0b100,
                        done: 0b100,
                        sleep: 0b010,
                    },
                    FrameSets {
                        backtrack: 0b001,
                        done: 0,
                        sleep: 0,
                    },
                ],
                stats: ExploreStats {
                    schedules: 40,
                    events: 300,
                    unique_states: 5,
                    unique_hbrs: 9,
                    unique_lazy_hbrs: 7,
                    deadlocks: 1,
                    max_depth: 12,
                    sleep_prunes: 3,
                    events_compared: 88,
                    first_bug: Some(BugReport {
                        kind: BugKind::Deadlock {
                            waiting: vec![(ThreadId(0), lazylocks_model::MutexId(1))],
                        },
                        schedule: vec![ThreadId(1), ThreadId(0)],
                        trace_len: 2,
                    }),
                    ..ExploreStats::default()
                },
                states: vec![1, 2, u128::MAX],
                hbrs: vec![3, 4],
                lazy_hbrs: vec![5],
                pool_free: 11,
            },
        }
    }

    #[test]
    fn document_round_trips() {
        let doc = sample_doc();
        let back = CheckpointDoc::parse(&doc.to_json_string()).unwrap();
        assert_eq!(back.program_name, doc.program_name);
        assert_eq!(back.program_fingerprint, doc.program_fingerprint);
        assert_eq!(back.strategy_spec, doc.strategy_spec);
        assert_eq!(back.seed, doc.seed);
        assert_eq!(back.state.schedule, doc.state.schedule);
        assert_eq!(back.state.frames, doc.state.frames);
        assert_eq!(back.state.states, doc.state.states);
        assert_eq!(back.state.hbrs, doc.state.hbrs);
        assert_eq!(back.state.lazy_hbrs, doc.state.lazy_hbrs);
        assert_eq!(back.state.pool_free, 11);
        assert_eq!(back.state.stats.schedules, 40);
        assert_eq!(back.state.stats.events_compared, 88);
        let bug = back.state.stats.first_bug.unwrap();
        assert_eq!(bug.schedule, vec![ThreadId(1), ThreadId(0)]);
        assert!(matches!(bug.kind, BugKind::Deadlock { .. }));
    }

    #[test]
    fn newer_versions_and_bad_frames_are_rejected() {
        let doc = sample_doc();
        let text = doc
            .to_json_string()
            .replace("\"format_version\": 1", "\"format_version\": 99");
        assert!(matches!(
            CheckpointDoc::parse(&text),
            Err(ArtifactError::Version { found: 99 })
        ));

        let mut bad = doc.clone();
        bad.state.frames.pop();
        let err = CheckpointDoc::parse(&bad.to_json_string()).unwrap_err();
        assert!(err.to_string().contains("frames"), "{err}");
    }

    #[test]
    fn check_matches_names_the_mismatch() {
        let mut b = ProgramBuilder::new("other");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        let p = b.build();
        let doc = sample_doc();
        let err = doc.check_matches(&p, "dpor(sleep=true)", 7).unwrap_err();
        assert!(err.contains("program"), "{err}");

        let mut same_fp = doc.clone();
        same_fp.program_fingerprint = program_fingerprint(&p);
        assert!(same_fp
            .check_matches(&p, "dpor", 7)
            .unwrap_err()
            .contains("strategy"));
        assert!(same_fp
            .check_matches(&p, "dpor(sleep=true)", 8)
            .unwrap_err()
            .contains("seed"));
        same_fp.check_matches(&p, "dpor(sleep=true)", 7).unwrap();
    }

    #[test]
    fn writer_persists_and_counts_checkpoints() {
        let dir = std::env::temp_dir().join(format!(
            "lazylocks-checkpoint-writer-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut b = ProgramBuilder::new("cp");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        let p = b.build();
        let handle = MetricsHandle::enabled();
        let writer = CheckpointWriter::new(&dir, &p, "dpor", 0)
            .unwrap()
            .with_metrics(&handle);
        let state = sample_doc().state;
        writer.on_checkpoint(&state);
        writer.on_checkpoint(&state);
        assert!(writer.last_error().is_none());
        let doc = load_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(doc.state.schedule, state.schedule);
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.value("lazylocks_checkpoints_written_total"), 2);
        assert!(snap.value("lazylocks_checkpoint_bytes_total") > 0);
    }

    #[test]
    fn torn_checkpoint_write_keeps_the_previous_checkpoint() {
        let dir =
            std::env::temp_dir().join(format!("lazylocks-checkpoint-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut b = ProgramBuilder::new("cp");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        let p = b.build();
        let faults = FaultPlan::armed();
        let writer = CheckpointWriter::new(&dir, &p, "dpor", 0)
            .unwrap()
            .with_faults(faults.clone());
        let mut state = sample_doc().state;
        writer.on_checkpoint(&state);

        state.stats.schedules += 10;
        faults.truncate_next_write(20);
        writer.on_checkpoint(&state);
        assert!(writer.last_error().is_some(), "torn write must be reported");
        let doc = load_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(
            doc.state.stats.schedules, 40,
            "previous checkpoint survives the torn write"
        );
    }
}
