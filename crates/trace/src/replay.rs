//! Replay verification of trace artifacts.
//!
//! Loading an artifact and re-running its schedule classifies the result:
//!
//! * [`ReplayVerdict::Reproduced`] — the schedule replays and exhibits the
//!   same bug class the artifact recorded (or, for witness traces, the
//!   same clean outcome);
//! * [`ReplayVerdict::Diverged`] — the program still matches but the
//!   schedule is infeasible or produces a different outcome (a regression
//!   in the scheduler, or a stale hand-edited schedule);
//! * [`ReplayVerdict::ProgramChanged`] — the program under test no longer
//!   matches the artifact's fingerprint, so the schedule is meaningless.

use crate::artifact::{bug_class, ArtifactError, TraceArtifact};
use lazylocks::obs::ids;
use lazylocks::{BugKind, MetricsHandle};
use lazylocks_model::Program;
use lazylocks_runtime::{program_fingerprint, run_schedule, RunResult, RunStatus};
use std::fmt;

/// How a replay attempt classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// Same program, same bug class: the artifact is a live counterexample.
    Reproduced,
    /// Same program, different outcome: the artifact no longer reproduces.
    Diverged,
    /// The program's fingerprint does not match the artifact's.
    ProgramChanged,
}

impl fmt::Display for ReplayVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplayVerdict::Reproduced => "reproduced",
            ReplayVerdict::Diverged => "diverged",
            ReplayVerdict::ProgramChanged => "program-changed",
        })
    }
}

/// The result of replaying one artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// The classification.
    pub verdict: ReplayVerdict,
    /// What the artifact promised (a bug class, or `"clean"`).
    pub expected: String,
    /// What the replay observed.
    pub observed: String,
    /// A human-readable diagnosis of the verdict.
    pub details: String,
}

impl ReplayReport {
    /// `true` iff the verdict is [`ReplayVerdict::Reproduced`].
    pub fn reproduced(&self) -> bool {
        self.verdict == ReplayVerdict::Reproduced
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.verdict, self.details)
    }
}

/// Replays `artifact` against the program embedded in the artifact itself
/// — the fresh-process path, needing nothing but the artifact file.
///
/// Errors only if the embedded source no longer parses (a corrupted
/// artifact); a source that parses to a *different* program than the
/// recorded fingerprint classifies as [`ReplayVerdict::ProgramChanged`].
pub fn replay_embedded(artifact: &TraceArtifact) -> Result<ReplayReport, ArtifactError> {
    replay_embedded_with(artifact, &MetricsHandle::disabled())
}

/// [`replay_embedded`] with replay attempts and replayed event volumes
/// recorded into `metrics` (`lazylocks_replays_total` /
/// `lazylocks_replay_events_total`).
pub fn replay_embedded_with(
    artifact: &TraceArtifact,
    metrics: &MetricsHandle,
) -> Result<ReplayReport, ArtifactError> {
    let program = Program::parse(&artifact.program_source).map_err(|e| ArtifactError::Schema {
        field: "program",
        message: format!("embedded source does not parse: {e}"),
    })?;
    Ok(replay_against_with(artifact, &program, metrics))
}

/// Replays `artifact` against a caller-supplied `program` (e.g. the
/// current version of a benchmark), classifying the result.
pub fn replay_against(artifact: &TraceArtifact, program: &Program) -> ReplayReport {
    replay_against_with(artifact, program, &MetricsHandle::disabled())
}

/// [`replay_against`] with replay attempts and replayed event volumes
/// recorded into `metrics`.
pub fn replay_against_with(
    artifact: &TraceArtifact,
    program: &Program,
    metrics: &MetricsHandle,
) -> ReplayReport {
    let shard = metrics.shard();
    shard.inc(ids::REPLAYS);
    let expected = artifact.outcome_label();
    let actual_fp = program_fingerprint(program);
    if actual_fp != artifact.program_fingerprint {
        return ReplayReport {
            verdict: ReplayVerdict::ProgramChanged,
            expected,
            observed: "?".to_string(),
            details: format!(
                "program {:?} has fingerprint {:032x} but the artifact records \
                 {:032x}; the schedule is not applicable to this program",
                program.name(),
                actual_fp,
                artifact.program_fingerprint
            ),
        };
    }
    let run = match run_schedule(program, &artifact.schedule) {
        Ok(run) => run,
        Err(infeasible) => {
            return ReplayReport {
                verdict: ReplayVerdict::Diverged,
                expected,
                observed: "infeasible schedule".to_string(),
                details: format!("recorded schedule no longer replays: {infeasible}"),
            }
        }
    };
    shard.add(ids::REPLAY_EVENTS, run.trace.len() as u64);
    let observed = observed_label(&run);
    let (verdict, details) = match &artifact.bug {
        Some(kind) if bug_matches(kind, &run) => (
            ReplayVerdict::Reproduced,
            format!(
                "schedule of {} choices reproduces {expected} in {} events",
                artifact.schedule.len(),
                run.trace.len()
            ),
        ),
        Some(_) => (
            ReplayVerdict::Diverged,
            format!("artifact records {expected} but the replay observed {observed}"),
        ),
        None if !run.has_bug() => (
            ReplayVerdict::Reproduced,
            format!(
                "witness schedule of {} choices replays cleanly",
                artifact.schedule.len()
            ),
        ),
        None => (
            ReplayVerdict::Diverged,
            format!("witness artifact expected a clean run but observed {observed}"),
        ),
    };
    ReplayReport {
        verdict,
        expected,
        observed,
        details,
    }
}

/// Does `run` exhibit the same bug class as `kind`? Deadlocks match any
/// deadlock; faults match a fault raised by the same thread with the same
/// fault kind (the classification [`minimize_schedule`] preserves).
///
/// [`minimize_schedule`]: lazylocks::minimize_schedule
pub fn bug_matches(kind: &BugKind, run: &RunResult) -> bool {
    match kind {
        BugKind::Deadlock { .. } => run.status.is_deadlock(),
        BugKind::Fault(original) => run
            .faults
            .iter()
            .any(|f| f.thread == original.thread && f.kind == original.kind),
    }
}

fn observed_label(run: &RunResult) -> String {
    if let RunStatus::Deadlock { waiting } = &run.status {
        return bug_class(&BugKind::Deadlock {
            waiting: waiting.clone(),
        });
    }
    if let Some(fault) = run.faults.first() {
        return bug_class(&BugKind::Fault(fault.clone()));
    }
    match run.status {
        RunStatus::StepLimit => "step-limit".to_string(),
        _ => "clean".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{BugReport, Dpor, ExploreConfig, Explorer};
    use lazylocks_model::{ProgramBuilder, ThreadId};

    fn abba(noise_init: i64) -> Program {
        let mut b = ProgramBuilder::new("abba");
        let _noise = b.var("noise", noise_init);
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        b.thread("T1", |t| {
            t.lock(l0);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l0);
        });
        b.thread("T2", |t| {
            t.lock(l1);
            t.lock(l0);
            t.unlock(l0);
            t.unlock(l1);
        });
        b.build()
    }

    fn deadlock_bug(p: &Program) -> BugReport {
        Dpor::default()
            .explore(p, &ExploreConfig::with_limit(10_000).stopping_on_bug())
            .first_bug
            .expect("abba deadlocks")
    }

    #[test]
    fn reproduced_from_embedded_program() {
        let p = abba(0);
        let artifact = TraceArtifact::from_bug(&p, "dpor", 1, &deadlock_bug(&p));
        let report = replay_embedded(&artifact).unwrap();
        assert_eq!(report.verdict, ReplayVerdict::Reproduced);
        assert!(report.reproduced());
        assert_eq!(report.expected, "deadlock");
        assert_eq!(report.observed, "deadlock");
    }

    #[test]
    fn mutated_program_classifies_as_program_changed() {
        let p = abba(0);
        let artifact = TraceArtifact::from_bug(&p, "dpor", 1, &deadlock_bug(&p));
        let mutated = abba(1);
        let report = replay_against(&artifact, &mutated);
        assert_eq!(report.verdict, ReplayVerdict::ProgramChanged);
        assert!(report.details.contains("fingerprint"));
    }

    #[test]
    fn wrong_bug_class_classifies_as_diverged() {
        let p = abba(0);
        let mut artifact = TraceArtifact::from_bug(&p, "dpor", 1, &deadlock_bug(&p));
        // Claim the schedule faults instead of deadlocking.
        artifact.bug = Some(BugKind::Fault(lazylocks_runtime::Fault {
            thread: ThreadId(0),
            pc: 0,
            kind: lazylocks_runtime::FaultKind::LocalStepBudget,
        }));
        let report = replay_against(&artifact, &p);
        assert_eq!(report.verdict, ReplayVerdict::Diverged);
        assert!(report.details.contains("deadlock"));
    }

    #[test]
    fn infeasible_schedule_classifies_as_diverged() {
        let p = abba(0);
        let mut artifact = TraceArtifact::from_bug(&p, "dpor", 1, &deadlock_bug(&p));
        // T1 has only four visible operations; a fifth T1 choice asks for
        // a finished thread, which replay rejects as infeasible.
        artifact.schedule = vec![ThreadId(0); 5];
        let report = replay_against(&artifact, &p);
        assert_eq!(report.verdict, ReplayVerdict::Diverged);
        assert!(report.observed.contains("infeasible"));
    }

    #[test]
    fn clean_witness_replays() {
        let p = abba(0);
        let mut artifact = TraceArtifact::from_bug(&p, "dpor", 1, &deadlock_bug(&p));
        // An empty prefix completes in thread order: T1 runs to completion
        // before T2 starts, which is deadlock-free.
        artifact.bug = None;
        artifact.schedule = Vec::new();
        let report = replay_against(&artifact, &p);
        assert_eq!(report.verdict, ReplayVerdict::Reproduced);
        assert_eq!(report.expected, "clean");

        // A witness that actually deadlocks diverges.
        let mut bad = artifact;
        bad.schedule = vec![ThreadId(0), ThreadId(1)];
        let report = replay_against(&bad, &p);
        assert_eq!(report.verdict, ReplayVerdict::Diverged);
    }

    #[test]
    fn corrupted_embedded_source_is_an_error() {
        let p = abba(0);
        let mut artifact = TraceArtifact::from_bug(&p, "dpor", 1, &deadlock_bug(&p));
        artifact.program_source = "not a program".to_string();
        assert!(replay_embedded(&artifact).is_err());
    }

    #[test]
    fn hand_edited_source_is_program_changed() {
        let p = abba(0);
        let mut artifact = TraceArtifact::from_bug(&p, "dpor", 1, &deadlock_bug(&p));
        // Valid replacement source that is a different program.
        artifact.program_source = abba(1).to_source();
        let report = replay_embedded(&artifact).unwrap();
        assert_eq!(report.verdict, ReplayVerdict::ProgramChanged);
    }
}
