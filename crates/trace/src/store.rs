//! The on-disk corpus store.
//!
//! A corpus is a directory of `*.json` trace artifacts (by convention
//! `.lazylocks/corpus/` at the repository root). Artifacts are keyed by
//! [`TraceArtifact::corpus_key`] — program fingerprint plus bug class — so
//! re-finding a known bug along a different interleaving deduplicates
//! instead of piling up files. All writes are atomic *and durable* (temp
//! file + fsync + rename + parent-directory fsync), so a crashed or
//! concurrent writer never leaves a torn artifact behind and a completed
//! save survives a power cut.

use crate::artifact::{ArtifactError, TraceArtifact};
use crate::fault::{write_atomic_durable, FaultPlan};
use crate::replay::replay_embedded;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A corpus directory.
#[derive(Debug, Clone)]
pub struct CorpusStore {
    root: PathBuf,
    faults: FaultPlan,
}

/// What [`CorpusStore::save`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaveOutcome {
    /// A new artifact was written at the path.
    Saved(PathBuf),
    /// An artifact with the same corpus key already exists at the path;
    /// nothing was written.
    Deduplicated(PathBuf),
}

impl SaveOutcome {
    /// The artifact's path, whether freshly written or pre-existing.
    pub fn path(&self) -> &Path {
        match self {
            SaveOutcome::Saved(p) | SaveOutcome::Deduplicated(p) => p,
        }
    }
}

/// One corpus file, as seen by [`CorpusStore::list`]: decoding is
/// per-entry, so a single corrupted file doesn't hide the rest.
#[derive(Debug)]
pub struct CorpusEntry {
    /// The artifact file.
    pub path: PathBuf,
    /// The decoded artifact, or why decoding failed.
    pub artifact: Result<TraceArtifact, ArtifactError>,
}

/// What [`CorpusStore::prune`] removed and kept.
#[derive(Debug, Default)]
pub struct PruneReport {
    /// Artifacts that still reproduce and were kept.
    pub kept: usize,
    /// Removed files, each with the reason for removal.
    pub removed: Vec<(PathBuf, String)>,
}

impl CorpusStore {
    /// The conventional corpus location: `.lazylocks/corpus/`.
    pub fn default_root() -> PathBuf {
        PathBuf::from(".lazylocks").join("corpus")
    }

    /// Opens (creating if needed) a corpus at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<CorpusStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(CorpusStore {
            root,
            faults: FaultPlan::inert(),
        })
    }

    /// Injects a fault plan into every subsequent write (tests).
    pub fn with_faults(mut self, faults: FaultPlan) -> CorpusStore {
        self.faults = faults;
        self
    }

    /// The corpus directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The canonical file name for an artifact: sanitized program name plus
    /// the low 64 bits of the corpus key.
    pub fn path_for(&self, artifact: &TraceArtifact) -> PathBuf {
        let mut name: String = artifact
            .program_name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .take(48)
            .collect();
        if name.is_empty() {
            name.push_str("trace");
        }
        let key = artifact.corpus_key() as u64;
        self.root.join(format!("{name}-{key:016x}.json"))
    }

    /// Saves `artifact` unless an artifact with the same corpus key is
    /// already present (fingerprint-keyed dedup). The write is atomic.
    pub fn save(&self, artifact: &TraceArtifact) -> io::Result<SaveOutcome> {
        let path = self.path_for(artifact);
        if path.exists() {
            return Ok(SaveOutcome::Deduplicated(path));
        }
        self.write_atomic(&path, artifact)?;
        Ok(SaveOutcome::Saved(path))
    }

    /// Saves `artifact`, replacing any existing artifact with the same
    /// corpus key (used to upgrade a streamed artifact with final stats or
    /// a minimised schedule). The write is atomic.
    pub fn save_overwrite(&self, artifact: &TraceArtifact) -> io::Result<PathBuf> {
        let path = self.path_for(artifact);
        self.write_atomic(&path, artifact)?;
        Ok(path)
    }

    fn write_atomic(&self, path: &Path, artifact: &TraceArtifact) -> io::Result<()> {
        write_atomic_durable(path, artifact.to_json_string().as_bytes(), &self.faults)
    }

    /// Lists the corpus in deterministic (path-sorted) order. Files that do
    /// not decode are included with their error.
    pub fn list(&self) -> io::Result<Vec<CorpusEntry>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.root)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        Ok(paths
            .into_iter()
            .map(|path| {
                let artifact = fs::read_to_string(&path)
                    .map_err(|e| ArtifactError::Schema {
                        field: "program",
                        message: format!("unreadable file: {e}"),
                    })
                    .and_then(|text| TraceArtifact::parse(&text));
                CorpusEntry { path, artifact }
            })
            .collect())
    }

    /// Prunes the corpus: removes artifacts that no longer decode or whose
    /// embedded-program replay is not
    /// [`Reproduced`](crate::replay::ReplayVerdict::Reproduced) (diverged
    /// schedules, hand-edited programs). Keeps everything that still
    /// reproduces.
    pub fn prune(&self) -> io::Result<PruneReport> {
        let mut report = PruneReport::default();
        for entry in self.list()? {
            let reason = match &entry.artifact {
                Err(e) => Some(format!("does not decode: {e}")),
                Ok(artifact) => match replay_embedded(artifact) {
                    Err(e) => Some(format!("embedded program is corrupt: {e}")),
                    Ok(r) if !r.reproduced() => Some(r.to_string()),
                    Ok(_) => None,
                },
            };
            match reason {
                Some(reason) => {
                    fs::remove_file(&entry.path)?;
                    report.removed.push((entry.path, reason));
                }
                None => report.kept += 1,
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{Dpor, ExploreConfig, Explorer};
    use lazylocks_model::{Program, ProgramBuilder, ThreadId};

    fn temp_store(tag: &str) -> CorpusStore {
        let dir =
            std::env::temp_dir().join(format!("lazylocks-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CorpusStore::open(dir).unwrap()
    }

    fn abba() -> Program {
        let mut b = ProgramBuilder::new("abba");
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        b.thread("T1", |t| {
            t.lock(l0);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l0);
        });
        b.thread("T2", |t| {
            t.lock(l1);
            t.lock(l0);
            t.unlock(l0);
            t.unlock(l1);
        });
        b.build()
    }

    fn deadlock_artifact(p: &Program) -> TraceArtifact {
        let bug = Dpor::default()
            .explore(p, &ExploreConfig::with_limit(10_000).stopping_on_bug())
            .first_bug
            .expect("abba deadlocks");
        TraceArtifact::from_bug(p, "dpor", 1, &bug)
    }

    #[test]
    fn save_dedups_by_corpus_key() {
        let store = temp_store("dedup");
        let p = abba();
        let a = deadlock_artifact(&p);
        let first = store.save(&a).unwrap();
        assert!(matches!(first, SaveOutcome::Saved(_)));
        assert!(first.path().exists());

        // Same bug along a longer schedule: deduplicated.
        let mut again = a.clone();
        again.schedule = {
            let mut s = vec![ThreadId(0)];
            s.extend(a.schedule.iter().copied());
            s
        };
        let second = store.save(&again).unwrap();
        assert!(matches!(second, SaveOutcome::Deduplicated(_)));
        assert_eq!(first.path(), second.path());
        assert_eq!(store.list().unwrap().len(), 1);

        // Overwrite replaces the content in place.
        let path = store.save_overwrite(&again).unwrap();
        assert_eq!(path, first.path());
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(
            listed[0].artifact.as_ref().unwrap().schedule,
            again.schedule
        );
    }

    #[test]
    fn list_surfaces_corrupted_entries_without_hiding_good_ones() {
        let store = temp_store("list");
        let p = abba();
        store.save(&deadlock_artifact(&p)).unwrap();
        fs::write(store.root().join("corrupt.json"), "{ nope").unwrap();
        fs::write(store.root().join("ignored.txt"), "not an artifact").unwrap();
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 2, "txt files are ignored");
        assert_eq!(
            entries.iter().filter(|e| e.artifact.is_ok()).count(),
            1,
            "one good entry"
        );
    }

    #[test]
    fn prune_removes_corrupt_and_non_reproducing_entries() {
        let store = temp_store("prune");
        let p = abba();
        let good = deadlock_artifact(&p);
        store.save(&good).unwrap();

        // A hand-edited artifact whose schedule no longer deadlocks.
        let mut stale = good.clone();
        stale.schedule = Vec::new(); // thread-order completion is clean
        stale.program_name = "abba-stale".to_string(); // distinct corpus slot
        store.save(&stale).unwrap();

        fs::write(store.root().join("corrupt.json"), "{").unwrap();

        let report = store.prune().unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed.len(), 2);
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].artifact.is_ok());
    }

    #[test]
    fn file_names_are_sanitized() {
        let store = temp_store("names");
        let p = abba();
        let mut a = deadlock_artifact(&p);
        a.program_name = "we/ird name!§".to_string();
        let path = store.save_overwrite(&a).unwrap();
        let file = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            file.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'),
            "{file}"
        );
    }

    #[test]
    fn torn_save_leaves_no_artifact_and_keeps_the_corpus_listable() {
        let store = temp_store("torn");
        let p = abba();
        let good = deadlock_artifact(&p);
        store.save(&good).unwrap();

        let faults = crate::fault::FaultPlan::armed();
        let store = store.with_faults(faults.clone());
        let mut other = good.clone();
        other.program_name = "abba-torn".to_string();
        faults.truncate_next_write(10);
        let err = store.save(&other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);

        // The torn temp file never becomes a corpus entry; the good
        // artifact is still listed and decodes.
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].artifact.is_ok());

        // Retrying after the "crash" succeeds.
        assert!(matches!(store.save(&other).unwrap(), SaveOutcome::Saved(_)));
        assert_eq!(store.list().unwrap().len(), 2);
    }

    #[test]
    fn witness_artifact_reproduce_check() {
        // A clean witness artifact survives prune.
        let store = temp_store("witness");
        let p = abba();
        let mut a = deadlock_artifact(&p);
        a.bug = None;
        a.schedule = Vec::new();
        store.save(&a).unwrap();
        let report = store.prune().unwrap();
        assert_eq!(report.kept, 1);
        assert!(report.removed.is_empty());
    }
}
