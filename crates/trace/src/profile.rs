//! The versioned exploration-profile document and its human-readable
//! report renderer.
//!
//! The obs-layer [`ProfileSnapshot`] is deliberately name-blind (it sits
//! below the program model in the dependency graph): sites are
//! `(thread, pc)` pairs, objects are raw indices. This module is where
//! names come back — [`ProfileDoc`] wraps a snapshot with the program
//! and strategy it profiled, and [`render_profile`] resolves every site
//! to its instruction and object (`mutex 'm2' at t1:ins 7`) so the
//! report answers "which program point is costing us the schedules?".
//!
//! The versioning policy matches the trace-artifact format: readers
//! accept any version `<=` their own, writers always emit the current
//! one.

use crate::json::{Json, JsonError};
use lazylocks::obs::{site, ProfileSnapshot};
use lazylocks_model::{Instr, Program};
use std::fmt::Write as _;

/// Current profile-document format version.
pub const PROFILE_FORMAT_VERSION: u64 = 1;

/// The `"format"` marker every profile document carries.
pub const PROFILE_FORMAT_NAME: &str = "lazylocks-profile-doc";

/// Hot-site rows rendered in the text report.
const REPORT_TOP_SITES: usize = 20;

/// Errors from [`ProfileDoc::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileDocError {
    /// The text is not well-formed JSON.
    Json(JsonError),
    /// The JSON does not match the document schema.
    Schema {
        /// The offending field.
        field: &'static str,
        /// What is wrong with it.
        message: String,
    },
    /// The document was written by a newer tool.
    Version {
        /// The version the document declares.
        found: u64,
    },
}

impl std::fmt::Display for ProfileDocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileDocError::Json(e) => write!(f, "invalid JSON: {e}"),
            ProfileDocError::Schema { field, message } => {
                write!(f, "invalid profile document: field '{field}': {message}")
            }
            ProfileDocError::Version { found } => write!(
                f,
                "profile document version {found} is newer than this tool \
                 (supports <= {PROFILE_FORMAT_VERSION})"
            ),
        }
    }
}

impl std::error::Error for ProfileDocError {}

/// A persistent record of one exploration's profile: which program and
/// strategy ran, and the (typically scrubbed) profiler snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDoc {
    /// Version of the tool that wrote the document.
    pub tool_version: String,
    /// The profiled program's name.
    pub program_name: String,
    /// The program's canonical `.llk` source, embedded so the document
    /// renders standalone (sites resolve to names without the original
    /// benchmark) — the same self-containment contract as trace
    /// artifacts.
    pub program_source: String,
    /// The strategy spec that ran.
    pub strategy_spec: String,
    /// The profiler snapshot, in the obs-layer `lazylocks-profile` JSON
    /// schema (embedded verbatim).
    pub profile: Json,
}

impl ProfileDoc {
    /// Builds a document from a snapshot. Scrub before calling when the
    /// output must be byte-identical across runs
    /// ([`ProfileSnapshot::scrubbed`]).
    pub fn new(program: &Program, strategy_spec: &str, snapshot: &ProfileSnapshot) -> ProfileDoc {
        let profile = Json::parse(&snapshot.to_json_string())
            .expect("ProfileSnapshot::to_json_string produced invalid JSON");
        ProfileDoc {
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            program_name: program.name().to_string(),
            program_source: program.to_source(),
            strategy_spec: strategy_spec.to_string(),
            profile,
        }
    }

    /// Re-parses the embedded program, for standalone rendering.
    pub fn program(&self) -> Result<Program, String> {
        Program::parse(&self.program_source)
            .map_err(|e| format!("embedded program no longer parses: {e}"))
    }

    /// The document as JSON, stable field order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format", Json::Str(PROFILE_FORMAT_NAME.to_string())),
            ("format_version", Json::Int(PROFILE_FORMAT_VERSION as i128)),
            ("tool_version", Json::Str(self.tool_version.clone())),
            ("program", Json::Str(self.program_name.clone())),
            ("program_source", Json::Str(self.program_source.clone())),
            ("strategy", Json::Str(self.strategy_spec.clone())),
            ("profile", self.profile.clone()),
        ])
    }

    /// Serializes the document.
    pub fn to_json_string(&self) -> String {
        self.to_json().encode()
    }

    /// Parses a serialized document, enforcing format and version.
    pub fn parse(text: &str) -> Result<ProfileDoc, ProfileDocError> {
        let json = Json::parse(text).map_err(ProfileDocError::Json)?;
        let field = |f: &'static str| -> Result<&Json, ProfileDocError> {
            json.get(f).ok_or(ProfileDocError::Schema {
                field: f,
                message: "missing".to_string(),
            })
        };
        let str_field = |f: &'static str| -> Result<String, ProfileDocError> {
            field(f)?
                .as_str()
                .map(str::to_string)
                .ok_or(ProfileDocError::Schema {
                    field: f,
                    message: "expected a string".to_string(),
                })
        };
        let format = str_field("format")?;
        if format != PROFILE_FORMAT_NAME {
            return Err(ProfileDocError::Schema {
                field: "format",
                message: format!("expected '{PROFILE_FORMAT_NAME}', found '{format}'"),
            });
        }
        let version = field("format_version")?
            .as_u64()
            .ok_or(ProfileDocError::Schema {
                field: "format_version",
                message: "expected an integer".to_string(),
            })?;
        if version > PROFILE_FORMAT_VERSION {
            return Err(ProfileDocError::Version { found: version });
        }
        Ok(ProfileDoc {
            tool_version: str_field("tool_version")?,
            program_name: str_field("program")?,
            program_source: str_field("program_source")?,
            strategy_spec: str_field("strategy")?,
            profile: field("profile")?.clone(),
        })
    }

    /// Decodes the embedded snapshot back into its typed form.
    pub fn snapshot(&self) -> Result<ProfileSnapshot, ProfileDocError> {
        snapshot_from_json(&self.profile)
    }

    /// Renders the text report from the document alone (embedded program
    /// + embedded snapshot) — no re-exploration, no original benchmark.
    pub fn render(&self) -> Result<String, String> {
        let program = self.program()?;
        let snap = self.snapshot().map_err(|e| e.to_string())?;
        Ok(render_profile(&program, &self.strategy_spec, &snap))
    }
}

/// Decodes the obs-layer `lazylocks-profile` JSON back into a
/// [`ProfileSnapshot`] — the inverse of
/// [`ProfileSnapshot::to_json_string`], so saved documents render
/// without re-running the exploration.
pub fn snapshot_from_json(v: &Json) -> Result<ProfileSnapshot, ProfileDocError> {
    use lazylocks::obs::{ClassSnap, DepthSnap, ObjSnap, ProfileObj, SiteSnap, SpanSnap};
    fn err(field: &'static str, message: impl Into<String>) -> ProfileDocError {
        ProfileDocError::Schema {
            field,
            message: message.into(),
        }
    }
    fn req_u64(v: &Json, key: &str, field: &'static str) -> Result<u64, ProfileDocError> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| err(field, format!("missing integer '{key}'")))
    }
    fn counts(v: &Json, field: &'static str) -> Result<[u64; site::KINDS], ProfileDocError> {
        let mut out = [0u64; site::KINDS];
        for (slot, name) in out.iter_mut().zip(site::NAMES) {
            *slot = req_u64(v, name, field)?;
        }
        Ok(out)
    }
    fn arr<'j>(v: &'j Json, key: &str, field: &'static str) -> Result<&'j [Json], ProfileDocError> {
        v.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| err(field, format!("missing array '{key}'")))
    }

    let sites = arr(v, "sites", "sites")?
        .iter()
        .map(|s| {
            Ok(SiteSnap {
                thread: req_u64(s, "thread", "sites")? as u32,
                pc: req_u64(s, "pc", "sites")? as u32,
                counts: counts(s, "sites")?,
            })
        })
        .collect::<Result<Vec<_>, ProfileDocError>>()?;
    let objects = arr(v, "objects", "objects")?
        .iter()
        .map(|o| {
            let index = req_u64(o, "index", "objects")? as u32;
            let obj = match o.get("kind").and_then(Json::as_str) {
                Some("var") => ProfileObj::Var(index),
                Some("mutex") => ProfileObj::Mutex(index),
                _ => return Err(err("objects", "kind must be 'var' or 'mutex'")),
            };
            Ok(ObjSnap {
                obj,
                counts: counts(o, "objects")?,
            })
        })
        .collect::<Result<Vec<_>, ProfileDocError>>()?;
    let classes_v = arr(v, "classes", "classes")?;
    if classes_v.len() != 2 {
        return Err(err("classes", "expected exactly two relations"));
    }
    let class = |c: &Json| -> Result<ClassSnap, ProfileDocError> {
        // The relation names are a closed set (the snapshot holds
        // `&'static str`), so decode by matching rather than cloning.
        let relation = match c.get("relation").and_then(Json::as_str) {
            Some("regular") => "regular",
            Some("lazy") => "lazy",
            _ => return Err(err("classes", "relation must be 'regular' or 'lazy'")),
        };
        let top = arr(c, "top", "classes")?
            .iter()
            .map(|t| {
                let fp = t
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .and_then(|s| u128::from_str_radix(s, 16).ok())
                    .ok_or_else(|| err("classes", "bad fingerprint"))?;
                Ok((fp, req_u64(t, "schedules", "classes")?))
            })
            .collect::<Result<Vec<_>, ProfileDocError>>()?;
        Ok(ClassSnap {
            relation,
            distinct: req_u64(c, "distinct", "classes")?,
            schedules: req_u64(c, "schedules", "classes")?,
            top,
        })
    };
    let classes = [class(&classes_v[0])?, class(&classes_v[1])?];
    let subtrees = v
        .get("subtrees")
        .ok_or_else(|| err("subtrees", "missing"))?;
    let spans = arr(subtrees, "top", "subtrees")?
        .iter()
        .map(|s| {
            Ok(SpanSnap {
                prefix: arr(s, "prefix", "subtrees")?
                    .iter()
                    .map(|c| {
                        c.as_u64()
                            .map(|c| c as u32)
                            .ok_or_else(|| err("subtrees", "bad prefix choice"))
                    })
                    .collect::<Result<Vec<_>, ProfileDocError>>()?,
                schedules: req_u64(s, "schedules", "subtrees")?,
                events: req_u64(s, "events", "subtrees")?,
                wall_ns: req_u64(s, "wall_ns", "subtrees")?,
            })
        })
        .collect::<Result<Vec<_>, ProfileDocError>>()?;
    let depth = arr(v, "depth", "depth")?
        .iter()
        .map(|d| {
            let le = match d.get("le") {
                Some(Json::Str(s)) if s == "inf" => None,
                Some(other) => Some(other.as_u64().ok_or_else(|| err("depth", "bad 'le'"))?),
                None => return Err(err("depth", "missing 'le'")),
            };
            Ok(DepthSnap {
                le,
                schedules: req_u64(d, "schedules", "depth")?,
                events: req_u64(d, "events", "depth")?,
                wall_ns: req_u64(d, "wall_ns", "depth")?,
            })
        })
        .collect::<Result<Vec<_>, ProfileDocError>>()?;
    Ok(ProfileSnapshot {
        schedules: req_u64(v, "schedules", "schedules")?,
        events: req_u64(v, "events", "events")?,
        sites,
        objects,
        classes,
        span_count: req_u64(subtrees, "distinct", "subtrees")?,
        spans,
        depth,
    })
}

/// Short mnemonic of the instruction at `(thread, pc)` with object names
/// resolved (`lock(m2)`, `store(x)`, …).
fn instr_label(program: &Program, thread: usize, pc: u32) -> String {
    let Some(ins) = program
        .threads()
        .get(thread)
        .and_then(|t| t.code.get(pc as usize))
    else {
        return "?".to_string();
    };
    match ins {
        Instr::Load { var, .. } => format!("load({})", program.vars()[var.index()].name),
        Instr::Store { var, .. } => format!("store({})", program.vars()[var.index()].name),
        Instr::Lock(m) => format!("lock({})", program.mutexes()[m.index()].name),
        Instr::Unlock(m) => format!("unlock({})", program.mutexes()[m.index()].name),
        _ => "local".to_string(),
    }
}

fn thread_name(program: &Program, thread: usize) -> String {
    program
        .threads()
        .get(thread)
        .map(|t| t.name.clone())
        .unwrap_or_else(|| format!("t{thread}"))
}

fn pad(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

fn rpad(v: impl std::fmt::Display, width: usize) -> String {
    format!("{v:>width$}")
}

/// Renders a profiler snapshot as a text report, resolving every site
/// and object to the program's instruction, thread, variable and mutex
/// names. Deterministic for a deterministic snapshot.
pub fn render_profile(program: &Program, strategy_spec: &str, snap: &ProfileSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "profile: {} · {strategy_spec}", program.name());
    let _ = writeln!(
        out,
        "  {} schedules, {} events",
        snap.schedules, snap.events
    );

    out.push_str("\nredundancy (schedules per happens-before class, paper §3)\n");
    let _ = writeln!(
        out,
        "  {} {} {} {}",
        pad("relation", 9),
        rpad("classes", 9),
        rpad("schedules", 10),
        rpad("redundant", 10),
    );
    for c in &snap.classes {
        let _ = writeln!(
            out,
            "  {} {} {} {}",
            pad(c.relation, 9),
            rpad(c.distinct, 9),
            rpad(c.schedules, 10),
            rpad(c.redundant(), 10),
        );
    }
    for c in &snap.classes {
        if let Some((fp, n)) = c.top.first() {
            if *n > 1 {
                let _ = writeln!(
                    out,
                    "  most re-explored {} class: {:#010x}… ×{}",
                    c.relation,
                    fp >> 96,
                    n
                );
            }
        }
    }

    // Hot sites, ordered by total attribution.
    let mut sites: Vec<_> = snap.sites.iter().collect();
    sites.sort_by(|a, b| {
        let ta: u64 = a.counts.iter().sum();
        let tb: u64 = b.counts.iter().sum();
        tb.cmp(&ta).then((a.thread, a.pc).cmp(&(b.thread, b.pc)))
    });
    out.push_str("\nhot sites (per-program-point attribution)\n");
    if sites.is_empty() {
        out.push_str("  (none: no races, prunes or backtracks recorded)\n");
    } else {
        let _ = writeln!(
            out,
            "  {} {} {}",
            pad("site", 18),
            pad("op", 14),
            site::NAMES
                .iter()
                .map(|n| rpad(n, 12))
                .collect::<Vec<_>>()
                .join(" "),
        );
        for s in sites.iter().take(REPORT_TOP_SITES) {
            let label = format!("{}:ins {}", thread_name(program, s.thread as usize), s.pc);
            let _ = writeln!(
                out,
                "  {} {} {}",
                pad(&label, 18),
                pad(&instr_label(program, s.thread as usize, s.pc), 14),
                s.counts
                    .iter()
                    .map(|c| rpad(c, 12))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
        }
        if sites.len() > REPORT_TOP_SITES {
            let _ = writeln!(out, "  … {} more sites", sites.len() - REPORT_TOP_SITES);
        }
    }

    out.push_str("\nhot objects\n");
    if snap.objects.is_empty() {
        out.push_str("  (none)\n");
    } else {
        let mut objects: Vec<_> = snap.objects.iter().collect();
        objects.sort_by_key(|o| std::cmp::Reverse(o.counts.iter().sum::<u64>()));
        for o in objects {
            let label = match o.obj {
                lazylocks::obs::ProfileObj::Var(v) => format!(
                    "var '{}'",
                    program
                        .vars()
                        .get(v as usize)
                        .map(|d| d.name.as_str())
                        .unwrap_or("?")
                ),
                lazylocks::obs::ProfileObj::Mutex(m) => format!(
                    "mutex '{}'",
                    program
                        .mutexes()
                        .get(m as usize)
                        .map(|d| d.name.as_str())
                        .unwrap_or("?")
                ),
            };
            let _ = writeln!(
                out,
                "  {} {}",
                pad(&label, 18),
                site::NAMES
                    .iter()
                    .zip(&o.counts)
                    .filter(|(_, &c)| c > 0)
                    .map(|(n, c)| format!("{n} {c}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
    }

    let _ = writeln!(
        out,
        "\nhot subtrees (top {} of {})",
        snap.spans.len(),
        snap.span_count
    );
    for s in &snap.spans {
        let prefix = s
            .prefix
            .iter()
            .map(|&c| thread_name(program, c as usize))
            .collect::<Vec<_>>()
            .join("→");
        let prefix = if prefix.is_empty() {
            "(root)".to_string()
        } else {
            prefix
        };
        let _ = writeln!(
            out,
            "  {} {} schedules, {} events, {:.1} ms",
            pad(&prefix, 28),
            rpad(s.schedules, 8),
            rpad(s.events, 9),
            s.wall_ns as f64 / 1e6,
        );
    }

    out.push_str("\ndepth profile (events per schedule)\n");
    for d in &snap.depth {
        if d.schedules == 0 {
            continue;
        }
        let le = match d.le {
            Some(le) => format!("<= {le}"),
            None => "> 512".to_string(),
        };
        let _ = writeln!(
            out,
            "  {} {} schedules, {} events, {:.1} ms",
            pad(&le, 7),
            rpad(d.schedules, 8),
            rpad(d.events, 9),
            d.wall_ns as f64 / 1e6,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{Dpor, ExploreConfig, Explorer, ProfileHandle};
    use lazylocks_model::{ProgramBuilder, Reg};

    fn figure1() -> Program {
        let mut b = ProgramBuilder::new("figure1");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        let z = b.var("z", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| {
            t.lock(m);
            t.load(Reg(0), x);
            t.unlock(m);
            t.store(y, Reg(0));
        });
        b.thread("T2", |t| {
            t.store(z, 1);
            t.lock(m);
            t.load(Reg(0), x);
            t.unlock(m);
        });
        b.build()
    }

    fn profiled_snapshot(sleep: bool) -> (Program, lazylocks::ProfileSnapshot) {
        let program = figure1();
        let profile = ProfileHandle::enabled();
        let config = ExploreConfig::with_limit(10_000).with_profile(profile.clone());
        let dpor = Dpor {
            sleep_sets: sleep,
            ..Dpor::default()
        };
        dpor.explore(&program, &config);
        let snap = profile.snapshot().unwrap();
        (program, snap)
    }

    #[test]
    fn doc_round_trips() {
        let (program, snap) = profiled_snapshot(true);
        let doc = ProfileDoc::new(&program, "dpor(sleep=true)", &snap.scrubbed());
        let text = doc.to_json_string();
        let back = ProfileDoc::parse(&text).unwrap();
        assert_eq!(doc, back);
        assert_eq!(back.program_name, "figure1");
        assert_eq!(back.strategy_spec, "dpor(sleep=true)");
        // The embedded source keeps the document standalone.
        assert_eq!(back.program().unwrap().name(), "figure1");
        assert_eq!(
            back.profile.get("format").and_then(|j| j.as_str()),
            Some("lazylocks-profile")
        );
    }

    #[test]
    fn snapshot_decodes_from_its_own_json() {
        let (program, snap) = profiled_snapshot(true);
        let scrubbed = snap.scrubbed();
        let encoded = Json::parse(&scrubbed.to_json_string()).unwrap();
        let decoded = snapshot_from_json(&encoded).unwrap();
        // The decoder is a faithful inverse: re-encoding reproduces the
        // exact bytes, and the standalone render matches the direct one.
        assert_eq!(decoded.to_json_string(), scrubbed.to_json_string());
        let doc = ProfileDoc::new(&program, "dpor(sleep=true)", &scrubbed);
        assert_eq!(
            doc.render().unwrap(),
            render_profile(&program, "dpor(sleep=true)", &scrubbed)
        );
    }

    #[test]
    fn parse_rejects_newer_versions_and_wrong_formats() {
        let (program, snap) = profiled_snapshot(false);
        let doc = ProfileDoc::new(&program, "dpor", &snap);
        let newer = doc
            .to_json_string()
            .replace("\"format_version\":1", "\"format_version\":99");
        assert!(matches!(
            ProfileDoc::parse(&newer),
            Err(ProfileDocError::Version { found: 99 })
        ));
        let wrong = doc
            .to_json_string()
            .replace(PROFILE_FORMAT_NAME, "other-format");
        assert!(matches!(
            ProfileDoc::parse(&wrong),
            Err(ProfileDocError::Schema {
                field: "format",
                ..
            })
        ));
    }

    #[test]
    fn report_resolves_names_and_counts_redundancy() {
        let (program, snap) = profiled_snapshot(false);
        let report = render_profile(&program, "dpor", &snap);
        // Figure 1's race is the two lock(m) acquisitions: the report must
        // name the mutex and the instruction sites.
        assert!(report.contains("mutex 'm'"), "report:\n{report}");
        assert!(report.contains("lock(m)"), "report:\n{report}");
        assert!(report.contains(":ins "), "report:\n{report}");
        // Regular relation sees 2 classes, lazy 1 — with >= 2 schedules
        // the lazy row must show redundancy.
        assert!(report.contains("regular"), "report:\n{report}");
        assert!(report.contains("lazy"), "report:\n{report}");
    }

    #[test]
    fn scrubbed_profiles_are_byte_identical_across_runs() {
        let run = |sleep: bool| {
            let (program, snap) = profiled_snapshot(sleep);
            ProfileDoc::new(&program, "dpor", &snap.scrubbed()).to_json_string()
        };
        assert_eq!(run(true), run(true));
        assert_eq!(run(false), run(false));
    }
}
