//! A small self-contained JSON encoder/decoder.
//!
//! The workspace builds fully offline (no serde), so trace artifacts carry
//! their own codec. The value model is a deliberately narrow JSON subset:
//!
//! * numbers are **integers only** (`i128`, so every `u64` counter fits
//!   losslessly); floating-point literals are rejected at parse time;
//! * 128-bit fingerprints are represented as 32-digit lower-case hex
//!   *strings* (see [`Json::u128_hex`]) — they exceed every interoperable
//!   JSON number range;
//! * objects preserve insertion order and reject duplicate keys, keeping
//!   encodings canonical and diffs stable.
//!
//! Everything else is standard: full string escaping (including `\uXXXX`
//! with surrogate pairs), arbitrary nesting (depth-capped), and precise
//! error offsets for malformed input.

use std::fmt;

/// Maximum nesting depth accepted by the parser; a guard against stack
/// exhaustion from adversarial input, far above any artifact's real depth.
const MAX_DEPTH: usize = 128;

/// A JSON value (integer-only number model; see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer. `i128` so that `u64` values round-trip losslessly.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs, unique keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Encodes `v` as a 32-digit lower-case hex string — the artifact
    /// representation of 128-bit fingerprints.
    pub fn u128_hex(v: u128) -> Json {
        Json::Str(format!("{v:032x}"))
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int` that fits in `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The integer value, if this is a non-negative `Int` fitting in `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The integer value, if this is a non-negative `Int` fitting in
    /// `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Decodes a [`Json::u128_hex`]-encoded fingerprint.
    pub fn as_u128_hex(&self) -> Option<u128> {
        let s = self.as_str()?;
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok()
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Human-friendly encoding: two-space indentation, one object member
    /// or array element per line.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                });
            }
        }
    }

    /// Parses a complete JSON document (exactly one value plus whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_offset,
                    message: format!("duplicate object key {key:?}"),
                });
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected a digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err(
                "floating-point numbers are not part of the artifact format \
                 (integers only)",
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i128>().map(Json::Int).map_err(|_| JsonError {
            offset: start,
            message: format!("integer out of range: {text}"),
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain (non-escape, non-quote) bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
                        offset: start,
                        message: "invalid UTF-8 in string".to_string(),
                    })?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xd800..0xdc00).contains(&hi) {
                    // High surrogate: a low surrogate must follow.
                    self.eat(b'\\')
                        .and_then(|()| self.eat(b'u'))
                        .map_err(|_| self.err("high surrogate not followed by \\u escape"))?;
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xdc00..0xe000).contains(&hi) {
                    return Err(self.err("unexpected low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            other => {
                self.pos -= 1;
                return Err(self.err(format!("invalid escape \\{}", other as char)));
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let compact = Json::parse(&v.encode()).unwrap();
        assert_eq!(&compact, v, "compact round trip of {}", v.encode());
        let pretty = Json::parse(&v.pretty()).unwrap();
        assert_eq!(&pretty, v, "pretty round trip of {}", v.encode());
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-1),
            Json::Int(i128::from(u64::MAX)),
            Json::Int(i128::from(i64::MIN)),
            Json::Str(String::new()),
            Json::Str("plain".to_string()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "quote \" backslash \\ slash /",
            "newline \n tab \t return \r",
            "backspace \u{08} formfeed \u{0c}",
            "control \u{01}\u{1f}",
            "unicode: é ∀ 🦀 \u{10FFFF}",
            "null byte \u{0} embedded",
        ] {
            round_trip(&Json::Str(s.to_string()));
        }
    }

    #[test]
    fn parses_foreign_escapes() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83e\udd80""#).unwrap(),
            Json::Str("Aé🦀".to_string())
        );
        assert_eq!(Json::parse(r#""\/""#).unwrap(), Json::Str("/".to_string()));
    }

    #[test]
    fn nested_values_round_trip() {
        let v = Json::obj([
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "nested",
                Json::Arr(vec![
                    Json::obj([("k", Json::Arr(vec![Json::Null, Json::Int(3)]))]),
                    Json::Bool(false),
                ]),
            ),
        ]);
        round_trip(&v);
    }

    #[test]
    fn u128_hex_fingerprints_round_trip() {
        for fp in [0u128, 1, u128::from(u64::MAX), u128::MAX] {
            let v = Json::u128_hex(fp);
            round_trip(&v);
            assert_eq!(v.as_u128_hex(), Some(fp));
        }
        assert_eq!(Json::Str("xyz".into()).as_u128_hex(), None);
        assert_eq!(Json::Str(String::new()).as_u128_hex(), None);
        // 33 hex digits: too wide.
        assert_eq!(Json::Str("0".repeat(33)).as_u128_hex(), None);
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for (input, needle) in [
            ("", "end of input"),
            ("nul", "null"),
            ("truefalse", "trailing"),
            ("[1, 2", "',' or ']'"),
            ("{\"a\": }", "unexpected character"),
            ("{\"a\": 1 \"b\": 2}", "',' or '}'"),
            ("{\"a\": 1, \"a\": 2}", "duplicate"),
            ("\"unterminated", "unterminated"),
            ("\"bad \\q escape\"", "invalid escape"),
            ("\"\\ud800 lonely\"", "surrogate"),
            ("\"\\udc00\"", "low surrogate"),
            ("\"\\u12g4\"", "non-hex"),
            ("1.5", "floating-point"),
            ("1e9", "floating-point"),
            ("-", "digit"),
            ("01x", "trailing"),
            ("170141183460469231731687303715884105728", "out of range"),
        ] {
            let err = Json::parse(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{input:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn depth_cap_rejects_adversarial_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // One level under the cap is fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::obj([
            ("b", Json::Bool(true)),
            ("n", Json::Int(42)),
            ("s", Json::Str("hi".into())),
            ("a", Json::Arr(vec![Json::Int(1)])),
        ]);
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(42));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(42));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Int(i128::from(u64::MAX) + 1).as_u64(), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" \t\r\n{ \"a\" : [ 1 , 2 ] , \"b\" : null } \n").unwrap();
        assert_eq!(
            v,
            Json::obj([
                ("a", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
                ("b", Json::Null),
            ])
        );
    }
}
