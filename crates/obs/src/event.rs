//! Structured, leveled event logging.
//!
//! A [`TraceEvent`] is one machine-readable line: a level, an event kind
//! and typed fields, serialized as a single-line JSON object. Frontends
//! emit these instead of ad-hoc `eprintln!` progress prints, so the same
//! stream is greppable by humans and parseable by tools (the codec is
//! the integer-only JSON dialect `lazylocks-trace` parses).

use crate::metrics::json_escape;
use std::io::Write;

/// Event severity, ordered: `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Error,
    Warn,
    Info,
    Debug,
}

impl LogLevel {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parses a wire name (the CLI `--log-level` values).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "error" => Some(LogLevel::Error),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    Int(i128),
    Str(String),
    Bool(bool),
}

impl From<i128> for FieldValue {
    fn from(v: i128) -> Self {
        FieldValue::Int(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v as i128)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Int(v as i128)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Int(v as i128)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::Int(i128::from(v))
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured log event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub level: LogLevel,
    /// The event kind, serialized as the `"event"` field.
    pub kind: String,
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// A new event with no fields yet.
    pub fn new(level: LogLevel, kind: impl Into<String>) -> TraceEvent {
        TraceEvent {
            level,
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Appends a field, returning `self` for chaining.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> TraceEvent {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// The single-line JSON form: `{"level":...,"event":...,<fields>}`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"event\":\"");
        out.push_str(&json_escape(&self.kind));
        out.push('"');
        for (key, value) in &self.fields {
            out.push_str(",\"");
            out.push_str(&json_escape(key));
            out.push_str("\":");
            match value {
                FieldValue::Int(v) => out.push_str(&v.to_string()),
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                FieldValue::Str(s) => {
                    out.push('"');
                    out.push_str(&json_escape(s));
                    out.push('"');
                }
            }
        }
        out.push('}');
        out
    }
}

/// A level-filtered sink writing one JSON line per event to stderr —
/// stdout stays reserved for result documents (`--json`).
#[derive(Debug, Clone, Copy)]
pub struct EventLog {
    min_level: LogLevel,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(LogLevel::Info)
    }
}

impl EventLog {
    /// A log emitting events at or above `min_level`.
    pub fn new(min_level: LogLevel) -> EventLog {
        EventLog { min_level }
    }

    /// Would an event at `level` be emitted?
    pub fn enabled(&self, level: LogLevel) -> bool {
        level <= self.min_level
    }

    /// Writes the event as one stderr line if its level passes the filter.
    ///
    /// The line and its terminating newline go out in a single
    /// `write_all` of one buffer: `writeln!` would issue separate writes
    /// for the payload and the `\n`, and although the stderr lock orders
    /// them against other in-process writers, a child process (or C
    /// code) sharing the fd could interleave between the two syscalls
    /// and tear the line mid-record.
    pub fn emit(&self, event: &TraceEvent) {
        if !self.enabled(event.level) {
            return;
        }
        let mut line = event.to_json_string();
        line.push('\n');
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Debug);
        assert_eq!(LogLevel::parse("warn"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("chatty"), None);
        for level in [
            LogLevel::Error,
            LogLevel::Warn,
            LogLevel::Info,
            LogLevel::Debug,
        ] {
            assert_eq!(LogLevel::parse(level.as_str()), Some(level));
        }
    }

    #[test]
    fn events_serialize_as_single_json_lines() {
        let event = TraceEvent::new(LogLevel::Info, "progress")
            .field("schedules", 1024u64)
            .field("strategy", "dpor(sleep=true)")
            .field("limit_hit", false);
        let line = event.to_json_string();
        assert_eq!(
            line,
            "{\"level\":\"info\",\"event\":\"progress\",\"schedules\":1024,\
             \"strategy\":\"dpor(sleep=true)\",\"limit_hit\":false}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn log_filters_by_level() {
        let log = EventLog::new(LogLevel::Warn);
        assert!(log.enabled(LogLevel::Error));
        assert!(log.enabled(LogLevel::Warn));
        assert!(!log.enabled(LogLevel::Info));
        assert!(!log.enabled(LogLevel::Debug));
    }
}
