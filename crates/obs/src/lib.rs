//! # lazylocks-obs — metrics and structured events for the exploration stack
//!
//! The paper's evaluation counts *schedules*; the engineering work around
//! it needs to know *where the time goes and why*. This crate is the
//! shared observability substrate: a [`MetricsRegistry`] of counters,
//! gauges and fixed-bucket histograms backed by lock-free per-thread
//! shards, lightweight sampled phase timers for the exploration hot
//! loops, and a leveled structured event log ([`TraceEvent`]) that
//! replaces ad-hoc progress prints.
//!
//! ## Design constraints
//!
//! * **Zero dependencies, std only.** This crate sits *below*
//!   `lazylocks` (core) in the dependency graph so the exploration
//!   engines themselves can be instrumented; it therefore renders its own
//!   JSON and Prometheus text rather than borrowing the codec from
//!   `lazylocks-trace`.
//! * **Disabled cost is a branch.** Every handle is an
//!   `Option<Arc<...>>`; with metrics off (the default) each
//!   instrumentation point is one `is_none` check. No allocation, no
//!   atomics, no time syscalls.
//! * **Enabled cost stays off the allocator.** Shards are fixed
//!   `AtomicU64` slabs acquired once per worker; recording is relaxed
//!   atomic adds. The frame-pool allocation test runs with metrics
//!   enabled to pin this.
//! * **Deterministic snapshots.** [`MetricsSnapshot::scrubbed`] zeroes
//!   every time-derived series so identical explorations serialize to
//!   byte-identical JSON — the same determinism contract the server's
//!   result documents already keep for `wall_time_us`.
//!
//! ## Sampling
//!
//! The hot phases (`executor_step`, `hbr_apply`, `race_detection`) run in
//! tens-to-hundreds of nanoseconds, so timing every call would dwarf the
//! work. Their histograms are *sampled*: one call in `2^sample_shift` is
//! timed, and each sampled observation is recorded with weight
//! `2^sample_shift`, keeping the histogram an unbiased estimate whose
//! bucket counts, `count` and `sum` stay mutually consistent (the
//! Prometheus invariant `sum(buckets) + inf == count` holds). Cold phases
//! (`steal_wait`, `frame_checkpoint`) are timed exactly.

mod event;
mod metrics;
mod profile;

pub use event::{EventLog, FieldValue, LogLevel, TraceEvent};
pub use metrics::{
    builtin_defs, ids, json_escape, MetricDef, MetricId, MetricKind, MetricSnap, MetricValue,
    MetricsHandle, MetricsRegistry, MetricsShard, MetricsSnapshot,
};
pub use profile::{
    pack_prefix, site, ClassSnap, DepthSnap, ObjSnap, ProfileDims, ProfileHandle, ProfileLeaf,
    ProfileObj, ProfileRegistry, ProfileSites, ProfileSnapshot, SiteSnap, SpanSnap,
    PROFILE_DEPTH_BUCKETS, SPAN_PREFIX_LEN, TOP_CLASSES, TOP_SPANS,
};
