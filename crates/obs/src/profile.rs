//! The exploration profiler: per-program-point attribution slabs,
//! happens-before-class redundancy accounting, and subtree span profiling.
//!
//! Where the metrics registry answers "how much work happened", the
//! profiler answers "*which program point* caused it": every reversible
//! race, backtrack insertion, sleep-set prune and prefix-cache prune is
//! attributed to the instruction (and the variable or mutex it touches)
//! that caused it, and every complete schedule is attributed to its
//! happens-before equivalence class and its schedule-prefix subtree.
//!
//! The design mirrors [`MetricsShard`](crate::MetricsShard): the handle
//! threaded through `ExploreConfig` is an `Option<Arc<..>>`, so the
//! disabled cost at every instrumentation site is one branch. Enabled
//! recording on the step path is relaxed atomic adds on dense per-site
//! slabs (no locks, no allocation); the leaf path — executed once per
//! complete schedule, where a fingerprint walk of the whole trace already
//! happened — takes a per-worker mutex once and updates hash maps whose
//! growth is amortised.
//!
//! This crate cannot see the program model, so sites are raw
//! `(thread, pc)` pairs and objects are raw variable/mutex indices; the
//! trace crate resolves them to source names when rendering reports.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::json_escape;

/// Per-site counter kinds, in slab and serialisation order.
pub mod site {
    /// Reversible races in which the site's event was the earlier partner.
    pub const RACES: usize = 0;
    /// Backtrack threads newly inserted because of a race at the site.
    pub const BACKTRACKS: usize = 1;
    /// Sleep-set subtree prunes immediately after executing the site.
    pub const SLEEP_BLOCKS: usize = 2;
    /// Prefix-cache prunes of the site's event (caching strategies).
    pub const CACHE_PRUNES: usize = 3;
    /// Complete schedules re-executed from backtrack points the site
    /// caused (sequential DPOR drivers only).
    pub const RESCHEDULES: usize = 4;
    /// Number of counter kinds (the slab stride).
    pub const KINDS: usize = 5;
    /// Serialised field names, in counter order.
    pub const NAMES: [&str; KINDS] = [
        "races",
        "backtracks",
        "sleep_blocks",
        "cache_prunes",
        "reschedules",
    ];
}

/// Leaf-depth bucket upper bounds (events per complete schedule); the
/// final implicit bucket is `+Inf`. Matches the metric family
/// `lazylocks_schedule_depth`.
pub const PROFILE_DEPTH_BUCKETS: [u64; 8] = [4, 8, 16, 32, 64, 128, 256, 512];

/// Schedule-prefix choices packed into a span key (6 bits each).
pub const SPAN_PREFIX_LEN: usize = 8;

/// Hot-subtree rows kept in a snapshot.
pub const TOP_SPANS: usize = 10;

/// Most-re-explored equivalence classes kept per relation.
pub const TOP_CLASSES: usize = 5;

/// Program shape the dense site slabs are sized from: per-thread
/// instruction counts plus the variable and mutex counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileDims {
    /// Instruction count of each thread's code body, in thread order.
    pub thread_ins: Vec<u32>,
    /// Number of shared variables.
    pub vars: u32,
    /// Number of mutexes.
    pub mutexes: u32,
}

impl ProfileDims {
    fn site_count(&self) -> usize {
        self.thread_ins.iter().map(|&n| n as usize).sum()
    }

    fn obj_count(&self) -> usize {
        (self.vars + self.mutexes) as usize
    }
}

/// The object an instrumented event touches, as raw model indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileObj {
    /// A shared variable, by `VarId` index.
    Var(u32),
    /// A mutex, by `MutexId` index.
    Mutex(u32),
}

/// One worker's dense attribution slab: `site_count × KINDS` counters for
/// instructions plus `obj_count × KINDS` for variables/mutexes. Written
/// by its owning worker with relaxed adds, read concurrently by
/// snapshots.
#[derive(Debug)]
struct SiteSlabInner {
    dims: ProfileDims,
    /// First site index of each thread (prefix sums of `dims.thread_ins`).
    offsets: Vec<u32>,
    sites: Box<[AtomicU64]>,
    objs: Box<[AtomicU64]>,
}

fn atomic_slab(len: usize) -> Box<[AtomicU64]> {
    (0..len).map(|_| AtomicU64::new(0)).collect()
}

impl SiteSlabInner {
    fn new(dims: ProfileDims) -> SiteSlabInner {
        let mut offsets = Vec::with_capacity(dims.thread_ins.len());
        let mut total = 0u32;
        for &n in &dims.thread_ins {
            offsets.push(total);
            total += n;
        }
        let sites = atomic_slab(dims.site_count() * site::KINDS);
        let objs = atomic_slab(dims.obj_count() * site::KINDS);
        SiteSlabInner {
            dims,
            offsets,
            sites,
            objs,
        }
    }

    #[inline]
    fn site_slot(&self, thread: u32, pc: u32, counter: usize) -> usize {
        debug_assert!(pc < self.dims.thread_ins[thread as usize]);
        (self.offsets[thread as usize] + pc) as usize * site::KINDS + counter
    }

    #[inline]
    fn obj_slot(&self, obj: ProfileObj, counter: usize) -> usize {
        let index = match obj {
            ProfileObj::Var(v) => v as usize,
            ProfileObj::Mutex(m) => (self.dims.vars + m) as usize,
        };
        index * site::KINDS + counter
    }
}

/// A worker's per-program-point recording handle. All operations are
/// relaxed atomic adds on fixed slabs; no-ops when acquired from a
/// disabled [`ProfileHandle`].
#[derive(Debug, Clone, Default)]
pub struct ProfileSites(Option<Arc<SiteSlabInner>>);

impl ProfileSites {
    /// An inert handle (what a disabled [`ProfileHandle`] returns).
    pub fn disabled() -> ProfileSites {
        ProfileSites(None)
    }

    /// `true` when recording is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to one counter of the site `(thread, pc)` and, when the
    /// event touches an object, to the same counter of that object.
    #[inline]
    pub fn add(&self, thread: u32, pc: u32, obj: Option<ProfileObj>, counter: usize, n: u64) {
        let Some(inner) = &self.0 else { return };
        inner.sites[inner.site_slot(thread, pc, counter)].fetch_add(n, Ordering::Relaxed);
        if let Some(obj) = obj {
            inner.objs[inner.obj_slot(obj, counter)].fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Per-span accumulation: one schedule-prefix subtree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SpanAgg {
    schedules: u64,
    events: u64,
    wall_ns: u64,
}

/// One worker's leaf-level state, behind a mutex taken once per complete
/// schedule (the leaf path already walks the whole trace to fingerprint
/// it, so one uncontended lock is noise).
#[derive(Debug, Default)]
struct LeafState {
    classes_regular: HashMap<u128, u64>,
    classes_lazy: HashMap<u128, u64>,
    spans: HashMap<u64, SpanAgg>,
    /// One bucket per [`PROFILE_DEPTH_BUCKETS`] bound plus `+Inf`.
    depth: [SpanAgg; PROFILE_DEPTH_BUCKETS.len() + 1],
    /// Wall-clock instant of the previous leaf: each leaf is charged the
    /// time since the last one on this worker (the first leaf charges 0).
    last_leaf: Option<Instant>,
    schedules: u64,
    events: u64,
}

#[derive(Debug, Default)]
struct LeafInner {
    state: Mutex<LeafState>,
}

/// A worker's leaf-level recording handle (classes, spans, depth
/// buckets). No-op when acquired from a disabled [`ProfileHandle`].
#[derive(Debug, Clone, Default)]
pub struct ProfileLeaf(Option<Arc<LeafInner>>);

/// Packs a schedule prefix (thread indices) into a span key: up to
/// [`SPAN_PREFIX_LEN`] choices of 6 bits each plus the packed length, so
/// span keys are `Copy` and leaf recording allocates nothing per leaf.
pub fn pack_prefix(choices: impl IntoIterator<Item = u32>) -> u64 {
    let mut key = 0u64;
    let mut len = 0u64;
    for c in choices.into_iter().take(SPAN_PREFIX_LEN) {
        debug_assert!(c < 64, "span prefix packing assumes <=64 threads");
        key |= u64::from(c & 0x3f) << (len * 6);
        len += 1;
    }
    key | (len << 48)
}

fn unpack_prefix(key: u64) -> Vec<u32> {
    let len = (key >> 48) as usize;
    (0..len).map(|i| ((key >> (i * 6)) & 0x3f) as u32).collect()
}

impl ProfileLeaf {
    /// An inert handle (what a disabled [`ProfileHandle`] returns).
    pub fn disabled() -> ProfileLeaf {
        ProfileLeaf(None)
    }

    /// `true` when recording is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one complete schedule: its event count, its packed
    /// schedule-prefix span key (see [`pack_prefix`]) and its terminal
    /// happens-before fingerprints under the regular and lazy relations
    /// (when the caller computed them).
    pub fn record_leaf(
        &self,
        events: u64,
        span_key: u64,
        fp_regular: Option<u128>,
        fp_lazy: Option<u128>,
    ) {
        let Some(inner) = &self.0 else { return };
        let now = Instant::now();
        let mut st = inner.state.lock().unwrap();
        let wall_ns = match st.last_leaf {
            Some(prev) => now.duration_since(prev).as_nanos().min(u64::MAX as u128) as u64,
            None => 0,
        };
        st.last_leaf = Some(now);
        st.schedules += 1;
        st.events += events;
        if let Some(fp) = fp_regular {
            *st.classes_regular.entry(fp).or_insert(0) += 1;
        }
        if let Some(fp) = fp_lazy {
            *st.classes_lazy.entry(fp).or_insert(0) += 1;
        }
        let span = st.spans.entry(span_key).or_default();
        span.schedules += 1;
        span.events += events;
        span.wall_ns += wall_ns;
        let bucket = PROFILE_DEPTH_BUCKETS
            .iter()
            .position(|&le| events <= le)
            .unwrap_or(PROFILE_DEPTH_BUCKETS.len());
        let d = &mut st.depth[bucket];
        d.schedules += 1;
        d.events += events;
        d.wall_ns += wall_ns;
    }
}

/// Shared profile store for one exploration (or one server job): hands
/// out per-worker site slabs and leaf shards, merged on
/// [`ProfileRegistry::snapshot`].
#[derive(Debug, Default)]
pub struct ProfileRegistry {
    sites: Mutex<Vec<Arc<SiteSlabInner>>>,
    leaves: Mutex<Vec<Arc<LeafInner>>>,
}

impl ProfileRegistry {
    fn acquire_sites(&self, dims: &ProfileDims) -> Arc<SiteSlabInner> {
        let mut slabs = self.sites.lock().unwrap();
        if let Some(first) = slabs.first() {
            assert_eq!(
                &first.dims, dims,
                "one profile registry serves one program: dims diverged"
            );
        }
        let inner = Arc::new(SiteSlabInner::new(dims.clone()));
        slabs.push(inner.clone());
        inner
    }

    fn acquire_leaf(&self) -> Arc<LeafInner> {
        let inner = Arc::new(LeafInner::default());
        self.leaves.lock().unwrap().push(inner.clone());
        inner
    }

    /// Merges every shard into one deterministic snapshot (sorted sites,
    /// objects, classes and spans). Safe to call while workers are still
    /// recording (relaxed reads; the scrape path of a running job).
    pub fn snapshot(&self) -> ProfileSnapshot {
        let slabs = self.sites.lock().unwrap();
        let mut sites: Vec<SiteSnap> = Vec::new();
        let mut objects: Vec<ObjSnap> = Vec::new();
        if let Some(first) = slabs.first() {
            let dims = &first.dims;
            for (thread, &n) in dims.thread_ins.iter().enumerate() {
                for pc in 0..n {
                    let mut counts = [0u64; site::KINDS];
                    for slab in slabs.iter() {
                        let base = slab.site_slot(thread as u32, pc, 0);
                        for (k, c) in counts.iter_mut().enumerate() {
                            *c += slab.sites[base + k].load(Ordering::Relaxed);
                        }
                    }
                    if counts.iter().any(|&c| c > 0) {
                        sites.push(SiteSnap {
                            thread: thread as u32,
                            pc,
                            counts,
                        });
                    }
                }
            }
            for index in 0..dims.obj_count() as u32 {
                let obj = if index < dims.vars {
                    ProfileObj::Var(index)
                } else {
                    ProfileObj::Mutex(index - dims.vars)
                };
                let mut counts = [0u64; site::KINDS];
                for slab in slabs.iter() {
                    let base = slab.obj_slot(obj, 0);
                    for (k, c) in counts.iter_mut().enumerate() {
                        *c += slab.objs[base + k].load(Ordering::Relaxed);
                    }
                }
                if counts.iter().any(|&c| c > 0) {
                    objects.push(ObjSnap { obj, counts });
                }
            }
        }
        drop(slabs);

        let leaves = self.leaves.lock().unwrap();
        let mut schedules = 0u64;
        let mut events = 0u64;
        let mut classes_regular: HashMap<u128, u64> = HashMap::new();
        let mut classes_lazy: HashMap<u128, u64> = HashMap::new();
        let mut spans: HashMap<u64, SpanAgg> = HashMap::new();
        let mut depth = [SpanAgg::default(); PROFILE_DEPTH_BUCKETS.len() + 1];
        for leaf in leaves.iter() {
            let st = leaf.state.lock().unwrap();
            schedules += st.schedules;
            events += st.events;
            for (&fp, &n) in &st.classes_regular {
                *classes_regular.entry(fp).or_insert(0) += n;
            }
            for (&fp, &n) in &st.classes_lazy {
                *classes_lazy.entry(fp).or_insert(0) += n;
            }
            for (&key, agg) in &st.spans {
                let s = spans.entry(key).or_default();
                s.schedules += agg.schedules;
                s.events += agg.events;
                s.wall_ns += agg.wall_ns;
            }
            for (d, agg) in depth.iter_mut().zip(&st.depth) {
                d.schedules += agg.schedules;
                d.events += agg.events;
                d.wall_ns += agg.wall_ns;
            }
        }
        drop(leaves);

        let classes = [
            ClassSnap::from_map("regular", &classes_regular),
            ClassSnap::from_map("lazy", &classes_lazy),
        ];
        let span_count = spans.len() as u64;
        let mut top_spans: Vec<(u64, SpanAgg)> = spans.into_iter().collect();
        // Deterministic hot-subtree order: most schedules first, packed
        // prefix as the tie-break.
        top_spans.sort_by(|a, b| b.1.schedules.cmp(&a.1.schedules).then(a.0.cmp(&b.0)));
        top_spans.truncate(TOP_SPANS);
        let spans = top_spans
            .into_iter()
            .map(|(key, agg)| SpanSnap {
                prefix: unpack_prefix(key),
                schedules: agg.schedules,
                events: agg.events,
                wall_ns: agg.wall_ns,
            })
            .collect();
        let depth = depth
            .iter()
            .enumerate()
            .map(|(i, agg)| DepthSnap {
                le: PROFILE_DEPTH_BUCKETS.get(i).copied(),
                schedules: agg.schedules,
                events: agg.events,
                wall_ns: agg.wall_ns,
            })
            .collect();

        ProfileSnapshot {
            schedules,
            events,
            sites,
            objects,
            classes,
            span_count,
            spans,
            depth,
        }
    }
}

/// The cloneable on/off switch threaded through `ExploreConfig`: `None`
/// (the default) costs one branch per instrumentation point; `Some`
/// shares one [`ProfileRegistry`] between every shard of a run.
#[derive(Debug, Clone, Default)]
pub struct ProfileHandle(Option<Arc<ProfileRegistry>>);

impl ProfileHandle {
    /// The inert default: every operation is a no-op.
    pub fn disabled() -> ProfileHandle {
        ProfileHandle(None)
    }

    /// A live handle over a fresh registry.
    pub fn enabled() -> ProfileHandle {
        ProfileHandle(Some(Arc::new(ProfileRegistry::default())))
    }

    /// `true` when recording is live.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Acquires a per-worker site slab sized for `dims`. Every slab of
    /// one registry must be acquired with the same dims (one registry
    /// serves one program).
    pub fn sites(&self, dims: &ProfileDims) -> ProfileSites {
        ProfileSites(self.0.as_ref().map(|r| r.acquire_sites(dims)))
    }

    /// Acquires a per-worker leaf shard.
    pub fn leaf_shard(&self) -> ProfileLeaf {
        ProfileLeaf(self.0.as_ref().map(|r| r.acquire_leaf()))
    }

    /// Snapshot of the whole registry; `None` when disabled.
    pub fn snapshot(&self) -> Option<ProfileSnapshot> {
        self.0.as_ref().map(|r| r.snapshot())
    }
}

/// Attribution counters of one program point, `(thread, pc)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSnap {
    pub thread: u32,
    pub pc: u32,
    /// Counter values in [`site`] order.
    pub counts: [u64; site::KINDS],
}

/// Attribution counters of one variable or mutex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjSnap {
    pub obj: ProfileObj,
    /// Counter values in [`site`] order.
    pub counts: [u64; site::KINDS],
}

/// Schedules-per-equivalence-class accounting for one happens-before
/// relation: the paper's §3 redundancy metric
/// (`redundant = schedules − distinct classes`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSnap {
    /// `"regular"` or `"lazy"`.
    pub relation: &'static str,
    /// Distinct equivalence classes reached.
    pub distinct: u64,
    /// Schedules attributed to a class (leaves with a fingerprint).
    pub schedules: u64,
    /// The most re-explored classes: `(fingerprint, schedules)`, highest
    /// first, at most [`TOP_CLASSES`] rows.
    pub top: Vec<(u128, u64)>,
}

impl ClassSnap {
    fn from_map(relation: &'static str, map: &HashMap<u128, u64>) -> ClassSnap {
        let mut top: Vec<(u128, u64)> = map.iter().map(|(&fp, &n)| (fp, n)).collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(TOP_CLASSES);
        ClassSnap {
            relation,
            distinct: map.len() as u64,
            schedules: map.values().sum(),
            top,
        }
    }

    /// Schedules that re-explored an already-seen class.
    pub fn redundant(&self) -> u64 {
        self.schedules - self.distinct
    }
}

/// One hot subtree: a schedule prefix with its accumulated work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnap {
    /// The first ≤ [`SPAN_PREFIX_LEN`] schedule choices (thread indices).
    pub prefix: Vec<u32>,
    pub schedules: u64,
    pub events: u64,
    /// Wall time attributed to leaves of this subtree (time-based:
    /// zeroed by [`ProfileSnapshot::scrubbed`]).
    pub wall_ns: u64,
}

/// One leaf-depth bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthSnap {
    /// Upper bound in events; `None` is the `+Inf` bucket.
    pub le: Option<u64>,
    pub schedules: u64,
    pub events: u64,
    /// Time-based: zeroed by [`ProfileSnapshot::scrubbed`].
    pub wall_ns: u64,
}

/// A merged, ordered point-in-time view of a [`ProfileRegistry`] — the
/// unit that serializes and scrubs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Complete schedules recorded at the leaf level.
    pub schedules: u64,
    /// Events across those schedules.
    pub events: u64,
    /// Non-zero program points, sorted by `(thread, pc)`.
    pub sites: Vec<SiteSnap>,
    /// Non-zero objects, variables first then mutexes.
    pub objects: Vec<ObjSnap>,
    /// Redundancy accounting under the regular and lazy relations.
    pub classes: [ClassSnap; 2],
    /// Distinct schedule-prefix subtrees seen.
    pub span_count: u64,
    /// The hottest subtrees (≤ [`TOP_SPANS`], most schedules first).
    pub spans: Vec<SpanSnap>,
    /// Per-depth-bucket accounting ([`PROFILE_DEPTH_BUCKETS`] + `+Inf`).
    pub depth: Vec<DepthSnap>,
}

impl ProfileSnapshot {
    /// A copy with every wall-time series zeroed — the determinism
    /// contract: two identical explorations scrub to byte-identical JSON.
    pub fn scrubbed(&self) -> ProfileSnapshot {
        let mut s = self.clone();
        for span in &mut s.spans {
            span.wall_ns = 0;
        }
        for d in &mut s.depth {
            d.wall_ns = 0;
        }
        s
    }

    /// Integer-only JSON, stable field order (the codec contract shared
    /// with `lazylocks-trace`'s `Json`, which parses this verbatim).
    /// Fingerprints are hex strings (they exceed the interoperable
    /// integer range).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"format\":\"lazylocks-profile\",\"version\":1");
        out.push_str(&format!(
            ",\"schedules\":{},\"events\":{}",
            self.schedules, self.events
        ));
        out.push_str(",\"sites\":[");
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"thread\":{},\"pc\":{}", s.thread, s.pc));
            write_counts(&mut out, &s.counts);
            out.push('}');
        }
        out.push_str("],\"objects\":[");
        for (i, o) in self.objects.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (kind, index) = match o.obj {
                ProfileObj::Var(v) => ("var", v),
                ProfileObj::Mutex(m) => ("mutex", m),
            };
            out.push_str(&format!("{{\"kind\":\"{kind}\",\"index\":{index}"));
            write_counts(&mut out, &o.counts);
            out.push('}');
        }
        out.push_str("],\"classes\":[");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"relation\":\"{}\",\"distinct\":{},\"schedules\":{},\"redundant\":{},\"top\":[",
                json_escape(c.relation),
                c.distinct,
                c.schedules,
                c.redundant()
            ));
            for (j, (fp, n)) in c.top.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"fingerprint\":\"{fp:032x}\",\"schedules\":{n}}}"
                ));
            }
            out.push_str("]}");
        }
        out.push_str(&format!(
            "],\"subtrees\":{{\"distinct\":{}",
            self.span_count
        ));
        out.push_str(",\"top\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"prefix\":[");
            for (j, c) in s.prefix.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str(&format!(
                "],\"schedules\":{},\"events\":{},\"wall_ns\":{}}}",
                s.schedules, s.events, s.wall_ns
            ));
        }
        out.push_str("]},\"depth\":[");
        for (i, d) in self.depth.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match d.le {
                Some(le) => out.push_str(&format!("{{\"le\":{le}")),
                None => out.push_str("{\"le\":\"inf\""),
            }
            out.push_str(&format!(
                ",\"schedules\":{},\"events\":{},\"wall_ns\":{}}}",
                d.schedules, d.events, d.wall_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

fn write_counts(out: &mut String, counts: &[u64; site::KINDS]) {
    for (name, value) in site::NAMES.iter().zip(counts) {
        out.push_str(&format!(",\"{name}\":{value}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ProfileDims {
        ProfileDims {
            thread_ins: vec![3, 2],
            vars: 2,
            mutexes: 1,
        }
    }

    #[test]
    fn disabled_handle_is_inert_everywhere() {
        let handle = ProfileHandle::disabled();
        assert!(!handle.is_enabled());
        let sites = handle.sites(&dims());
        assert!(!sites.is_enabled());
        sites.add(0, 1, Some(ProfileObj::Var(0)), site::RACES, 1);
        let leaf = handle.leaf_shard();
        leaf.record_leaf(5, pack_prefix([0, 1]), Some(1), Some(2));
        assert!(handle.snapshot().is_none());
    }

    #[test]
    fn site_and_object_attribution_lands_on_the_right_slots() {
        let handle = ProfileHandle::enabled();
        let sites = handle.sites(&dims());
        sites.add(0, 2, Some(ProfileObj::Mutex(0)), site::BACKTRACKS, 3);
        sites.add(1, 0, Some(ProfileObj::Var(1)), site::RACES, 1);
        sites.add(1, 0, None, site::RESCHEDULES, 7);
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.sites.len(), 2);
        assert_eq!(snap.sites[0].thread, 0);
        assert_eq!(snap.sites[0].pc, 2);
        assert_eq!(snap.sites[0].counts[site::BACKTRACKS], 3);
        assert_eq!(snap.sites[1].thread, 1);
        assert_eq!(snap.sites[1].counts[site::RACES], 1);
        assert_eq!(snap.sites[1].counts[site::RESCHEDULES], 7);
        assert_eq!(snap.objects.len(), 2);
        assert_eq!(snap.objects[0].obj, ProfileObj::Var(1));
        assert_eq!(snap.objects[1].obj, ProfileObj::Mutex(0));
        assert_eq!(snap.objects[1].counts[site::BACKTRACKS], 3);
    }

    #[test]
    fn leaf_recording_accumulates_classes_spans_and_depth() {
        let handle = ProfileHandle::enabled();
        let leaf = handle.leaf_shard();
        leaf.record_leaf(6, pack_prefix([0, 1, 0]), Some(10), Some(20));
        leaf.record_leaf(6, pack_prefix([0, 1, 0]), Some(11), Some(20));
        leaf.record_leaf(600, pack_prefix([1]), Some(11), None);
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.schedules, 3);
        assert_eq!(snap.events, 612);
        let regular = &snap.classes[0];
        assert_eq!(regular.relation, "regular");
        assert_eq!(regular.distinct, 2);
        assert_eq!(regular.schedules, 3);
        assert_eq!(regular.redundant(), 1);
        let lazy = &snap.classes[1];
        assert_eq!(lazy.distinct, 1);
        assert_eq!(lazy.schedules, 2);
        assert_eq!(snap.span_count, 2);
        assert_eq!(snap.spans[0].prefix, vec![0, 1, 0]);
        assert_eq!(snap.spans[0].schedules, 2);
        // 6 ≤ 8 → second bucket; 600 overflows every bound → +Inf.
        assert_eq!(snap.depth[1].schedules, 2);
        assert_eq!(snap.depth.last().unwrap().schedules, 1);
        assert_eq!(snap.depth.last().unwrap().le, None);
    }

    #[test]
    fn worker_shards_merge_deterministically() {
        let run = |split: bool| {
            let handle = ProfileHandle::enabled();
            let (a, b) = if split {
                (handle.sites(&dims()), handle.sites(&dims()))
            } else {
                let s = handle.sites(&dims());
                (s.clone(), s)
            };
            a.add(0, 0, Some(ProfileObj::Var(0)), site::RACES, 2);
            b.add(0, 0, Some(ProfileObj::Var(0)), site::RACES, 5);
            let (la, lb) = if split {
                (handle.leaf_shard(), handle.leaf_shard())
            } else {
                let l = handle.leaf_shard();
                (l.clone(), l)
            };
            la.record_leaf(4, pack_prefix([0]), Some(1), Some(1));
            lb.record_leaf(4, pack_prefix([0]), Some(1), Some(1));
            handle.snapshot().unwrap().scrubbed().to_json_string()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn scrub_zeroes_wall_time_only() {
        let handle = ProfileHandle::enabled();
        let leaf = handle.leaf_shard();
        leaf.record_leaf(4, pack_prefix([0]), Some(1), Some(1));
        std::thread::sleep(std::time::Duration::from_millis(2));
        leaf.record_leaf(4, pack_prefix([0]), Some(1), Some(1));
        let snap = handle.snapshot().unwrap();
        assert!(snap.spans[0].wall_ns > 0, "second leaf must be charged");
        let scrubbed = snap.scrubbed();
        assert_eq!(scrubbed.spans[0].wall_ns, 0);
        assert!(scrubbed.depth.iter().all(|d| d.wall_ns == 0));
        assert_eq!(scrubbed.spans[0].schedules, snap.spans[0].schedules);
    }

    #[test]
    fn identical_recordings_serialize_byte_identically() {
        let run = || {
            let handle = ProfileHandle::enabled();
            let sites = handle.sites(&dims());
            sites.add(0, 1, Some(ProfileObj::Mutex(0)), site::RACES, 4);
            sites.add(1, 1, Some(ProfileObj::Var(0)), site::BACKTRACKS, 2);
            let leaf = handle.leaf_shard();
            for fp in [7u128, 9, 7, 7] {
                leaf.record_leaf(10, pack_prefix([0, 1]), Some(fp), Some(fp / 2));
            }
            handle.snapshot().unwrap().scrubbed().to_json_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn prefix_packing_round_trips() {
        assert_eq!(unpack_prefix(pack_prefix([])), Vec::<u32>::new());
        assert_eq!(unpack_prefix(pack_prefix([3, 0, 63])), vec![3, 0, 63]);
        // Longer schedules share the 8-choice subtree key.
        let long = pack_prefix((0..20).map(|i| i % 4));
        assert_eq!(unpack_prefix(long).len(), SPAN_PREFIX_LEN);
        assert_eq!(
            pack_prefix((0..9).map(|_| 1)),
            pack_prefix((0..8).map(|_| 1))
        );
    }

    #[test]
    #[should_panic(expected = "dims diverged")]
    fn mismatched_dims_panic() {
        let handle = ProfileHandle::enabled();
        let _ = handle.sites(&dims());
        let _ = handle.sites(&ProfileDims {
            thread_ins: vec![1],
            vars: 0,
            mutexes: 0,
        });
    }
}
