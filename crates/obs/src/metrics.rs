//! The metrics registry: static catalogue, per-thread shards, snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-write-wins level.
    Gauge,
    /// Fixed-bucket distribution with `count` and `sum`.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` name.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One entry of a metric catalogue. Catalogues are `'static` so shards
/// can be fixed slabs sized at registry construction.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Prometheus-style family name (`lazylocks_..._total`, `..._ns`).
    pub name: &'static str,
    /// One-line help text, rendered as `# HELP`.
    pub help: &'static str,
    pub kind: MetricKind,
    /// Upper bucket bounds for histograms (ascending; `+Inf` is implicit).
    /// Empty for counters and gauges.
    pub buckets: &'static [u64],
    /// Timer sampling: time one call in `2^sample_shift`, record it with
    /// weight `2^sample_shift`. `0` times every call.
    pub sample_shift: u32,
    /// Values derive from wall-clock time, so snapshots of identical
    /// explorations differ; [`MetricsSnapshot::scrubbed`] zeroes these.
    pub time_based: bool,
    /// Worker-labelled series are kept per shard in the snapshot (the
    /// parallel explorer's steal/publish/pool distributions).
    pub per_worker: bool,
}

impl MetricDef {
    const fn counter(name: &'static str, help: &'static str) -> MetricDef {
        MetricDef {
            name,
            help,
            kind: MetricKind::Counter,
            buckets: &[],
            sample_shift: 0,
            time_based: false,
            per_worker: false,
        }
    }

    const fn per_worker_counter(name: &'static str, help: &'static str) -> MetricDef {
        MetricDef {
            per_worker: true,
            ..MetricDef::counter(name, help)
        }
    }

    const fn gauge(name: &'static str, help: &'static str) -> MetricDef {
        MetricDef {
            kind: MetricKind::Gauge,
            ..MetricDef::counter(name, help)
        }
    }

    const fn histogram(
        name: &'static str,
        help: &'static str,
        buckets: &'static [u64],
    ) -> MetricDef {
        MetricDef {
            name,
            help,
            kind: MetricKind::Histogram,
            buckets,
            sample_shift: 0,
            time_based: false,
            per_worker: false,
        }
    }

    const fn phase_timer(
        name: &'static str,
        help: &'static str,
        buckets: &'static [u64],
        sample_shift: u32,
    ) -> MetricDef {
        MetricDef {
            sample_shift,
            time_based: true,
            ..MetricDef::histogram(name, help, buckets)
        }
    }

    /// Snapshot slots this metric occupies: one for a scalar, one per
    /// bucket plus `count` and `sum` for a histogram.
    fn slot_count(&self) -> usize {
        match self.kind {
            MetricKind::Counter | MetricKind::Gauge => 1,
            MetricKind::Histogram => self.buckets.len() + 2,
        }
    }
}

/// Schedule depth in events per complete schedule.
const DEPTH_BUCKETS: &[u64] = &[4, 8, 16, 32, 64, 128, 256, 512];
/// Nanosecond buckets for the sub-microsecond hot phases.
const HOT_NS_BUCKETS: &[u64] = &[
    250, 1_000, 4_000, 16_000, 64_000, 250_000, 1_000_000, 4_000_000,
];
/// Nanosecond buckets for idle waits (the condvar timeout is 50 ms).
const WAIT_NS_BUCKETS: &[u64] = &[
    100_000,
    1_000_000,
    5_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// Ids into [`builtin_defs`], in catalogue order. Instrumentation sites
/// name their metric through these; the ids are indices, so a custom
/// catalogue (tests) simply defines its own.
pub mod ids {
    use super::MetricId;

    pub const SCHEDULES: MetricId = MetricId(0);
    pub const EVENTS: MetricId = MetricId(1);
    pub const BUGS: MetricId = MetricId(2);
    pub const DEADLOCKS: MetricId = MetricId(3);
    pub const FAULTS: MetricId = MetricId(4);
    pub const TRUNCATED_RUNS: MetricId = MetricId(5);
    pub const SLEEP_PRUNES: MetricId = MetricId(6);
    pub const CACHE_PRUNES: MetricId = MetricId(7);
    pub const BOUND_PRUNES: MetricId = MetricId(8);
    pub const EVENTS_COMPARED: MetricId = MetricId(9);
    pub const FRAMES_POOLED: MetricId = MetricId(10);
    pub const SUBTREES_STOLEN: MetricId = MetricId(11);
    pub const FRAMES_PUBLISHED: MetricId = MetricId(12);
    pub const BACKTRACK_MAILBOX: MetricId = MetricId(13);
    pub const REPLAYS: MetricId = MetricId(14);
    pub const REPLAY_EVENTS: MetricId = MetricId(15);
    pub const FUZZ_CASES: MetricId = MetricId(16);
    pub const FUZZ_DISAGREEMENTS: MetricId = MetricId(17);
    pub const WORKERS: MetricId = MetricId(18);
    pub const SCHEDULE_DEPTH: MetricId = MetricId(19);
    pub const PHASE_EXECUTOR_STEP: MetricId = MetricId(20);
    pub const PHASE_HBR_APPLY: MetricId = MetricId(21);
    pub const PHASE_RACE_DETECTION: MetricId = MetricId(22);
    pub const PHASE_FRAME_CHECKPOINT: MetricId = MetricId(23);
    pub const PHASE_STEAL_WAIT: MetricId = MetricId(24);
    pub const JOBS_RECOVERED: MetricId = MetricId(25);
    pub const CHECKPOINTS_WRITTEN: MetricId = MetricId(26);
    pub const CHECKPOINT_BYTES: MetricId = MetricId(27);
    pub const RESUME_FRAMES_RESTORED: MetricId = MetricId(28);
    pub const LEASES_GRANTED: MetricId = MetricId(29);
    pub const LEASES_REASSIGNED: MetricId = MetricId(30);
    pub const LEASE_ZOMBIE_RESULTS: MetricId = MetricId(31);
    pub const LEASE_INLINE_SLICES: MetricId = MetricId(32);
    pub const LEASE_SLICES_COMPLETED: MetricId = MetricId(33);
}

/// The built-in catalogue every exploration shares. Order is the id
/// order in [`ids`]; snapshots render in this order, which is what makes
/// two identical runs serialize byte-identically.
pub fn builtin_defs() -> &'static [MetricDef] {
    const DEFS: &[MetricDef] = &[
        MetricDef::per_worker_counter("lazylocks_schedules_total", "Complete schedules executed"),
        MetricDef::counter(
            "lazylocks_events_total",
            "Visible events executed across all schedules",
        ),
        MetricDef::counter("lazylocks_bugs_total", "Buggy terminal executions observed"),
        MetricDef::counter(
            "lazylocks_deadlocks_total",
            "Terminal executions that deadlocked",
        ),
        MetricDef::counter(
            "lazylocks_faults_total",
            "Terminal executions with at least one fault",
        ),
        MetricDef::counter(
            "lazylocks_truncated_runs_total",
            "Runs abandoned for exceeding max_run_length",
        ),
        MetricDef::counter(
            "lazylocks_sleep_prunes_total",
            "Subtrees pruned by sleep sets (DPOR)",
        ),
        MetricDef::counter(
            "lazylocks_cache_prunes_total",
            "Subtrees pruned by the prefix-HBR cache",
        ),
        MetricDef::counter(
            "lazylocks_bound_prunes_total",
            "Choices skipped by the preemption bound",
        ),
        MetricDef::counter(
            "lazylocks_events_compared_total",
            "Race-partner candidates examined by DPOR race detection",
        ),
        MetricDef::per_worker_counter(
            "lazylocks_frames_pooled_total",
            "Frame bodies served from the pool free list instead of heap clones",
        ),
        MetricDef::per_worker_counter(
            "lazylocks_subtrees_stolen_total",
            "Subtree roots claimed off the shared work deque",
        ),
        MetricDef::per_worker_counter(
            "lazylocks_frames_published_total",
            "Frames published to the shared deque for other workers",
        ),
        MetricDef::per_worker_counter(
            "lazylocks_backtrack_mailbox_total",
            "Backtrack points delivered through the pending mailbox",
        ),
        MetricDef::counter("lazylocks_replays_total", "Trace artifacts replayed"),
        MetricDef::counter(
            "lazylocks_replay_events_total",
            "Events executed while replaying artifacts",
        ),
        MetricDef::counter("lazylocks_fuzz_cases_total", "Fuzz cases executed"),
        MetricDef::counter(
            "lazylocks_fuzz_disagreements_total",
            "Fuzz cases with a broken strategy-agreement contract",
        ),
        MetricDef::gauge(
            "lazylocks_workers",
            "Worker threads of the most recent parallel exploration",
        ),
        MetricDef::histogram(
            "lazylocks_schedule_depth",
            "Events per complete schedule",
            DEPTH_BUCKETS,
        ),
        MetricDef::phase_timer(
            "lazylocks_phase_executor_step_ns",
            "Guest executor step latency (sampled 1/64, weight-scaled)",
            HOT_NS_BUCKETS,
            6,
        ),
        MetricDef::phase_timer(
            "lazylocks_phase_hbr_apply_ns",
            "Happens-before clock apply latency (sampled 1/64, weight-scaled)",
            HOT_NS_BUCKETS,
            6,
        ),
        MetricDef::phase_timer(
            "lazylocks_phase_race_detection_ns",
            "DPOR reversible-race detection latency per step (sampled 1/64, weight-scaled)",
            HOT_NS_BUCKETS,
            6,
        ),
        MetricDef::phase_timer(
            "lazylocks_phase_frame_checkpoint_ns",
            "Frame checkpoint (pool take + state clone) latency (sampled 1/16, weight-scaled)",
            HOT_NS_BUCKETS,
            4,
        ),
        MetricDef::phase_timer(
            "lazylocks_phase_steal_wait_ns",
            "Idle wait on the shared work deque (exact)",
            WAIT_NS_BUCKETS,
            0,
        ),
        MetricDef::counter(
            "lazylocks_jobs_recovered_total",
            "Jobs re-enqueued from the journal after a daemon restart",
        ),
        MetricDef::counter(
            "lazylocks_checkpoints_written_total",
            "Exploration frontier checkpoints persisted to disk",
        ),
        MetricDef::counter(
            "lazylocks_checkpoint_bytes_total",
            "Bytes of checkpoint data persisted to disk",
        ),
        MetricDef::counter(
            "lazylocks_resume_frames_restored_total",
            "Frontier frames rebuilt when resuming from a checkpoint",
        ),
        MetricDef::counter(
            "lazylocks_leases_granted_total",
            "Subtree leases granted to distributed workers",
        ),
        MetricDef::counter(
            "lazylocks_leases_reassigned_total",
            "Leases reassigned after a worker crash, hang or missed renewal",
        ),
        MetricDef::counter(
            "lazylocks_lease_zombie_results_total",
            "Slice results rejected for carrying a stale lease epoch",
        ),
        MetricDef::counter(
            "lazylocks_lease_inline_slices_total",
            "Lease slices the coordinator explored in-process (no live worker)",
        ),
        MetricDef::counter(
            "lazylocks_lease_slices_completed_total",
            "Lease slices whose results the coordinator accepted",
        ),
    ];
    DEFS
}

/// An index into a registry's catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(pub usize);

/// Catalogue plus the derived slot layout, shared by registry and shards.
#[derive(Debug)]
struct Layout {
    defs: &'static [MetricDef],
    /// First slot of each metric in a shard's slab.
    offsets: Vec<usize>,
    slots: usize,
}

impl Layout {
    fn new(defs: &'static [MetricDef]) -> Layout {
        let mut offsets = Vec::with_capacity(defs.len());
        let mut slots = 0;
        for def in defs {
            offsets.push(slots);
            slots += def.slot_count();
        }
        Layout {
            defs,
            offsets,
            slots,
        }
    }
}

/// One thread's slab of relaxed atomics. Written by its owning worker,
/// read concurrently by snapshots — which is why the slots are atomic at
/// all; a shard is never shared between writers.
#[derive(Debug)]
struct ShardInner {
    layout: Arc<Layout>,
    /// `Some(i)` labels this shard's series with `worker="i"`.
    worker: Option<u32>,
    slots: Box<[AtomicU64]>,
    /// Per-metric call ticker driving timer sampling (not snapshotted).
    ticks: Box<[AtomicU64]>,
}

fn atomic_slab(len: usize) -> Box<[AtomicU64]> {
    (0..len).map(|_| AtomicU64::new(0)).collect()
}

/// Shared metric store for one exploration (or one server job): hands out
/// per-worker shards and merges them on [`MetricsRegistry::snapshot`].
#[derive(Debug)]
pub struct MetricsRegistry {
    layout: Arc<Layout>,
    shards: Mutex<Vec<Arc<ShardInner>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(builtin_defs())
    }
}

impl MetricsRegistry {
    /// A registry over an explicit catalogue (tests); use
    /// [`MetricsRegistry::default`] for the built-in one.
    pub fn new(defs: &'static [MetricDef]) -> MetricsRegistry {
        MetricsRegistry {
            layout: Arc::new(Layout::new(defs)),
            shards: Mutex::new(Vec::new()),
        }
    }

    fn acquire(&self, worker: Option<u32>) -> Arc<ShardInner> {
        let inner = Arc::new(ShardInner {
            layout: self.layout.clone(),
            worker,
            slots: atomic_slab(self.layout.slots),
            ticks: atomic_slab(self.layout.defs.len()),
        });
        self.shards.lock().unwrap().push(inner.clone());
        inner
    }

    /// Merges every shard into one consistent-enough snapshot. Safe to
    /// call while workers are still recording (relaxed reads; the scrape
    /// path of a running job).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards = self.shards.lock().unwrap();
        let layout = &self.layout;
        let mut metrics = Vec::with_capacity(layout.defs.len());
        for (idx, def) in layout.defs.iter().enumerate() {
            let off = layout.offsets[idx];
            let read = |shard: &ShardInner| -> MetricValue {
                match def.kind {
                    MetricKind::Counter | MetricKind::Gauge => {
                        MetricValue::Scalar(shard.slots[off].load(Ordering::Relaxed))
                    }
                    MetricKind::Histogram => {
                        let n = def.buckets.len();
                        MetricValue::Histogram {
                            counts: (0..n)
                                .map(|b| shard.slots[off + b].load(Ordering::Relaxed))
                                .collect(),
                            count: shard.slots[off + n].load(Ordering::Relaxed),
                            sum: shard.slots[off + n + 1].load(Ordering::Relaxed),
                        }
                    }
                }
            };
            let mut total = MetricValue::zero(def);
            let mut per_worker: Vec<(u32, MetricValue)> = Vec::new();
            for shard in shards.iter() {
                let value = read(shard);
                total.merge(&value, def.kind);
                if def.per_worker {
                    if let Some(w) = shard.worker {
                        match per_worker.iter_mut().find(|(pw, _)| *pw == w) {
                            Some((_, existing)) => existing.merge(&value, def.kind),
                            None => per_worker.push((w, value)),
                        }
                    }
                }
            }
            per_worker.sort_by_key(|(w, _)| *w);
            metrics.push(MetricSnap {
                name: def.name.to_string(),
                help: def.help.to_string(),
                kind: def.kind,
                buckets: def.buckets.to_vec(),
                time_based: def.time_based,
                total,
                per_worker,
            });
        }
        MetricsSnapshot { metrics }
    }
}

/// The cloneable on/off switch threaded through `ExploreConfig`: `None`
/// (the default) costs one branch per instrumentation point; `Some`
/// shares one [`MetricsRegistry`] between every shard of a run.
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle(Option<Arc<MetricsRegistry>>);

impl MetricsHandle {
    /// The inert default: every operation is a no-op.
    pub fn disabled() -> MetricsHandle {
        MetricsHandle(None)
    }

    /// A live handle over a fresh built-in registry.
    pub fn enabled() -> MetricsHandle {
        MetricsHandle(Some(Arc::new(MetricsRegistry::default())))
    }

    /// A live handle over a caller-built registry (custom catalogues).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> MetricsHandle {
        MetricsHandle(Some(registry))
    }

    /// `true` when recording is live.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Acquires an unlabelled shard (single-threaded strategies, shared
    /// leaf collectors). Inert when disabled.
    pub fn shard(&self) -> MetricsShard {
        MetricsShard(self.0.as_ref().map(|r| r.acquire(None)))
    }

    /// Acquires a shard whose `per_worker` metrics are labelled
    /// `worker="index"` in snapshots.
    pub fn worker_shard(&self, index: u32) -> MetricsShard {
        MetricsShard(self.0.as_ref().map(|r| r.acquire(Some(index))))
    }

    /// Snapshot of the whole registry; `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_ref().map(|r| r.snapshot())
    }
}

/// One worker's recording handle. All operations are relaxed atomic adds
/// on a fixed slab — no locks, no allocation — and no-ops when the
/// handle was acquired from a disabled [`MetricsHandle`].
#[derive(Debug, Clone, Default)]
pub struct MetricsShard(Option<Arc<ShardInner>>);

impl MetricsShard {
    /// An inert shard (what a disabled handle returns).
    pub fn disabled() -> MetricsShard {
        MetricsShard(None)
    }

    /// `true` when recording is live.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn inc(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        if let Some(inner) = &self.0 {
            inner.slots[inner.layout.offsets[id.0]].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&self, id: MetricId, value: u64) {
        if let Some(inner) = &self.0 {
            inner.slots[inner.layout.offsets[id.0]].store(value, Ordering::Relaxed);
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&self, id: MetricId, value: u64) {
        self.observe_weighted(id, value, 1);
    }

    /// Records a histogram observation with a weight (the timer sampling
    /// path: one timed call stands for `2^shift` untimed ones).
    pub fn observe_weighted(&self, id: MetricId, value: u64, weight: u64) {
        let Some(inner) = &self.0 else { return };
        let def = &inner.layout.defs[id.0];
        let off = inner.layout.offsets[id.0];
        let bucket = def.buckets.iter().position(|&le| value <= le);
        if let Some(b) = bucket {
            inner.slots[off + b].fetch_add(weight, Ordering::Relaxed);
        }
        let n = def.buckets.len();
        inner.slots[off + n].fetch_add(weight, Ordering::Relaxed);
        inner.slots[off + n + 1].fetch_add(value.saturating_mul(weight), Ordering::Relaxed);
    }

    /// Starts a (possibly sampled) phase timing; `None` means "this call
    /// is not being timed" — including the disabled case, so the hot-path
    /// cost with metrics off is exactly this early return.
    #[inline]
    pub fn timer_start(&self, id: MetricId) -> Option<Instant> {
        let inner = self.0.as_ref()?;
        let def = &inner.layout.defs[id.0];
        if def.sample_shift > 0 {
            let tick = inner.ticks[id.0].fetch_add(1, Ordering::Relaxed);
            if tick & ((1u64 << def.sample_shift) - 1) != 0 {
                return None;
            }
        }
        Some(Instant::now())
    }

    /// Ends a phase timing started by [`MetricsShard::timer_start`],
    /// recording the elapsed nanoseconds with the sampling weight.
    #[inline]
    pub fn timer_stop(&self, id: MetricId, started: Option<Instant>) {
        let Some(started) = started else { return };
        let Some(inner) = &self.0 else { return };
        let def = &inner.layout.defs[id.0];
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.observe_weighted(id, ns, 1u64 << def.sample_shift);
    }
}

/// A merged point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Scalar(u64),
    Histogram {
        counts: Vec<u64>,
        count: u64,
        sum: u64,
    },
}

impl MetricValue {
    fn zero(def: &MetricDef) -> MetricValue {
        match def.kind {
            MetricKind::Counter | MetricKind::Gauge => MetricValue::Scalar(0),
            MetricKind::Histogram => MetricValue::Histogram {
                counts: vec![0; def.buckets.len()],
                count: 0,
                sum: 0,
            },
        }
    }

    fn merge(&mut self, other: &MetricValue, kind: MetricKind) {
        match (self, other) {
            (MetricValue::Scalar(a), MetricValue::Scalar(b)) => match kind {
                // Gauges merge by max: "the widest worker pool seen".
                MetricKind::Gauge => *a = (*a).max(*b),
                _ => *a += *b,
            },
            (
                MetricValue::Histogram { counts, count, sum },
                MetricValue::Histogram {
                    counts: oc,
                    count: on,
                    sum: os,
                },
            ) => {
                for (a, b) in counts.iter_mut().zip(oc) {
                    *a += *b;
                }
                *count += *on;
                *sum += *os;
            }
            _ => unreachable!("metric kinds diverged between shards of one registry"),
        }
    }

    fn zeroed(&self) -> MetricValue {
        match self {
            MetricValue::Scalar(_) => MetricValue::Scalar(0),
            MetricValue::Histogram { counts, .. } => MetricValue::Histogram {
                counts: vec![0; counts.len()],
                count: 0,
                sum: 0,
            },
        }
    }

    /// The scalar value, or a histogram's `count`.
    pub fn count(&self) -> u64 {
        match self {
            MetricValue::Scalar(v) => *v,
            MetricValue::Histogram { count, .. } => *count,
        }
    }

    /// A histogram's `sum` (0 for scalars).
    pub fn sum(&self) -> u64 {
        match self {
            MetricValue::Scalar(_) => 0,
            MetricValue::Histogram { sum, .. } => *sum,
        }
    }
}

/// One metric in a snapshot: the merged total plus any worker-labelled
/// series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnap {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub buckets: Vec<u64>,
    pub time_based: bool,
    pub total: MetricValue,
    pub per_worker: Vec<(u32, MetricValue)>,
}

impl MetricSnap {
    /// The quantile `q` (0..=1) estimated from the bucket counts by
    /// linear interpolation inside the winning bucket; `None` when the
    /// histogram is empty or the metric is a scalar.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let MetricValue::Histogram { counts, count, .. } = &self.total else {
            return None;
        };
        if *count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * (*count as f64);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let lower = if i == 0 { 0 } else { self.buckets[i - 1] };
            let upper = self.buckets[i];
            if (seen + c) as f64 >= rank && c > 0 {
                let within = (rank - seen as f64) / c as f64;
                return Some(lower as f64 + within * (upper - lower) as f64);
            }
            seen += c;
        }
        // The rank lands in the +Inf bucket; report the last finite bound.
        Some(*self.buckets.last().unwrap_or(&0) as f64)
    }
}

/// A merged, ordered point-in-time view of a registry — the unit that
/// serializes (JSON, Prometheus text) and merges across jobs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub metrics: Vec<MetricSnap>,
}

impl MetricsSnapshot {
    /// Looks a metric up by family name.
    pub fn get(&self, name: &str) -> Option<&MetricSnap> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The scalar / count value of a metric, 0 when absent.
    pub fn value(&self, name: &str) -> u64 {
        self.get(name).map(|m| m.total.count()).unwrap_or(0)
    }

    /// Element-wise merge of another snapshot of the *same catalogue*
    /// (the server's cross-job aggregation). Metrics are matched by
    /// position and name; a name mismatch panics — it means two different
    /// catalogues were mixed, which is a bug, not data.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if self.metrics.is_empty() {
            self.metrics = other.metrics.clone();
            return;
        }
        assert_eq!(
            self.metrics.len(),
            other.metrics.len(),
            "merging snapshots of different catalogues"
        );
        for (a, b) in self.metrics.iter_mut().zip(&other.metrics) {
            assert_eq!(a.name, b.name, "merging snapshots of different catalogues");
            a.total.merge(&b.total, a.kind);
            for (w, value) in &b.per_worker {
                match a.per_worker.iter_mut().find(|(aw, _)| aw == w) {
                    Some((_, existing)) => existing.merge(value, a.kind),
                    None => a.per_worker.push((*w, value.clone())),
                }
            }
            a.per_worker.sort_by_key(|(w, _)| *w);
        }
    }

    /// A copy with every time-derived series zeroed — the determinism
    /// contract: two identical explorations scrub to byte-identical JSON.
    pub fn scrubbed(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .map(|m| {
                    if !m.time_based {
                        return m.clone();
                    }
                    MetricSnap {
                        total: m.total.zeroed(),
                        per_worker: m.per_worker.iter().map(|(w, v)| (*w, v.zeroed())).collect(),
                        ..m.clone()
                    }
                })
                .collect(),
        }
    }

    /// Integer-only JSON, stable field order (the codec contract shared
    /// with `lazylocks-trace`'s `Json`, which parses this verbatim).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"format\":\"lazylocks-metrics\",\"version\":1,\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&json_escape(&m.name));
            out.push_str("\",\"kind\":\"");
            out.push_str(m.kind.as_str());
            out.push('"');
            write_value_fields(&mut out, &m.total, &m.buckets);
            if !m.per_worker.is_empty() {
                out.push_str(",\"per_worker\":[");
                for (j, (w, value)) in m.per_worker.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"worker\":");
                    out.push_str(&w.to_string());
                    write_value_fields(&mut out, value, &m.buckets);
                    out.push('}');
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition format (`# HELP` / `# TYPE` + series).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            render_prometheus_family(&mut out, m);
        }
        out
    }

    /// A compact human-readable table (the CLI `--metrics` summary):
    /// non-zero metrics only, histograms with count/mean/p50/p99.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            match &m.total {
                MetricValue::Scalar(v) => {
                    if *v > 0 {
                        out.push_str(&format!("{:<42} {v}\n", m.name));
                    }
                }
                MetricValue::Histogram { count, sum, .. } => {
                    if *count > 0 {
                        let mean = *sum as f64 / *count as f64;
                        out.push_str(&format!(
                            "{:<42} count={count} mean={mean:.0} p50={:.0} p99={:.0}\n",
                            m.name,
                            m.quantile(0.50).unwrap_or(0.0),
                            m.quantile(0.99).unwrap_or(0.0),
                        ));
                    }
                }
            }
            for (w, value) in &m.per_worker {
                if value.count() > 0 {
                    out.push_str(&format!(
                        "{:<42} {}\n",
                        format!("{}{{worker={w}}}", m.name),
                        value.count()
                    ));
                }
            }
        }
        out
    }
}

fn write_value_fields(out: &mut String, value: &MetricValue, buckets: &[u64]) {
    match value {
        MetricValue::Scalar(v) => {
            out.push_str(",\"value\":");
            out.push_str(&v.to_string());
        }
        MetricValue::Histogram { counts, count, sum } => {
            out.push_str(",\"buckets\":[");
            for (i, b) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("],\"counts\":[");
            for (i, c) in counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("],\"count\":");
            out.push_str(&count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&sum.to_string());
        }
    }
}

fn render_prometheus_family(out: &mut String, m: &MetricSnap) {
    out.push_str("# HELP ");
    out.push_str(&m.name);
    out.push(' ');
    out.push_str(&m.help);
    out.push_str("\n# TYPE ");
    out.push_str(&m.name);
    out.push(' ');
    out.push_str(m.kind.as_str());
    out.push('\n');
    let render_one = |out: &mut String, labels: &str, value: &MetricValue| match value {
        MetricValue::Scalar(v) => {
            out.push_str(&m.name);
            out.push_str(labels);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        MetricValue::Histogram { counts, count, sum } => {
            let mut cumulative = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cumulative += c;
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"{}}} {cumulative}\n",
                    m.name,
                    m.buckets[i],
                    labels_inner(labels),
                ));
            }
            out.push_str(&format!(
                "{}_bucket{{le=\"+Inf\"{}}} {count}\n",
                m.name,
                labels_inner(labels),
            ));
            out.push_str(&format!("{}_sum{labels} {sum}\n", m.name));
            out.push_str(&format!("{}_count{labels} {count}\n", m.name));
        }
    };
    render_one(out, "", &m.total);
    for (w, value) in &m.per_worker {
        render_one(out, &format!("{{worker=\"{w}\"}}"), value);
    }
}

/// Turns an outer label set (`{worker="0"}` or ``) into the extra labels
/// that follow `le="..."` inside a bucket line (`,worker="0"` or ``).
fn labels_inner(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!(",{}", &labels[1..labels.len() - 1])
    }
}

/// Minimal JSON string escaping (control characters, quotes, backslash) —
/// mirrors the escaping rules of `lazylocks-trace`'s codec so output
/// round-trips through it.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_DEFS: &[MetricDef] = &[
        MetricDef::counter("t_count_total", "a counter"),
        MetricDef::gauge("t_gauge", "a gauge"),
        MetricDef::histogram("t_hist", "a histogram", &[10, 100, 1000]),
    ];
    const T_COUNT: MetricId = MetricId(0);
    const T_GAUGE: MetricId = MetricId(1);
    const T_HIST: MetricId = MetricId(2);

    #[test]
    fn disabled_handle_is_inert_everywhere() {
        let handle = MetricsHandle::disabled();
        assert!(!handle.is_enabled());
        let shard = handle.shard();
        shard.inc(T_COUNT);
        shard.set(T_GAUGE, 9);
        shard.observe(T_HIST, 5);
        assert!(shard.timer_start(T_HIST).is_none());
        assert!(handle.snapshot().is_none());
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let registry = Arc::new(MetricsRegistry::new(TEST_DEFS));
        let handle = MetricsHandle::with_registry(registry);
        let shard = handle.shard();
        // One observation per boundary region: <=10, ==10, 11, ==100,
        // 101, ==1000, and one overflow into +Inf.
        for v in [1, 10, 11, 100, 101, 1000, 1001] {
            shard.observe(T_HIST, v);
        }
        let snap = handle.snapshot().unwrap();
        let m = snap.get("t_hist").unwrap();
        match &m.total {
            MetricValue::Histogram { counts, count, sum } => {
                assert_eq!(counts, &vec![2, 2, 2]);
                assert_eq!(*count, 7);
                assert_eq!(*sum, 1 + 10 + 11 + 100 + 101 + 1000 + 1001);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shard_merge_is_associative_and_order_independent() {
        // Three shards with distinct contents; the registry snapshot must
        // equal the pairwise snapshot merges in any order.
        let build = |values: &[&[u64]]| {
            let registry = Arc::new(MetricsRegistry::new(TEST_DEFS));
            let handle = MetricsHandle::with_registry(registry);
            for shard_values in values {
                let shard = handle.shard();
                for &v in *shard_values {
                    shard.add(T_COUNT, v);
                    shard.observe(T_HIST, v);
                }
            }
            handle.snapshot().unwrap()
        };
        let all = build(&[&[1, 50], &[200, 7], &[2000]]);
        let mut ab_c = build(&[&[1, 50], &[200, 7]]);
        ab_c.merge(&build(&[&[2000]]));
        let mut a_bc = build(&[&[1, 50]]);
        a_bc.merge(&build(&[&[200, 7], &[2000]]));
        assert_eq!(all, ab_c);
        assert_eq!(all, a_bc);
        assert_eq!(ab_c.to_json_string(), a_bc.to_json_string());
    }

    #[test]
    fn per_worker_series_survive_and_totals_sum() {
        let handle = MetricsHandle::enabled();
        let w0 = handle.worker_shard(0);
        let w1 = handle.worker_shard(1);
        w0.add(ids::SUBTREES_STOLEN, 3);
        w1.add(ids::SUBTREES_STOLEN, 5);
        let snap = handle.snapshot().unwrap();
        let m = snap.get("lazylocks_subtrees_stolen_total").unwrap();
        assert_eq!(m.total, MetricValue::Scalar(8));
        assert_eq!(
            m.per_worker,
            vec![(0, MetricValue::Scalar(3)), (1, MetricValue::Scalar(5))]
        );
    }

    #[test]
    fn gauges_merge_by_max() {
        let handle = MetricsHandle::enabled();
        handle.shard().set(ids::WORKERS, 4);
        handle.shard().set(ids::WORKERS, 2);
        assert_eq!(handle.snapshot().unwrap().value("lazylocks_workers"), 4);
    }

    #[test]
    fn sampled_timers_record_weighted_consistent_histograms() {
        let handle = MetricsHandle::enabled();
        let shard = handle.shard();
        // PHASE_EXECUTOR_STEP samples 1/64: of 128 calls exactly 2 are
        // timed, each recorded with weight 64.
        let mut timed = 0;
        for _ in 0..128 {
            let t = shard.timer_start(ids::PHASE_EXECUTOR_STEP);
            if t.is_some() {
                timed += 1;
            }
            shard.timer_stop(ids::PHASE_EXECUTOR_STEP, t);
        }
        assert_eq!(timed, 2);
        let snap = handle.snapshot().unwrap();
        let m = snap.get("lazylocks_phase_executor_step_ns").unwrap();
        match &m.total {
            MetricValue::Histogram { counts, count, .. } => {
                assert_eq!(*count, 128);
                assert_eq!(counts.iter().sum::<u64>(), 128, "no +Inf overflow expected");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scrub_zeroes_time_based_series_only() {
        let handle = MetricsHandle::enabled();
        let shard = handle.shard();
        shard.inc(ids::SCHEDULES);
        shard.observe(ids::SCHEDULE_DEPTH, 12);
        shard.observe_weighted(ids::PHASE_STEAL_WAIT, 500_000, 1);
        let scrubbed = handle.snapshot().unwrap().scrubbed();
        assert_eq!(scrubbed.value("lazylocks_schedules_total"), 1);
        assert_eq!(scrubbed.value("lazylocks_schedule_depth"), 1);
        assert_eq!(scrubbed.value("lazylocks_phase_steal_wait_ns"), 0);
        assert_eq!(
            scrubbed
                .get("lazylocks_phase_steal_wait_ns")
                .unwrap()
                .total
                .sum(),
            0
        );
    }

    #[test]
    fn identical_recordings_serialize_byte_identically() {
        let run = || {
            let handle = MetricsHandle::enabled();
            let shard = handle.shard();
            for d in [3, 9, 40, 700] {
                shard.inc(ids::SCHEDULES);
                shard.observe(ids::SCHEDULE_DEPTH, d);
            }
            let t = shard.timer_start(ids::PHASE_STEAL_WAIT);
            shard.timer_stop(ids::PHASE_STEAL_WAIT, t);
            handle.snapshot().unwrap().scrubbed().to_json_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn prometheus_text_has_well_formed_histograms() {
        let handle = MetricsHandle::enabled();
        let shard = handle.worker_shard(0);
        shard.observe(ids::SCHEDULE_DEPTH, 6);
        shard.observe(ids::SCHEDULE_DEPTH, 1000);
        shard.add(ids::SUBTREES_STOLEN, 2);
        let text = handle.snapshot().unwrap().to_prometheus_text();
        assert!(text.contains("# TYPE lazylocks_schedule_depth histogram"));
        assert!(text.contains("lazylocks_schedule_depth_bucket{le=\"8\"} 1"));
        // The 1000-event schedule overflows every finite bucket.
        assert!(text.contains("lazylocks_schedule_depth_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lazylocks_schedule_depth_count 2"));
        assert!(text.contains("lazylocks_subtrees_stolen_total 2"));
        assert!(text.contains("lazylocks_subtrees_stolen_total{worker=\"0\"} 2"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "bad sample line: {line}");
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let registry = Arc::new(MetricsRegistry::new(TEST_DEFS));
        let handle = MetricsHandle::with_registry(registry);
        let shard = handle.shard();
        // 10 observations in (10, 100]: p50 lands mid-bucket.
        for _ in 0..10 {
            shard.observe(T_HIST, 50);
        }
        let snap = handle.snapshot().unwrap();
        let m = snap.get("t_hist").unwrap();
        let p50 = m.quantile(0.5).unwrap();
        assert!((10.0..=100.0).contains(&p50), "{p50}");
        assert!(m.quantile(1.0).unwrap() <= 100.0);
        assert!(snap.get("t_gauge").unwrap().quantile(0.5).is_none());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
