//! # lazylocks-server — exploration as a service.
//!
//! A long-running daemon that accepts `.llk` programs plus strategy
//! specs over HTTP/1.1 + JSON, explores them on a bounded worker pool,
//! streams progress and bugs into pollable per-job event logs, and
//! persists every counterexample into a [`CorpusStore`] so it can be
//! replayed later in a fresh process.
//!
//! Built from `std` alone — a hand-rolled, hardened HTTP layer
//! ([`http`]) and the zero-dependency JSON codec from `lazylocks-trace`
//! — because the workspace builds offline. The exploration itself goes
//! through [`lazylocks_trace::drive`], the same entry point the CLI
//! `run` command and the fuzzer's repro paths use, so a job's result
//! document is exactly what `run --json` would print (modulo the
//! scrubbed wall-clock field; see [`job::scrubbed_result`]).
//!
//! * [`daemon::serve`] — the accept loop, routing and drain-then-exit
//!   shutdown (the `lazylocks serve` subcommand);
//! * [`job`] — job queue, `Queued → Running → Done/Cancelled/Failed`
//!   state machine, per-job cancellation and event logs;
//! * [`journal`] — the durable job journal: a JSON-lines write-ahead log
//!   of every lifecycle transition, replayed on startup so a crashed
//!   daemon re-enqueues the jobs that never finished;
//! * [`lease`] — fault-tolerant distributed exploration: the
//!   coordinator's subtree-lease table (deadlines, epoch fencing,
//!   reassignment after worker loss, in-process grace fallback) and the
//!   slice runner shared by the `lazylocks worker` subcommand;
//! * [`client`] — a thin blocking client (the `lazylocks client` and
//!   `lazylocks worker` subcommands, CI smoke tests and e2e tests) with
//!   exponential-backoff retries gated on an idempotency classification;
//! * [`http`] — request parsing with hard caps on line length, header
//!   count and body size; malformed input maps to structured 4xx.
//!
//! ## Distributed mode
//!
//! `serve --distributed` turns each job into a chain of epoch-fenced
//! **subtree leases** explored one slice at a time by external
//! `lazylocks worker` processes (or in-process when none are live), with
//! crash/hang/zombie recovery guaranteed by lease deadlines — see
//! [`lease`] for the protocol and its determinism argument.
//!
//! [`CorpusStore`]: lazylocks_trace::CorpusStore

pub mod client;
pub mod daemon;
pub mod http;
pub mod job;
pub mod journal;
pub mod lease;

pub use client::{is_idempotent, Client};
pub use daemon::{serve, ServerConfig};
pub use http::{HttpError, Limits};
pub use job::{JobRequest, JobState, JobTable};
pub use journal::{replay_bytes, Journal, JournalLock, JournalReplay, RecoveredJob};
pub use lease::{run_slice, LeaseConfig, LeaseTable, LeaseWait, DISTRIBUTED_BODY_CAP};
