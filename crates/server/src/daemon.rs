//! The daemon: TCP accept loop, bounded connection-handler pool, REST
//! routing, and drain-then-exit shutdown.
//!
//! ## Surface
//!
//! | method & path               | action                                   |
//! |-----------------------------|------------------------------------------|
//! | `GET /healthz`              | liveness + queue/worker load             |
//! | `GET /metrics`              | Prometheus text exposition               |
//! | `GET /metrics?format=json`  | the same metrics as a JSON document      |
//! | `GET /strategies`           | the strategy registry with help + aliases|
//! | `POST /jobs`                | submit a job (JSON body) → 201 `{id}`    |
//! | `GET /jobs`                 | summaries of every job                   |
//! | `GET /jobs/<id>`            | one job, result document included        |
//! | `DELETE /jobs/<id>`         | cooperative cancel                       |
//! | `GET /jobs/<id>/events?since=N` | poll the seq-numbered event log      |
//! | `GET /jobs/<id>/profile`    | the job's exploration-profile document   |
//! | `POST /shutdown`            | stop accepting, drain, exit              |
//! | `POST /leases/claim`        | (distributed) claim a subtree lease      |
//! | `POST /leases/<id>/renew`   | (distributed) heartbeat a held lease     |
//! | `POST /leases/<id>/result`  | (distributed) upload a slice result      |
//!
//! With `--token <secret>` every mutating (non-`GET`) route requires
//! `Authorization: Bearer <secret>` and answers 401 otherwise; reads
//! stay open so dashboards and health probes keep working.
//!
//! ## Threads
//!
//! One nonblocking accept loop (polling so it can observe the shutdown
//! flag), a small fixed pool of connection handlers fed over a *bounded*
//! channel (backpressure instead of a thread per connection), and
//! `workers` job runners consuming the [`JobTable`] queue. Shutdown
//! reverses that: the accept loop stops, the channel closes, handlers
//! drain in-flight connections and exit, job workers drain the queue and
//! exit, `serve` returns. Nothing is detached, so a clean exit proves a
//! clean drain.

use crate::http::{read_request, write_response, write_text_response, HttpError, Limits, Request};
use crate::job::{run_worker, JobRequest, JobTable};
use crate::journal::{replay_bytes, Journal, JournalLock};
use crate::lease::{LeaseConfig, LeaseTable};
use lazylocks::obs::ids;
use lazylocks::{MetricsHandle, StrategyRegistry};
use lazylocks_model::Program;
use lazylocks_trace::Json;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Daemon configuration (the `serve` subcommand's flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7077`; port `0` picks an ephemeral
    /// port (printed on stdout as `listening on <addr>`).
    pub addr: String,
    /// Job runner threads.
    pub workers: usize,
    /// Corpus directory every job persists its bugs into; `None`
    /// disables persistence.
    pub corpus_dir: Option<PathBuf>,
    /// Durable job journal (write-ahead log). When set, every lifecycle
    /// transition is fsynced before it is acknowledged and a restarted
    /// daemon re-enqueues the jobs that never finished; `None` keeps the
    /// queue in memory only.
    pub journal: Option<PathBuf>,
    /// Upper bound on a job's schedule budget; bigger submissions are
    /// rejected with 400 rather than silently clamped.
    pub max_job_budget: usize,
    /// HTTP hardening limits.
    pub limits: Limits,
    /// Distributed mode: explore jobs through epoch-fenced subtree
    /// leases claimed by external `lazylocks worker` processes (with an
    /// in-process fallback when none are live) instead of in the job
    /// runner threads.
    pub distributed: bool,
    /// Shared secret: when set, every mutating (non-`GET`) route
    /// requires `Authorization: Bearer <token>` and answers 401
    /// otherwise.
    pub token: Option<String>,
    /// Lease time-to-live in milliseconds — a worker that stops renewing
    /// for this long is presumed dead and its lease is reassigned.
    pub lease_ttl_ms: u64,
    /// Schedule budget per lease slice.
    pub slice: usize,
    /// How long an offered lease may sit unclaimed (milliseconds) before
    /// the coordinator explores it in-process.
    pub grace_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let leases = LeaseConfig::default();
        ServerConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 2,
            corpus_dir: None,
            journal: None,
            max_job_budget: 1_000_000,
            limits: Limits::default(),
            distributed: false,
            token: None,
            lease_ttl_ms: leases.ttl.as_millis() as u64,
            slice: leases.slice,
            grace_ms: leases.grace.as_millis() as u64,
        }
    }
}

/// Everything a connection handler needs.
struct ServerCtx {
    table: Arc<JobTable>,
    registry: StrategyRegistry,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Daemon start time, reported as whole-second uptime ticks.
    started: Instant,
    /// Daemon-level counters (journal recovery, lease protocol); merged
    /// into the per-job union on `GET /metrics`.
    metrics: MetricsHandle,
    /// The distributed-mode lease table; `None` when `--distributed` is
    /// off, in which case the lease routes answer 404.
    leases: Option<Arc<LeaseTable>>,
}

/// Runs the daemon until `POST /shutdown`; returns once every
/// connection handler and job worker has been joined (the drain
/// barrier). The resolved listen address is printed on stdout before the
/// first accept, so callers binding port `0` can discover the port.
pub fn serve(config: ServerConfig) -> Result<(), String> {
    let mut config = config;
    if config.distributed {
        // Slice results carry checkpoint frontiers that grow with the
        // explored tree and easily exceed the 1 MiB bounding every
        // other route; a refused result must not strand the lease.
        config.limits.max_body_bytes = config
            .limits
            .max_body_bytes
            .max(crate::lease::DISTRIBUTED_BODY_CAP);
    }
    // The exclusive journal lock comes before the bind and the
    // readiness line: replay-then-append is only sound for a single
    // owner, so a second daemon on the same journal must fail loudly
    // here — before announcing itself — rather than interleave writes.
    // The lock is held until `serve` returns.
    let _journal_lock = match &config.journal {
        Some(path) => {
            Some(JournalLock::acquire(path).map_err(|e| format!("cannot lock journal: {e}"))?)
        }
        None => None,
    };

    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve local address: {e}"))?;
    println!("lazylocks-server listening on {local}");
    std::io::stdout().flush().ok();
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;

    // Replay the journal (if any) before workers exist, so recovered
    // jobs are queued ahead of the first claim.
    let metrics = MetricsHandle::enabled();
    let mut journal_handle: Option<Arc<Journal>> = None;
    let table = match &config.journal {
        Some(path) => {
            let bytes = match std::fs::read(path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
            };
            let replay = replay_bytes(&bytes);
            for warning in &replay.skipped {
                eprintln!("journal {}: {warning}", path.display());
            }
            let journal = Arc::new(
                Journal::open(path)
                    .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?,
            );
            journal_handle = Some(journal.clone());
            let table = Arc::new(JobTable::with_journal(journal));
            let recovered = table.restore(replay);
            metrics.shard().add(ids::JOBS_RECOVERED, recovered as u64);
            if recovered > 0 {
                println!(
                    "lazylocks-server recovered {recovered} unfinished job(s) from {}",
                    path.display()
                );
            }
            table
        }
        None => Arc::new(JobTable::default()),
    };
    let leases = config.distributed.then(|| {
        Arc::new(LeaseTable::new(
            LeaseConfig {
                ttl: Duration::from_millis(config.lease_ttl_ms.max(1)),
                slice: config.slice.max(1),
                grace: Duration::from_millis(config.grace_ms),
            },
            metrics.clone(),
            journal_handle,
        ))
    });
    let ctx = Arc::new(ServerCtx {
        table: table.clone(),
        registry: StrategyRegistry::default(),
        config: config.clone(),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        metrics,
        leases: leases.clone(),
    });

    let job_workers: Vec<_> = (0..config.workers.max(1))
        .map(|i| {
            let table = table.clone();
            let corpus = config.corpus_dir.clone();
            let leases = leases.clone();
            thread::Builder::new()
                .name(format!("job-worker-{i}"))
                .spawn(move || run_worker(table, corpus, leases))
                .map_err(|e| format!("cannot spawn job worker: {e}"))
        })
        .collect::<Result<_, _>>()?;

    // Bounded handoff: when every handler is busy and the buffer is
    // full, the accept loop itself blocks — backpressure, not an
    // unbounded thread spawn per connection.
    let (conn_tx, conn_rx) = sync_channel::<TcpStream>(32);
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let handlers: Vec<_> = (0..4)
        .map(|i| {
            let rx = conn_rx.clone();
            let ctx = ctx.clone();
            thread::Builder::new()
                .name(format!("http-handler-{i}"))
                .spawn(move || handler_loop(rx, ctx))
                .map_err(|e| format!("cannot spawn connection handler: {e}"))
        })
        .collect::<Result<_, _>>()?;

    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("accept failed: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // Drain: close the connection channel, let handlers finish in-flight
    // requests, then let job workers empty the queue.
    drop(conn_tx);
    for h in handlers {
        h.join().map_err(|_| "connection handler panicked")?;
    }
    table.begin_shutdown();
    for w in job_workers {
        w.join().map_err(|_| "job worker panicked")?;
    }
    println!("lazylocks-server drained, exiting");
    Ok(())
}

fn handler_loop(rx: Arc<Mutex<Receiver<TcpStream>>>, ctx: Arc<ServerCtx>) {
    loop {
        // Hold the lock only for the receive so handlers stay parallel.
        let stream = match rx.lock().unwrap().recv() {
            Ok(stream) => stream,
            Err(_) => return,
        };
        handle_connection(stream, &ctx);
    }
}

/// One request per connection, `Connection: close` — and every failure
/// path answers with structured JSON rather than dropping or panicking.
fn handle_connection(stream: TcpStream, ctx: &ServerCtx) {
    stream
        .set_read_timeout(Some(ctx.config.limits.read_timeout))
        .ok();
    stream
        .set_write_timeout(Some(ctx.config.limits.read_timeout))
        .ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let (status, body) = match read_request(&mut reader, &ctx.config.limits) {
        // `/metrics` is the one non-JSON route: Prometheus text. Its
        // `?format=json` twin serves the same families as JSON for the
        // JSON-only client (`lazylocks client metrics`).
        Ok(request)
            if request.method == "GET"
                && request.path == "/metrics"
                && !request
                    .query
                    .iter()
                    .any(|(k, v)| k == "format" && v == "json") =>
        {
            write_text_response(
                &mut writer,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &metrics_text(ctx),
            )
            .ok();
            return;
        }
        Ok(request) => match check_auth(&request, ctx) {
            Some(denied) => denied,
            None => route(&request, ctx),
        },
        Err(HttpError::Closed) => return,
        Err(e) => {
            let (status, _) = e.status();
            (status, error_body(&e.message()))
        }
    };
    write_response(&mut writer, status, &body).ok();
}

/// The `GET /metrics` document: daemon-level families (queue, jobs,
/// workers, uptime) followed by the merged per-job exploration metrics.
fn metrics_text(ctx: &ServerCtx) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let (queued, running) = ctx.table.load();
    out.push_str("# HELP lazylocks_server_queue_depth Jobs waiting for a worker.\n");
    out.push_str("# TYPE lazylocks_server_queue_depth gauge\n");
    let _ = writeln!(out, "lazylocks_server_queue_depth {queued}");
    out.push_str("# HELP lazylocks_server_running_jobs Jobs currently held by a worker.\n");
    out.push_str("# TYPE lazylocks_server_running_jobs gauge\n");
    let _ = writeln!(out, "lazylocks_server_running_jobs {running}");
    out.push_str("# HELP lazylocks_server_jobs Jobs by lifecycle state.\n");
    out.push_str("# TYPE lazylocks_server_jobs gauge\n");
    for (state, n) in ctx.table.state_counts() {
        let _ = writeln!(
            out,
            "lazylocks_server_jobs{{state=\"{}\"}} {n}",
            state.as_str()
        );
    }
    out.push_str("# HELP lazylocks_server_workers Job runner threads.\n");
    out.push_str("# TYPE lazylocks_server_workers gauge\n");
    let _ = writeln!(
        out,
        "lazylocks_server_workers {}",
        ctx.config.workers.max(1)
    );
    out.push_str("# HELP lazylocks_server_uptime_ticks Whole seconds since the daemon started.\n");
    out.push_str("# TYPE lazylocks_server_uptime_ticks counter\n");
    let _ = writeln!(
        out,
        "lazylocks_server_uptime_ticks {}",
        ctx.started.elapsed().as_secs()
    );
    out.push_str("# HELP lazylocks_server_draining 1 once shutdown has begun.\n");
    out.push_str("# TYPE lazylocks_server_draining gauge\n");
    let _ = writeln!(
        out,
        "lazylocks_server_draining {}",
        u8::from(ctx.shutdown.load(Ordering::SeqCst))
    );
    let mut merged = ctx.table.metrics_snapshot();
    if let Some(daemon) = ctx.metrics.snapshot() {
        merged.merge(&daemon);
    }
    out.push_str(&merged.to_prometheus_text());
    out
}

/// `GET /metrics?format=json`: the merged exploration metrics in the
/// `lazylocks-metrics` JSON schema, plus a `server` object carrying the
/// daemon gauges the text exposition renders as its own families.
fn metrics_json_body(ctx: &ServerCtx) -> Json {
    let (queued, running) = ctx.table.load();
    let jobs = Json::Obj(
        ctx.table
            .state_counts()
            .iter()
            .map(|(state, n)| (state.as_str().to_string(), Json::Int(*n as i128)))
            .collect(),
    );
    let server = Json::obj([
        ("lazylocks_server_queue_depth", Json::Int(queued as i128)),
        ("lazylocks_server_running_jobs", Json::Int(running as i128)),
        ("lazylocks_server_jobs", jobs),
        (
            "lazylocks_server_workers",
            Json::Int(ctx.config.workers.max(1) as i128),
        ),
        (
            "lazylocks_server_uptime_ticks",
            Json::Int(ctx.started.elapsed().as_secs() as i128),
        ),
        (
            "lazylocks_server_draining",
            Json::Int(i128::from(u8::from(ctx.shutdown.load(Ordering::SeqCst)))),
        ),
    ]);
    let mut merged = ctx.table.metrics_snapshot();
    if let Some(daemon) = ctx.metrics.snapshot() {
        merged.merge(&daemon);
    }
    let mut body = Json::parse(&merged.to_json_string())
        .expect("metrics snapshot JSON is well-formed by construction");
    if let Json::Obj(pairs) = &mut body {
        pairs.push(("server".to_string(), server));
    }
    body
}

fn error_body(message: &str) -> Json {
    Json::obj([("error", Json::Str(message.to_string()))])
}

/// Enforces `--token`: every mutating (non-`GET`) request must carry
/// `Authorization: Bearer <token>`. Returns the 401 response to send,
/// or `None` when the request may proceed. Reads stay open — health
/// probes and dashboards work without the secret.
fn check_auth(request: &Request, ctx: &ServerCtx) -> Option<(u16, Json)> {
    let token = ctx.config.token.as_deref()?;
    if request.method == "GET" {
        return None;
    }
    let presented = request
        .headers
        .iter()
        .find(|(name, _)| name == "authorization")
        .map(|(_, value)| value.trim());
    if presented == Some(format!("Bearer {token}").as_str()) {
        return None;
    }
    Some((
        401,
        error_body("this server requires Authorization: Bearer <token> on mutating requests"),
    ))
}

/// Maps a parsed request to a `(status, body)` pair.
fn route(request: &Request, ctx: &ServerCtx) -> (u16, Json) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            // Stable fields (configuration-derived, never change while the
            // daemon runs) first; the moving parts live under "live" so
            // scrub-style consumers can drop that one subtree.
            let (queued, running) = ctx.table.load();
            let jobs = Json::Obj(
                ctx.table
                    .state_counts()
                    .iter()
                    .map(|(state, n)| (state.as_str().to_string(), Json::Int(*n as i128)))
                    .collect(),
            );
            (
                200,
                Json::obj([
                    ("status", Json::Str("ok".to_string())),
                    ("workers", Json::Int(ctx.config.workers.max(1) as i128)),
                    ("draining", Json::Bool(ctx.shutdown.load(Ordering::SeqCst))),
                    (
                        "live",
                        Json::obj([
                            ("queue_depth", Json::Int(queued as i128)),
                            ("running", Json::Int(running as i128)),
                            ("jobs", jobs),
                            (
                                "uptime_ticks",
                                Json::Int(ctx.started.elapsed().as_secs() as i128),
                            ),
                        ]),
                    ),
                ]),
            )
        }
        ("GET", ["strategies"]) => (
            200,
            Json::obj([
                (
                    "strategies",
                    Json::Arr(
                        ctx.registry
                            .entries()
                            .into_iter()
                            .map(|(name, help)| {
                                Json::obj([
                                    ("name", Json::Str(name)),
                                    ("help", Json::Str(help.to_string())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "aliases",
                    Json::Arr(
                        ctx.registry
                            .alias_table()
                            .into_iter()
                            .map(|(alias, target)| {
                                Json::obj([
                                    ("alias", Json::Str(alias)),
                                    ("target", Json::Str(target)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        // Only the `format=json` variant reaches the router; plain text
        // is served on the connection fast-path above.
        ("GET", ["metrics"]) => (200, metrics_json_body(ctx)),
        ("POST", ["jobs"]) => submit_job(request, ctx),
        ("GET", ["jobs"]) => (200, ctx.table.list()),
        ("GET", ["jobs", id]) => match parse_id(id) {
            Some(id) => match ctx.table.detail(id) {
                Some(detail) => (200, detail),
                None => (404, error_body(&format!("no job {id}"))),
            },
            None => (400, error_body(&format!("bad job id {id:?}"))),
        },
        ("DELETE", ["jobs", id]) => match parse_id(id) {
            Some(id) => match ctx.table.cancel(id) {
                Some(state) => (
                    200,
                    Json::obj([
                        ("id", Json::Int(id as i128)),
                        ("state", Json::Str(state.as_str().to_string())),
                    ]),
                ),
                None => (404, error_body(&format!("no job {id}"))),
            },
            None => (400, error_body(&format!("bad job id {id:?}"))),
        },
        ("GET", ["jobs", id, "profile"]) => match parse_id(id) {
            Some(id) => match ctx.table.profile(id) {
                Some(profile) => (200, profile),
                None => (404, error_body(&format!("no job {id}"))),
            },
            None => (400, error_body(&format!("bad job id {id:?}"))),
        },
        ("GET", ["jobs", id, "events"]) => match parse_id(id) {
            Some(id) => {
                let since = request.query_u64("since").unwrap_or(0);
                match ctx.table.events_since(id, since) {
                    Some(events) => (200, events),
                    None => (404, error_body(&format!("no job {id}"))),
                }
            }
            None => (400, error_body(&format!("bad job id {id:?}"))),
        },
        ("POST", ["shutdown"]) => {
            let (queued, running) = ctx.table.load();
            ctx.shutdown.store(true, Ordering::SeqCst);
            (
                200,
                Json::obj([
                    ("status", Json::Str("draining".to_string())),
                    ("queued", Json::Int(queued as i128)),
                    ("running", Json::Int(running as i128)),
                ]),
            )
        }
        ("POST", ["leases", "claim"]) => match &ctx.leases {
            Some(leases) => {
                let body = match request.body_json() {
                    Ok(body) => body,
                    Err(e) => return (e.status().0, error_body(&e.message())),
                };
                let Some(worker) = body.get("worker").and_then(Json::as_str) else {
                    return (400, error_body("claim body needs a \"worker\" name"));
                };
                let grant = leases.claim(worker).unwrap_or(Json::Null);
                (200, Json::obj([("lease", grant)]))
            }
            None => (
                404,
                error_body("distributed mode is off (serve --distributed)"),
            ),
        },
        ("POST", ["leases", id, "renew"]) => match (&ctx.leases, parse_id(id)) {
            (Some(leases), Some(id)) => {
                let body = match request.body_json() {
                    Ok(body) => body,
                    Err(e) => return (e.status().0, error_body(&e.message())),
                };
                let worker = body.get("worker").and_then(Json::as_str).unwrap_or("");
                let epoch = body.get("epoch").and_then(Json::as_u64).unwrap_or(0);
                match leases.renew(id, worker, epoch) {
                    Ok(epoch) => (
                        200,
                        Json::obj([
                            ("lease", Json::Int(id as i128)),
                            ("epoch", Json::Int(epoch as i128)),
                        ]),
                    ),
                    Err(e) => (409, error_body(&e)),
                }
            }
            (None, _) => (
                404,
                error_body("distributed mode is off (serve --distributed)"),
            ),
            (_, None) => (400, error_body(&format!("bad lease id {id:?}"))),
        },
        ("POST", ["leases", id, "result"]) => match (&ctx.leases, parse_id(id)) {
            (Some(leases), Some(id)) => {
                let body = match request.body_json() {
                    Ok(body) => body,
                    Err(e) => return (e.status().0, error_body(&e.message())),
                };
                let epoch = body.get("epoch").and_then(Json::as_u64).unwrap_or(0);
                leases.submit_result(id, epoch, body)
            }
            (None, _) => (
                404,
                error_body("distributed mode is off (serve --distributed)"),
            ),
            (_, None) => (400, error_body(&format!("bad lease id {id:?}"))),
        },
        (_, ["healthz" | "strategies" | "shutdown" | "metrics"])
        | (_, ["jobs", ..])
        | (_, ["leases", ..]) => (405, error_body("method not allowed")),
        _ => (404, error_body(&format!("no route for {}", request.path))),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// `POST /jobs`: decode, validate, bound, enqueue.
fn submit_job(request: &Request, ctx: &ServerCtx) -> (u16, Json) {
    if ctx.shutdown.load(Ordering::SeqCst) {
        return (503, error_body("shutting down"));
    }
    let body = match request.body_json() {
        Ok(body) => body,
        Err(e) => return (e.status().0, error_body(&e.message())),
    };
    let job = match JobRequest::from_json(&body) {
        Ok(job) => job,
        Err(e) => return (400, error_body(&e)),
    };
    if job.limit > ctx.config.max_job_budget {
        return (
            400,
            error_body(&format!(
                "limit {} exceeds the server's --max-job-budget {}",
                job.limit, ctx.config.max_job_budget
            )),
        );
    }
    // Validate the spec and the program at the door, so every accepted
    // job can actually run.
    if let Err(e) = ctx.registry.create(&job.spec) {
        return (400, error_body(&format!("spec: {e}")));
    }
    let program = match Program::parse(&job.program_source) {
        Ok(program) => program,
        Err(e) => return (400, error_body(&format!("program: {e}"))),
    };
    match ctx.table.submit(job, program.name().to_string()) {
        Some(id) => (
            201,
            Json::obj([
                ("id", Json::Int(id as i128)),
                ("state", Json::Str("queued".to_string())),
            ]),
        ),
        None => (503, error_body("shutting down")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(config: ServerConfig) -> ServerCtx {
        let leases = config.distributed.then(|| {
            Arc::new(LeaseTable::new(
                LeaseConfig::default(),
                MetricsHandle::enabled(),
                None,
            ))
        });
        ServerCtx {
            table: Arc::new(JobTable::default()),
            registry: StrategyRegistry::default(),
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            metrics: MetricsHandle::enabled(),
            leases,
        }
    }

    fn request(method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: Vec::new(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn token_gates_mutating_routes_but_not_reads() {
        let ctx = ctx(ServerConfig {
            token: Some("s3cret".to_string()),
            ..ServerConfig::default()
        });
        // Mutations without (or with the wrong) secret: 401.
        let denied = check_auth(&request("POST", "/jobs", &[], "{}"), &ctx);
        assert_eq!(denied.map(|(status, _)| status), Some(401));
        let denied = check_auth(
            &request("POST", "/jobs", &[("authorization", "Bearer wrong")], "{}"),
            &ctx,
        );
        assert_eq!(denied.map(|(status, _)| status), Some(401));
        let denied = check_auth(&request("DELETE", "/jobs/1", &[], ""), &ctx);
        assert_eq!(denied.map(|(status, _)| status), Some(401));
        // The right secret passes; reads never need one.
        assert!(check_auth(
            &request("POST", "/jobs", &[("authorization", "Bearer s3cret")], "{}"),
            &ctx
        )
        .is_none());
        assert!(check_auth(&request("GET", "/healthz", &[], ""), &ctx).is_none());
        assert!(check_auth(&request("GET", "/jobs", &[], ""), &ctx).is_none());
    }

    #[test]
    fn without_a_token_everything_is_open() {
        let ctx = ctx(ServerConfig::default());
        assert!(check_auth(&request("POST", "/jobs", &[], "{}"), &ctx).is_none());
        assert!(check_auth(&request("POST", "/shutdown", &[], ""), &ctx).is_none());
    }

    #[test]
    fn lease_routes_404_unless_distributed() {
        let off = ctx(ServerConfig::default());
        let claim = request("POST", "/leases/claim", &[], "{\"worker\": \"w\"}");
        let (status, body) = route(&claim, &off);
        assert_eq!(status, 404);
        assert!(body
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("distributed"));

        let on = ctx(ServerConfig {
            distributed: true,
            ..ServerConfig::default()
        });
        // Nothing offered yet: a claim succeeds with a null grant.
        let (status, body) = route(&claim, &on);
        assert_eq!(status, 200);
        assert!(matches!(body.get("lease"), Some(Json::Null)));
        // Epoch fencing reaches the wire: an unknown lease's result 409s.
        let (status, _) = route(
            &request("POST", "/leases/9/result", &[], "{\"epoch\": 1}"),
            &on,
        );
        assert_eq!(status, 409);
        // And a GET on a lease route is a method error, not a missing route.
        let (status, _) = route(&request("GET", "/leases/claim", &[], ""), &on);
        assert_eq!(status, 405);
    }
}
