//! Job queue, job state machine and the worker loop.
//!
//! A *job* is one exploration request: a `.llk` program, a strategy
//! spec, and a budget. Jobs move `Queued → Running → Done / Cancelled /
//! Failed`; queued jobs wait in a priority-then-FIFO queue consumed by a
//! fixed pool of worker threads, each of which runs the shared
//! [`lazylocks_trace::drive`] entry point with a per-job
//! [`CancelToken`]. Progress ticks and streamed bugs land in a per-job
//! append-only event log that clients poll with
//! `GET /jobs/<id>/events?since=N` — no long-lived connections, no
//! server-sent push, nothing to leak.
//!
//! All shared state lives behind one mutex in [`JobTable`]; a condvar
//! wakes workers when a job arrives and when shutdown begins. Workers
//! drain the queue before exiting, so joining them *is* the drain
//! barrier.

use crate::journal::Journal;
use lazylocks::{
    BugReport, CancelToken, ExploreConfig, MetricsHandle, Observer, ProfileHandle, Progress,
};
use lazylocks_model::Program;
use lazylocks_trace::{
    bug_kind_to_json, drive, outcome_json, CorpusStore, DriveRequest, Json, ProfileDoc,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A job submission, decoded from the `POST /jobs` body.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The guest program, `.llk` text format.
    pub program_source: String,
    /// Registry strategy spec (`dpor`, `dpor(sleep=true)`, …).
    pub spec: String,
    /// Schedule budget.
    pub limit: usize,
    /// Seed for randomized strategies; also stamps persisted artifacts.
    pub seed: u64,
    /// CHESS-style preemption bound.
    pub preemptions: Option<u32>,
    /// Stop the exploration at the first bug.
    pub stop_on_bug: bool,
    /// Wall-clock deadline for the run, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Minimise reported schedules and persisted artifacts.
    pub minimize: bool,
    /// Scheduling priority: higher runs first, ties run in FIFO order.
    pub priority: i64,
    /// How often this job emits progress events, in complete schedules.
    pub progress_interval: usize,
}

impl JobRequest {
    /// Decodes a submission from its JSON body. Only `program` is
    /// required; everything else has the CLI `run` defaults.
    pub fn from_json(v: &Json) -> Result<JobRequest, String> {
        let obj = match v {
            Json::Obj(_) => v,
            _ => return Err("job must be a JSON object".to_string()),
        };
        let str_field = |key: &str| -> Result<Option<String>, String> {
            match obj.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(format!("{key:?} must be a string")),
            }
        };
        let u64_field = |key: &str| -> Result<Option<u64>, String> {
            match obj.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(other) => other
                    .as_u64()
                    .map(Some)
                    .ok_or(format!("{key:?} must be a non-negative integer")),
            }
        };
        let bool_field = |key: &str| -> Result<bool, String> {
            match obj.get(key) {
                None | Some(Json::Null) => Ok(false),
                Some(other) => other.as_bool().ok_or(format!("{key:?} must be a boolean")),
            }
        };
        let program_source =
            str_field("program")?.ok_or("missing required field \"program\" (.llk source text)")?;
        let priority = match obj.get("priority") {
            None | Some(Json::Null) => 0,
            Some(other) => other.as_i64().ok_or("\"priority\" must be an integer")?,
        };
        let progress_interval = match u64_field("progress_interval")? {
            Some(0) => return Err("\"progress_interval\" must be at least 1".to_string()),
            Some(n) => n as usize,
            None => DEFAULT_PROGRESS_INTERVAL,
        };
        Ok(JobRequest {
            program_source,
            spec: str_field("spec")?.unwrap_or_else(|| "dpor(sleep=true)".to_string()),
            limit: u64_field("limit")?.unwrap_or(100_000) as usize,
            seed: u64_field("seed")?.unwrap_or(0),
            preemptions: u64_field("preemptions")?.map(|v| v as u32),
            stop_on_bug: bool_field("stop_on_bug")?,
            deadline_ms: u64_field("deadline_ms")?,
            minimize: bool_field("minimize")?,
            priority,
            progress_interval,
        })
    }

    /// Encodes the request so [`from_json`](JobRequest::from_json) decodes
    /// it back exactly — the journal's `submit` payload.
    pub fn to_json(&self) -> Json {
        let opt_u64 = |v: Option<u64>| v.map(|v| Json::Int(i128::from(v))).unwrap_or(Json::Null);
        Json::obj([
            ("program", Json::Str(self.program_source.clone())),
            ("spec", Json::Str(self.spec.clone())),
            ("limit", Json::Int(self.limit as i128)),
            ("seed", Json::Int(i128::from(self.seed))),
            ("preemptions", opt_u64(self.preemptions.map(u64::from))),
            ("stop_on_bug", Json::Bool(self.stop_on_bug)),
            ("deadline_ms", opt_u64(self.deadline_ms)),
            ("minimize", Json::Bool(self.minimize)),
            ("priority", Json::Int(i128::from(self.priority))),
            (
                "progress_interval",
                Json::Int(self.progress_interval as i128),
            ),
        ])
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is exploring.
    Running,
    /// The exploration finished (any verdict, including limit-hit).
    Done,
    /// Cancelled via `DELETE /jobs/<id>` — before or during the run.
    Cancelled,
    /// The run itself failed (spec rejected, program no longer parses).
    Failed,
}

impl JobState {
    /// The wire name of this state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// `true` once the job can no longer change.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// One job's full record.
struct Job {
    id: u64,
    request: JobRequest,
    program_name: String,
    state: JobState,
    /// Shared with the running exploration; `DELETE` cancels through it.
    cancel: CancelToken,
    /// Set by `DELETE` so the terminal state distinguishes an operator
    /// cancellation from a deadline (both cancel the token).
    cancel_requested: bool,
    /// The job's live metrics sink — enabled for every job, so
    /// `GET /metrics` can aggregate across queued, running and finished
    /// jobs alike.
    metrics: MetricsHandle,
    /// The job's exploration profiler — also always on, so
    /// `GET /jobs/<id>/profile` serves attribution for every finished
    /// job without resubmission.
    profile: ProfileHandle,
    /// Append-only, seq-stamped event log.
    events: Vec<Json>,
    /// The scrubbed outcome document, present once `Done` or `Cancelled`
    /// mid-run (partial stats).
    result: Option<Json>,
    /// Present once `Failed`.
    error: Option<String>,
}

impl Job {
    fn push_event(&mut self, kind: &str, fields: Vec<(&'static str, Json)>) {
        let mut pairs = vec![
            ("seq".to_string(), Json::Int(self.events.len() as i128)),
            ("type".to_string(), Json::Str(kind.to_string())),
        ];
        pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        self.events.push(Json::Obj(pairs));
    }

    fn summary_json(&self) -> Json {
        Json::obj([
            ("id", Json::Int(self.id as i128)),
            ("program", Json::Str(self.program_name.clone())),
            ("spec", Json::Str(self.request.spec.clone())),
            ("state", Json::Str(self.state.as_str().to_string())),
            ("priority", Json::Int(self.request.priority as i128)),
            ("events", Json::Int(self.events.len() as i128)),
        ])
    }

    fn detail_json(&self) -> Json {
        Json::obj([
            ("id", Json::Int(self.id as i128)),
            ("program", Json::Str(self.program_name.clone())),
            ("spec", Json::Str(self.request.spec.clone())),
            ("state", Json::Str(self.state.as_str().to_string())),
            ("priority", Json::Int(self.request.priority as i128)),
            ("events", Json::Int(self.events.len() as i128)),
            ("result", self.result.clone().unwrap_or(Json::Null)),
            (
                "error",
                self.error.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
        ])
    }
}

#[derive(Default)]
struct Tables {
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    /// Ids of queued jobs, submission order.
    queue: Vec<u64>,
    /// Jobs currently held by a worker.
    running: usize,
    shutting_down: bool,
}

/// The daemon's shared job state: registry of all jobs plus the pending
/// queue, behind one mutex; `ready` wakes workers.
pub struct JobTable {
    inner: Mutex<Tables>,
    ready: Condvar,
    /// When present, every lifecycle transition is appended (and fsynced)
    /// before it is acknowledged, so a crashed daemon recovers its queue.
    journal: Option<Arc<Journal>>,
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable {
            inner: Mutex::new(Tables::default()),
            ready: Condvar::new(),
            journal: None,
        }
    }
}

impl JobTable {
    /// A table whose lifecycle transitions are journalled durably.
    pub fn with_journal(journal: Arc<Journal>) -> JobTable {
        JobTable {
            journal: Some(journal),
            ..JobTable::default()
        }
    }

    /// Appends a journal record; append failures are reported (the job
    /// still runs — losing durability must not lose availability).
    fn journal_append(&self, record: &Json) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(record) {
                eprintln!(
                    "warning: journal append to {} failed: {e}",
                    journal.path().display()
                );
            }
        }
    }

    /// Re-enqueues the jobs a journal replay recovered, keeping their
    /// original ids; returns how many were restored. Call before workers
    /// start consuming the queue.
    pub fn restore(&self, replay: crate::journal::JournalReplay) -> usize {
        let mut t = self.inner.lock().unwrap();
        t.next_id = t.next_id.max(replay.next_id);
        let mut restored = 0;
        for recovered in replay.jobs {
            let id = recovered.id;
            if t.jobs.contains_key(&id) {
                continue;
            }
            let mut job = Job {
                id,
                request: recovered.request,
                program_name: recovered.program_name,
                state: JobState::Queued,
                cancel: CancelToken::new(),
                cancel_requested: false,
                metrics: MetricsHandle::enabled(),
                profile: ProfileHandle::enabled(),
                events: Vec::new(),
                result: None,
                error: None,
            };
            job.push_event("recovered", vec![]);
            t.jobs.insert(id, job);
            t.queue.push(id);
            restored += 1;
        }
        if restored > 0 {
            self.ready.notify_all();
        }
        restored
    }

    /// Accepts a new job; returns its id, or `None` when draining.
    pub fn submit(&self, request: JobRequest, program_name: String) -> Option<u64> {
        let mut t = self.inner.lock().unwrap();
        if t.shutting_down {
            return None;
        }
        t.next_id += 1;
        let id = t.next_id;
        self.journal_append(&crate::journal::submit_record(id, &request, &program_name));
        let mut job = Job {
            id,
            request,
            program_name,
            state: JobState::Queued,
            cancel: CancelToken::new(),
            cancel_requested: false,
            metrics: MetricsHandle::enabled(),
            profile: ProfileHandle::enabled(),
            events: Vec::new(),
            result: None,
            error: None,
        };
        job.push_event("queued", vec![]);
        t.jobs.insert(id, job);
        t.queue.push(id);
        self.ready.notify_one();
        Some(id)
    }

    /// Worker side: blocks until a job is available (highest priority,
    /// then FIFO) or shutdown has drained the queue; `None` means exit.
    pub fn next_job(&self) -> Option<(u64, JobRequest, CancelToken, MetricsHandle, ProfileHandle)> {
        let mut t = self.inner.lock().unwrap();
        loop {
            if let Some(pos) = best_queued(&t) {
                let id = t.queue.remove(pos);
                t.running += 1;
                self.journal_append(&crate::journal::start_record(id));
                let job = t.jobs.get_mut(&id).expect("queued job exists");
                job.state = JobState::Running;
                job.push_event("running", vec![]);
                return Some((
                    id,
                    job.request.clone(),
                    job.cancel.clone(),
                    job.metrics.clone(),
                    job.profile.clone(),
                ));
            }
            if t.shutting_down {
                return None;
            }
            t = self.ready.wait(t).unwrap();
        }
    }

    /// Worker side: records the outcome and moves the job to its terminal
    /// state.
    pub fn finish(&self, id: u64, outcome: Result<Json, String>) {
        let mut t = self.inner.lock().unwrap();
        t.running -= 1;
        let Some(job) = t.jobs.get_mut(&id) else {
            return;
        };
        match outcome {
            Ok(result) => {
                job.state = if job.cancel_requested {
                    JobState::Cancelled
                } else {
                    JobState::Done
                };
                job.result = Some(result);
            }
            Err(error) => {
                job.state = if job.cancel_requested {
                    JobState::Cancelled
                } else {
                    JobState::Failed
                };
                job.error = Some(error);
            }
        }
        let state = job.state;
        job.push_event(
            "done",
            vec![("state", Json::Str(state.as_str().to_string()))],
        );
        self.journal_append(&crate::journal::done_record(id, state));
        // Shutdown joins workers; nothing waits on a per-job condvar.
    }

    /// `DELETE /jobs/<id>`: cooperative cancellation. A queued job is
    /// cancelled on the spot; a running one gets its token cancelled and
    /// transitions when the worker notices. Returns the state after the
    /// call, or `None` for an unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut t = self.inner.lock().unwrap();
        let pos = t.queue.iter().position(|&q| q == id);
        let job = t.jobs.get_mut(&id)?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.cancel_requested = true;
                job.push_event("done", vec![("state", Json::Str("cancelled".to_string()))]);
                if let Some(pos) = pos {
                    t.queue.remove(pos);
                }
                self.journal_append(&crate::journal::cancel_record(id));
                Some(JobState::Cancelled)
            }
            JobState::Running => {
                job.cancel_requested = true;
                job.cancel.cancel();
                // Journalled now as well as at finish: if the daemon dies
                // before the worker notices, the restart honours the
                // cancellation instead of re-running the job.
                self.journal_append(&crate::journal::cancel_record(id));
                Some(JobState::Running)
            }
            terminal => Some(terminal),
        }
    }

    /// `GET /jobs/<id>`.
    pub fn detail(&self, id: u64) -> Option<Json> {
        let t = self.inner.lock().unwrap();
        t.jobs.get(&id).map(Job::detail_json)
    }

    /// `GET /jobs`.
    pub fn list(&self) -> Json {
        let t = self.inner.lock().unwrap();
        Json::obj([(
            "jobs",
            Json::Arr(t.jobs.values().map(Job::summary_json).collect()),
        )])
    }

    /// `GET /jobs/<id>/profile`: the job's exploration-profile document,
    /// extracted from the result. `None` for an unknown id; a known job
    /// that has not finished (or failed before exploring) answers with a
    /// `null` profile and its current state.
    pub fn profile(&self, id: u64) -> Option<Json> {
        let t = self.inner.lock().unwrap();
        let job = t.jobs.get(&id)?;
        let profile = job
            .result
            .as_ref()
            .and_then(|r| r.get("profile"))
            .cloned()
            .unwrap_or(Json::Null);
        Some(Json::obj([
            ("id", Json::Int(id as i128)),
            ("state", Json::Str(job.state.as_str().to_string())),
            ("profile", profile),
        ]))
    }

    /// `GET /jobs/<id>/events?since=N`: the events with `seq >= since`,
    /// plus the cursor to poll from next.
    pub fn events_since(&self, id: u64, since: u64) -> Option<Json> {
        let t = self.inner.lock().unwrap();
        let job = t.jobs.get(&id)?;
        let from = (since as usize).min(job.events.len());
        Some(Json::obj([
            ("id", Json::Int(id as i128)),
            ("state", Json::Str(job.state.as_str().to_string())),
            ("events", Json::Arr(job.events[from..].to_vec())),
            ("next", Json::Int(job.events.len() as i128)),
        ]))
    }

    /// Observer side: appends a progress or bug event to a running job.
    /// Also used by the distributed lease coordinator to stream slice
    /// boundaries and remotely-found bugs into the same event log.
    pub(crate) fn push_job_event(&self, id: u64, kind: &str, fields: Vec<(&'static str, Json)>) {
        let mut t = self.inner.lock().unwrap();
        if let Some(job) = t.jobs.get_mut(&id) {
            job.push_event(kind, fields);
        }
    }

    /// Starts the drain: no new submissions, workers exit once the queue
    /// is empty. Returns `(queued, running)` at the moment of the call.
    pub fn begin_shutdown(&self) -> (usize, usize) {
        let mut t = self.inner.lock().unwrap();
        t.shutting_down = true;
        self.ready.notify_all();
        (t.queue.len(), t.running)
    }

    /// `(queued, running)` right now — the health snapshot.
    pub fn load(&self) -> (usize, usize) {
        let t = self.inner.lock().unwrap();
        (t.queue.len(), t.running)
    }

    /// Job counts per lifecycle state, for `/healthz` and `/metrics`.
    pub fn state_counts(&self) -> [(JobState, usize); 5] {
        let t = self.inner.lock().unwrap();
        let mut counts = [
            (JobState::Queued, 0),
            (JobState::Running, 0),
            (JobState::Done, 0),
            (JobState::Cancelled, 0),
            (JobState::Failed, 0),
        ];
        for job in t.jobs.values() {
            for (state, n) in &mut counts {
                if job.state == *state {
                    *n += 1;
                }
            }
        }
        counts
    }

    /// The union of every job's metrics — counters and histograms summed,
    /// gauges maxed — for the server-wide `GET /metrics` exposition.
    /// Running jobs contribute their live (so far) values.
    pub fn metrics_snapshot(&self) -> lazylocks::MetricsSnapshot {
        let t = self.inner.lock().unwrap();
        let mut merged = lazylocks::MetricsSnapshot::default();
        for job in t.jobs.values() {
            if let Some(snap) = job.metrics.snapshot() {
                merged.merge(&snap);
            }
        }
        merged
    }
}

/// The queue position of the next job to run: highest priority first,
/// FIFO within a priority.
fn best_queued(t: &Tables) -> Option<usize> {
    let mut best: Option<(usize, i64, u64)> = None;
    for (pos, &id) in t.queue.iter().enumerate() {
        let priority = t.jobs[&id].request.priority;
        let better = match best {
            None => true,
            Some((_, bp, bid)) => priority > bp || (priority == bp && id < bid),
        };
        if better {
            best = Some((pos, priority, id));
        }
    }
    best.map(|(pos, _, _)| pos)
}

/// Bridges a running exploration's observer callbacks into the job's
/// event log. Shared across exploration worker threads (parallel
/// strategies), so it only ever touches the table through its mutex.
struct JobObserver {
    table: Arc<JobTable>,
    id: u64,
}

impl Observer for JobObserver {
    fn on_progress(&self, progress: &Progress) {
        self.table.push_job_event(
            self.id,
            "progress",
            vec![
                ("schedules", Json::Int(progress.schedules as i128)),
                ("events", Json::Int(i128::from(progress.events))),
                ("unique_states", Json::Int(progress.unique_states as i128)),
                ("bugs", Json::Int(progress.bugs as i128)),
            ],
        );
    }

    fn on_bug(&self, bug: &BugReport) {
        self.table.push_job_event(
            self.id,
            "bug",
            vec![
                ("kind", bug_kind_to_json(&bug.kind)),
                ("trace_len", Json::Int(bug.trace_len as i128)),
                ("schedule_len", Json::Int(bug.schedule.len() as i128)),
            ],
        );
    }
}

/// The default progress-event cadence, in complete schedules — frequent
/// enough that a few-second job streams visibly, rare enough that the
/// event log stays small under a 100k-schedule budget. Overridable per
/// job via the `progress_interval` submission field.
pub const DEFAULT_PROGRESS_INTERVAL: usize = 1024;

/// One worker thread: claim, explore, record, repeat — until shutdown
/// drains the queue.
///
/// With `leases` present (`serve --distributed`) the job is not explored
/// here: it is coordinated through the lease chain instead, so external
/// worker processes (or the in-process grace fallback) do the exploring.
/// Distributed result documents omit the per-job metrics/profile embeds —
/// those are process-local and cannot be reconstructed across a split.
pub fn run_worker(
    table: Arc<JobTable>,
    corpus_dir: Option<PathBuf>,
    leases: Option<Arc<crate::lease::LeaseTable>>,
) {
    while let Some((id, request, cancel, metrics, profile)) = table.next_job() {
        let outcome = match &leases {
            Some(leases) => crate::lease::execute_distributed(
                &table,
                leases,
                id,
                &request,
                cancel,
                corpus_dir.as_deref(),
            ),
            None => execute(
                &table,
                id,
                &request,
                cancel,
                metrics,
                profile,
                corpus_dir.as_deref(),
            ),
        };
        table.finish(id, outcome);
    }
}

/// Runs one job through the shared [`drive`] entry point.
fn execute(
    table: &Arc<JobTable>,
    id: u64,
    request: &JobRequest,
    cancel: CancelToken,
    metrics: MetricsHandle,
    profile: ProfileHandle,
    corpus_dir: Option<&std::path::Path>,
) -> Result<Json, String> {
    // Submission already validated the source, so a failure here means
    // the daemon itself is broken — still reported, never a panic.
    let program = Program::parse(&request.program_source).map_err(|e| format!("program: {e}"))?;
    let mut config = ExploreConfig::with_limit(request.limit)
        .seeded(request.seed)
        .with_metrics(metrics.clone())
        .with_profile(profile.clone());
    config.preemption_bound = request.preemptions;
    config.stop_on_bug = request.stop_on_bug;

    let mut drive_request = DriveRequest::new(&program, &request.spec)
        .with_config(config)
        .progress_every(request.progress_interval)
        .minimizing(request.minimize)
        .cancel_with(cancel)
        .observe(Arc::new(JobObserver {
            table: table.clone(),
            id,
        }));
    if let Some(ms) = request.deadline_ms {
        drive_request = drive_request.deadline(Duration::from_millis(ms));
    }
    if let Some(dir) = corpus_dir {
        let store = CorpusStore::open(dir)
            .map_err(|e| format!("cannot open corpus {}: {e}", dir.display()))?;
        drive_request = drive_request.saving_into(store);
    }

    let result = drive(drive_request).map_err(|e| e.to_string())?;
    let mut doc = outcome_json(
        program.name(),
        &request.spec,
        &result.outcome,
        &result.bugs,
        request.minimize,
        &result.trace_paths(),
    );
    if !result.trace_errors.is_empty() {
        if let Json::Obj(pairs) = &mut doc {
            pairs.push((
                "trace_errors".to_string(),
                Json::Arr(result.trace_errors.iter().cloned().map(Json::Str).collect()),
            ));
        }
    }
    if let Some(snapshot) = metrics.snapshot() {
        // The raw (wall-clock-bearing) snapshot goes to the event log for
        // humans; the result document embeds the scrubbed copy so
        // identical submissions stay byte-identical.
        if let Ok(raw) = Json::parse(&snapshot.to_json_string()) {
            table.push_job_event(id, "metrics", vec![("snapshot", raw)]);
        }
        if let Json::Obj(pairs) = &mut doc {
            if let Ok(scrubbed) = Json::parse(&snapshot.scrubbed().to_json_string()) {
                pairs.push(("metrics".to_string(), scrubbed));
            }
        }
    }
    if let Some(snapshot) = profile.snapshot() {
        // Scrubbed for the same reason as the metrics: identical
        // submissions must produce byte-identical result documents.
        let profile_doc = ProfileDoc::new(&program, &request.spec, &snapshot.scrubbed());
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("profile".to_string(), profile_doc.to_json()));
        }
    }
    Ok(scrubbed_result(doc))
}

/// Zeroes every `wall_time_us` field in `doc`, recursively, so identical
/// submissions produce byte-identical result documents (artifact paths
/// are already stable: the corpus keys files by program fingerprint).
pub fn scrubbed_result(mut doc: Json) -> Json {
    fn scrub(v: &mut Json) {
        match v {
            Json::Obj(pairs) => {
                for (key, value) in pairs {
                    if key == "wall_time_us" {
                        *value = Json::Int(0);
                    } else {
                        scrub(value);
                    }
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(scrub),
            _ => {}
        }
    }
    scrub(&mut doc);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABBA: &str = "\
program deadlock
mutex a
mutex b
thread T1 {
  lock a
  lock b
  unlock b
  unlock a
}
thread T2 {
  lock b
  lock a
  unlock a
  unlock b
}
";

    fn request(priority: i64) -> JobRequest {
        JobRequest {
            program_source: ABBA.to_string(),
            spec: "dpor".to_string(),
            limit: 10_000,
            seed: 0,
            preemptions: None,
            stop_on_bug: false,
            deadline_ms: None,
            minimize: false,
            priority,
            progress_interval: DEFAULT_PROGRESS_INTERVAL,
        }
    }

    #[test]
    fn from_json_defaults_and_rejections() {
        let v = Json::parse(r#"{"program": "program p\n"}"#).unwrap();
        let r = JobRequest::from_json(&v).unwrap();
        assert_eq!(r.spec, "dpor(sleep=true)");
        assert_eq!(r.limit, 100_000);
        assert!(!r.stop_on_bug);
        assert_eq!(r.priority, 0);
        assert_eq!(r.progress_interval, DEFAULT_PROGRESS_INTERVAL);

        let v = Json::parse(r#"{"program": "p", "progress_interval": 16}"#).unwrap();
        assert_eq!(JobRequest::from_json(&v).unwrap().progress_interval, 16);

        for bad in [
            r#"[1, 2]"#,
            r#"{"spec": "dpor"}"#,
            r#"{"program": 7}"#,
            r#"{"program": "p", "limit": "lots"}"#,
            r#"{"program": "p", "limit": -3}"#,
            r#"{"program": "p", "stop_on_bug": "yes"}"#,
            r#"{"program": "p", "progress_interval": 0}"#,
            r#"{"program": "p", "progress_interval": "fast"}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(JobRequest::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let table = Arc::new(JobTable::default());
        let low1 = table.submit(request(0), "p".into()).unwrap();
        let low2 = table.submit(request(0), "p".into()).unwrap();
        let high = table.submit(request(5), "p".into()).unwrap();
        let order: Vec<u64> = (0..3).map(|_| table.next_job().unwrap().0).collect();
        assert_eq!(order, vec![high, low1, low2]);
    }

    #[test]
    fn cancel_dequeues_a_queued_job_and_flags_a_running_one() {
        let table = Arc::new(JobTable::default());
        let a = table.submit(request(0), "p".into()).unwrap();
        let b = table.submit(request(0), "p".into()).unwrap();
        assert_eq!(table.cancel(b), Some(JobState::Cancelled));
        let (claimed, _, token, _, _) = table.next_job().unwrap();
        assert_eq!(claimed, a);
        assert_eq!(table.cancel(a), Some(JobState::Running));
        assert!(token.is_cancelled());
        table.finish(a, Ok(Json::Null));
        assert_eq!(table.cancel(a), Some(JobState::Cancelled));
        assert!(table.cancel(99).is_none());
    }

    #[test]
    fn worker_runs_a_job_to_done_with_streamed_events() {
        let table = Arc::new(JobTable::default());
        let id = table.submit(request(0), "deadlock".into()).unwrap();
        table.begin_shutdown();
        run_worker(table.clone(), None, None);
        let detail = table.detail(id).unwrap();
        assert_eq!(detail.get("state").unwrap().as_str(), Some("done"));
        let result = detail.get("result").unwrap();
        assert_eq!(result.get("verdict").unwrap().as_str(), Some("bug-found"));
        // Wall time is scrubbed for determinism.
        assert_eq!(
            result
                .get("stats")
                .unwrap()
                .get("wall_time_us")
                .unwrap()
                .as_i64(),
            Some(0)
        );
        let events = table.events_since(id, 0).unwrap();
        let log = events.get("events").unwrap().as_arr().unwrap().to_vec();
        let kinds: Vec<&str> = log
            .iter()
            .map(|e| e.get("type").unwrap().as_str().unwrap())
            .collect();
        assert!(kinds.starts_with(&["queued", "running"]));
        assert_eq!(*kinds.last().unwrap(), "done");
        assert!(kinds.contains(&"bug"), "{kinds:?}");
        // Every job embeds a scrubbed metrics snapshot in its result and
        // streams the raw one through the event log.
        let metrics = result.get("metrics").unwrap();
        assert_eq!(
            metrics.get("format").unwrap().as_str(),
            Some("lazylocks-metrics")
        );
        assert!(kinds.contains(&"metrics"), "{kinds:?}");
        // ...and an exploration-profile document, served standalone by
        // `GET /jobs/<id>/profile`.
        let profile = result.get("profile").unwrap();
        assert_eq!(
            profile.get("format").unwrap().as_str(),
            Some("lazylocks-profile-doc")
        );
        assert_eq!(profile.get("program").unwrap().as_str(), Some("deadlock"));
        let route = table.profile(id).unwrap();
        assert_eq!(route.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(route.get("profile").unwrap(), profile);
        assert!(table.profile(99).is_none());
        // The cursor protocol: polling from `next` returns nothing new.
        let next = events.get("next").unwrap().as_u64().unwrap();
        let tail = table.events_since(id, next).unwrap();
        assert!(tail.get("events").unwrap().as_arr().unwrap().is_empty());
        // The table-wide aggregation sees the finished job's counters.
        let agg = table.metrics_snapshot();
        assert!(agg.value("lazylocks_schedules_total") > 0);
        let counts = table.state_counts();
        assert_eq!(counts[2], (JobState::Done, 1));
    }

    #[test]
    fn journalled_table_recovers_unfinished_jobs_across_a_restart() {
        use crate::journal::{replay_bytes, Journal};
        let dir =
            std::env::temp_dir().join(format!("lazylocks-table-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("journal.jsonl");

        // First daemon lifetime: two jobs, one runs to done, one queued.
        let table = JobTable::with_journal(Arc::new(Journal::open(&path).unwrap()));
        let finished = table.submit(request(0), "deadlock".into()).unwrap();
        let pending = table.submit(request(0), "deadlock".into()).unwrap();
        let (claimed, _, _, _, _) = table.next_job().unwrap();
        assert_eq!(claimed, finished);
        table.finish(finished, Ok(Json::Null));

        // "Crash": drop the table, replay the journal into a fresh one.
        drop(table);
        let replay = replay_bytes(&std::fs::read(&path).unwrap());
        assert!(replay.skipped.is_empty(), "{:?}", replay.skipped);
        let table = JobTable::with_journal(Arc::new(Journal::open(&path).unwrap()));
        assert_eq!(table.restore(replay), 1);
        let (recovered, req, _, _, _) = table.next_job().unwrap();
        assert_eq!(recovered, pending, "original id survives the restart");
        assert_eq!(req.program_source, ABBA);
        // Fresh submissions continue above the recovered id space.
        let next = table.submit(request(0), "deadlock".into()).unwrap();
        assert_eq!(next, pending + 1);
    }

    #[test]
    fn cancelled_jobs_do_not_recover() {
        use crate::journal::{replay_bytes, Journal};
        let dir =
            std::env::temp_dir().join(format!("lazylocks-cancel-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("journal.jsonl");
        let table = JobTable::with_journal(Arc::new(Journal::open(&path).unwrap()));
        let queued = table.submit(request(0), "p".into()).unwrap();
        table.cancel(queued);
        let running = table.submit(request(0), "p".into()).unwrap();
        let (claimed, _, _, _, _) = table.next_job().unwrap();
        assert_eq!(claimed, running);
        table.cancel(running); // daemon dies before the worker notices

        let replay = replay_bytes(&std::fs::read(&path).unwrap());
        assert!(replay.jobs.is_empty(), "{:?}", replay.jobs);
        assert_eq!(replay.next_id, running);
    }

    #[test]
    fn shutdown_refuses_new_jobs_and_drains_the_queue() {
        let table = Arc::new(JobTable::default());
        table.submit(request(0), "p".into()).unwrap();
        table.begin_shutdown();
        assert!(table.submit(request(0), "p".into()).is_none());
        // The queued job is still handed out before workers exit.
        assert!(table.next_job().is_some());
        assert!(table.next_job().is_none());
    }
}
