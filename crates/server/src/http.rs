//! A minimal, hardened HTTP/1.1 layer over `std::io`.
//!
//! The daemon's control plane is tiny — small JSON bodies, one request
//! per connection, `Connection: close` — so a full HTTP implementation
//! would be all liability. What *is* load-bearing is robustness against
//! hostile or broken clients: every read is capped (request line, header
//! line, header count, body size) and carries the socket's read timeout,
//! and every malformed input maps to a structured [`HttpError`] that the
//! daemon renders as a 4xx JSON response. The parser must never panic and
//! never read unboundedly; the tests at the bottom feed it truncated,
//! oversized and garbage inputs to keep that true.
//!
//! The parser is generic over [`BufRead`] so those tests run against
//! in-memory cursors, no sockets involved.

use lazylocks_trace::Json;
use std::io::{BufRead, ErrorKind, Read, Write};
use std::time::Duration;

/// Hard caps applied to every incoming request.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum request body size in bytes (`Content-Length` above this is
    /// rejected with 413 before any body byte is read).
    pub max_body_bytes: usize,
    /// Maximum length of the request line or any single header line.
    pub max_line_bytes: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Socket read timeout (applied by the daemon; a read that times out
    /// surfaces here as [`HttpError::Timeout`]).
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_body_bytes: 1 << 20, // 1 MiB — a .llk program is a few KiB
            max_line_bytes: 8 << 10,
            max_headers: 64,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a request could not be parsed. Each variant maps to one 4xx
/// status; none of them ever aborts the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically malformed request (bad request line, bad header,
    /// bad `Content-Length`, truncated body, non-UTF-8 where text is
    /// required) — 400.
    BadRequest(String),
    /// Declared body larger than [`Limits::max_body_bytes`] — 413.
    PayloadTooLarge(String),
    /// A request or header line exceeded [`Limits::max_line_bytes`], or
    /// there were more than [`Limits::max_headers`] headers — 431.
    HeaderTooLarge(String),
    /// The socket read timed out mid-request — 408.
    Timeout,
    /// The peer closed the connection before sending anything. Not a
    /// protocol error; the daemon just drops the connection silently.
    Closed,
}

impl HttpError {
    /// The HTTP status code and reason phrase for this error.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::PayloadTooLarge(_) => (413, "Payload Too Large"),
            HttpError::HeaderTooLarge(_) => (431, "Request Header Fields Too Large"),
            HttpError::Timeout => (408, "Request Timeout"),
            HttpError::Closed => (400, "Bad Request"),
        }
    }

    /// A human-readable description for the JSON error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m)
            | HttpError::PayloadTooLarge(m)
            | HttpError::HeaderTooLarge(m) => m.clone(),
            HttpError::Timeout => "read timed out".to_string(),
            HttpError::Closed => "connection closed".to_string(),
        }
    }
}

/// A parsed request: method, path split from its query string, lowercased
/// headers, raw body bytes.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// The path with any `?query` stripped.
    pub path: String,
    /// `key=value` pairs from the query string (no percent-decoding; the
    /// API only uses plain numeric parameters like `since=3`).
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// The first query parameter named `key`, parsed as a `u64`.
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    }

    /// The body decoded as UTF-8 JSON, with decode failures mapped to
    /// [`HttpError::BadRequest`].
    pub fn body_json(&self) -> Result<Json, HttpError> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("body is not valid UTF-8".to_string()))?;
        Json::parse(text).map_err(|e| HttpError::BadRequest(format!("body is not valid JSON: {e}")))
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => HttpError::Timeout,
        _ => HttpError::BadRequest(format!("read failed: {e}")),
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes, stripping the
/// terminator (and a preceding `\r`).
fn read_line(reader: &mut impl BufRead, max: usize) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(io_error)?;
    if buf.is_empty() {
        return Err(HttpError::Closed);
    }
    if buf.last() != Some(&b'\n') {
        if buf.len() > max {
            return Err(HttpError::HeaderTooLarge(format!(
                "line exceeds {max} bytes"
            )));
        }
        return Err(HttpError::BadRequest("truncated line".to_string()));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::BadRequest("line is not valid UTF-8".to_string()))
}

/// Reads and validates one full request under `limits`.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    let request_line = read_line(reader, limits.max_line_bytes)?;
    let mut parts = request_line.split_whitespace();
    let (method, raw_path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!("bad method {method:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, limits.max_line_bytes) {
            Ok(line) => line,
            // EOF inside the header block is a truncated request, not a
            // silent close.
            Err(HttpError::Closed) => {
                return Err(HttpError::BadRequest("truncated headers".to_string()))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeaderTooLarge(format!(
                "more than {} headers",
                limits.max_headers
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        let len: usize = v
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {v:?}")))?;
        if len > limits.max_body_bytes {
            return Err(HttpError::PayloadTooLarge(format!(
                "body of {len} bytes exceeds the {}-byte cap",
                limits.max_body_bytes
            )));
        }
        body.resize(len, 0);
        reader.read_exact(&mut body).map_err(|e| match e.kind() {
            ErrorKind::UnexpectedEof => HttpError::BadRequest("truncated body".to_string()),
            _ => io_error(e),
        })?;
    }

    let (path, query_str) = match raw_path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (raw_path, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

/// The reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete `Connection: close` JSON response.
pub fn write_response(w: &mut impl Write, status: u16, body: &Json) -> std::io::Result<()> {
    let payload = body.encode();
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        status_reason(status),
        payload.len(),
    )?;
    w.flush()
}

/// Writes a complete `Connection: close` plain-text response — used by
/// `GET /metrics`, whose Prometheus exposition format is text, not JSON.
pub fn write_text_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    payload: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        status_reason(status),
        payload.len(),
    )?;
    w.flush()
}

/// Reads a response (status code + JSON body) — the client half of the
/// protocol, under the same limits as the server half.
pub fn read_response(reader: &mut impl BufRead, limits: &Limits) -> Result<(u16, Json), HttpError> {
    let status_line = read_line(reader, limits.max_line_bytes)?;
    let mut parts = status_line.split_whitespace();
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed status line {status_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| HttpError::BadRequest(format!("bad status code {code:?}")))?;

    let mut content_length = 0usize;
    loop {
        let line = read_line(reader, limits.max_line_bytes)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::BadRequest(format!("bad Content-Length {:?}", value.trim()))
                })?;
                if content_length > limits.max_body_bytes {
                    return Err(HttpError::PayloadTooLarge(format!(
                        "response body of {content_length} bytes exceeds the cap"
                    )));
                }
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(io_error)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| HttpError::BadRequest("response body is not valid UTF-8".to_string()))?;
    let json = Json::parse(text)
        .map_err(|e| HttpError::BadRequest(format!("response body is not valid JSON: {e}")))?;
    Ok((status, json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(input: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(input.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            b"POST /jobs?since=3&flag HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query_u64("since"), Some(3));
        assert_eq!(req.query_u64("flag"), None);
        assert_eq!(req.body, b"{\"a\":1}");
        assert_eq!(req.body_json().unwrap().get("a").unwrap().as_i64(), Some(1));
        assert_eq!(req.headers[0], ("host".to_string(), "x".to_string()));
    }

    #[test]
    fn bare_lf_lines_are_accepted() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn empty_stream_reports_closed() {
        assert_eq!(parse(b"").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn garbage_request_line_is_bad_request() {
        for garbage in [
            &b"\x00\xffnonsense\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
        ] {
            match parse(garbage) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{garbage:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_requests_are_bad_requests_not_panics() {
        // Cut off mid-headers and mid-body.
        for truncated in [
            &b"GET /x HTTP/1.1"[..],
            b"GET /x HTTP/1.1\r\nHost: x",
            b"GET /x HTTP/1.1\r\nHost: x\r\n",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"a\"",
        ] {
            match parse(truncated) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{truncated:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let mut input = b"GET /".to_vec();
        input.extend(std::iter::repeat_n(b'a', 64 << 10));
        input.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        match parse(&input) {
            Err(HttpError::HeaderTooLarge(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_reading_it() {
        let input = b"POST /jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        match parse(input) {
            Err(HttpError::PayloadTooLarge(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn header_flood_is_rejected() {
        let mut input = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..1000 {
            input.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        input.extend_from_slice(b"\r\n");
        match parse(&input) {
            Err(HttpError::HeaderTooLarge(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_content_length_is_rejected() {
        for bad in ["nope", "-1", "18446744073709551616"] {
            let input = format!("POST /jobs HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            match parse(input.as_bytes()) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{bad} -> {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_json_body_is_a_structured_error() {
        let req = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!").unwrap();
        match req.body_json() {
            Err(HttpError::BadRequest(m)) => assert!(m.contains("JSON"), "{m}"),
            other => panic!("{other:?}"),
        }
        let req = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n\xff\xfe").unwrap();
        match req.body_json() {
            Err(HttpError::BadRequest(m)) => assert!(m.contains("UTF-8"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_map_to_distinct_4xx_statuses() {
        assert_eq!(HttpError::BadRequest(String::new()).status().0, 400);
        assert_eq!(HttpError::PayloadTooLarge(String::new()).status().0, 413);
        assert_eq!(HttpError::HeaderTooLarge(String::new()).status().0, 431);
        assert_eq!(HttpError::Timeout.status().0, 408);
    }

    #[test]
    fn response_round_trips_through_the_client_reader() {
        let body = Json::obj([("ok", Json::Bool(true))]);
        let mut wire = Vec::new();
        write_response(&mut wire, 201, &body).unwrap();
        let (status, parsed) = read_response(&mut Cursor::new(wire), &Limits::default()).unwrap();
        assert_eq!(status, 201);
        assert_eq!(parsed, body);
    }
}
