//! The durable job journal: a JSON-lines write-ahead log of every job
//! lifecycle transition, replayed on daemon startup so a crash (or
//! `kill -9`) never loses accepted work.
//!
//! ## Format
//!
//! One JSON object per line, appended and fsynced before the transition
//! is acknowledged:
//!
//! * `{"op": "submit", "id": N, "program": "...", "job": {...}}` — the
//!   full [`JobRequest`] as accepted by `POST /jobs`;
//! * `{"op": "start", "id": N}` — a worker claimed the job;
//! * `{"op": "cancel", "id": N}` — `DELETE /jobs/<id>`;
//! * `{"op": "done", "id": N, "state": "done" | "cancelled" | "failed"}`.
//!
//! Distributed mode (`serve --distributed`) additionally logs the lease
//! protocol for post-mortem audit:
//!
//! * `{"op": "lease-grant", "id": N, "lease": L, "epoch": E, "worker": "..."}`;
//! * `{"op": "lease-done", "id": N, "lease": L, "epoch": E}`.
//!
//! Lease records carry the owning job's id but do not affect recovery:
//! leases are in-memory state, and a restarted coordinator re-runs the
//! job's (deterministic) lease chain from scratch via its `submit`
//! record.
//!
//! ## Replay
//!
//! [`replay_bytes`] is a pure function over the journal's bytes: a job is
//! *recovered* (re-enqueued on restart) when it has a `submit` record but
//! no terminal `cancel`/`done` record — including jobs that were mid-run
//! when the daemon died; exploration is deterministic, so re-running
//! yields the identical scrubbed result. A torn trailing line (the
//! record being appended when the power went) is skipped with a
//! structured warning, as is any corrupt interior line; neither ever
//! panics or hides the complete records around it. Because terminal
//! records are appended with the job's original id, replay is idempotent
//! across repeated crashes with no compaction step.
//!
//! A torn tail is also self-healing on the write side: both [`Journal::open`]
//! and a failed append remember that the file ends mid-line, and the next
//! append terminates that line first — an acknowledged record is never
//! glued onto (and lost inside) a corrupt tail.

use crate::job::{JobRequest, JobState};
use lazylocks_trace::{FaultPlan, Json};
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// An open, append-only journal file.
pub struct Journal {
    file: Mutex<JournalFile>,
    path: PathBuf,
    faults: FaultPlan,
}

struct JournalFile {
    file: fs::File,
    /// The file tail is a partial line — a previous append was torn by a
    /// crash or an injected fault. The next append terminates it first,
    /// so the new record starts on a line of its own instead of being
    /// glued (and lost) onto the corrupt tail.
    needs_newline: bool,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`. A torn tail left
    /// by a crashed append is detected here and terminated on the next
    /// append, so post-crash records never merge into the corrupt line.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        let needs_newline = if file.metadata()?.len() == 0 {
            false
        } else {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            last[0] != b'\n'
        };
        Ok(Journal {
            file: Mutex::new(JournalFile {
                file,
                needs_newline,
            }),
            path,
            faults: FaultPlan::inert(),
        })
    }

    /// Injects a fault plan into every subsequent append (tests).
    pub fn with_faults(mut self, faults: FaultPlan) -> Journal {
        self.faults = faults;
        self
    }

    /// The journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably: the line is written and fsynced before
    /// this returns. An injected torn write leaves a partial line behind
    /// and reports [`io::ErrorKind::Interrupted`], exactly as a crash
    /// mid-append would.
    pub fn append(&self, record: &Json) -> io::Result<()> {
        let mut line = record.encode();
        line.push('\n');
        let mut guard = self.file.lock().unwrap();
        if guard.needs_newline {
            // Terminate the torn partial line so this record starts
            // fresh; replay skips the corrupt line, not this one.
            (&guard.file).write_all(b"\n")?;
            guard.needs_newline = false;
        }
        if let Some(keep) = self.faults.take_torn_write() {
            let torn = &line.as_bytes()[..keep.min(line.len())];
            (&guard.file).write_all(torn)?;
            let _ = guard.file.sync_data();
            guard.needs_newline = true;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected torn journal append",
            ));
        }
        if let Err(e) = (&guard.file).write_all(line.as_bytes()) {
            // Unknown how much landed: treat the tail as torn.
            guard.needs_newline = true;
            return Err(e);
        }
        self.faults.check_fsync()?;
        guard.file.sync_data()
    }
}

/// An exclusive-ownership lock for a journal file, held for a daemon's
/// whole lifetime.
///
/// Replay-then-append is only sound when exactly one process owns the
/// journal; two daemons pointed at the same `--journal` path would
/// interleave (and mutually corrupt) their appends. The lock is a
/// sibling `<journal>.lock` file created with `O_EXCL` and holding the
/// owner's PID. A second `serve` on the same journal fails loudly
/// instead of starting. A lock left behind by a `kill -9`d daemon is
/// detected as stale (its PID no longer exists) and stolen, so crash
/// recovery never needs manual cleanup.
#[derive(Debug)]
pub struct JournalLock {
    path: PathBuf,
}

impl JournalLock {
    /// The lock file guarding `journal_path`.
    pub fn lock_path(journal_path: &Path) -> PathBuf {
        let mut name = journal_path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "journal".into());
        name.push(".lock");
        journal_path.with_file_name(name)
    }

    /// Acquires the exclusive lock for `journal_path`, stealing a stale
    /// lock whose owner is provably dead. Fails when another live
    /// process holds it, or when the holder cannot be identified.
    pub fn acquire(journal_path: &Path) -> io::Result<JournalLock> {
        if let Some(parent) = journal_path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let path = JournalLock::lock_path(journal_path);
        // Bounded retry: steal-then-recreate races with a concurrent
        // acquirer at most once per stale lock.
        for _ in 0..4 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    let _ = file.sync_data();
                    return Ok(JournalLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if !process_is_alive(pid) => {
                            // kill -9 never runs Drop: reap the corpse.
                            let _ = fs::remove_file(&path);
                            continue;
                        }
                        Some(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::AlreadyExists,
                                format!(
                                    "journal {} is owned by live process {pid} \
                                     (lock {}); refusing to share it",
                                    journal_path.display(),
                                    path.display()
                                ),
                            ));
                        }
                        None => {
                            return Err(io::Error::new(
                                io::ErrorKind::AlreadyExists,
                                format!(
                                    "journal {} is locked by {} but the holder \
                                     is unreadable; remove the lock by hand if \
                                     no daemon is running",
                                    journal_path.display(),
                                    path.display()
                                ),
                            ));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!("could not acquire journal lock {}", path.display()),
        ))
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether `pid` names a live process.
#[cfg(target_os = "linux")]
fn process_is_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Without a portable liveness probe, assume the holder is alive and
/// fail loudly — the conservative direction for a mutual-exclusion lock.
#[cfg(not(target_os = "linux"))]
fn process_is_alive(_pid: u32) -> bool {
    true
}

/// The `submit` record for an accepted job.
pub fn submit_record(id: u64, request: &JobRequest, program_name: &str) -> Json {
    Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Int(id as i128)),
        ("program", Json::Str(program_name.to_string())),
        ("job", request.to_json()),
    ])
}

/// The `start` record: a worker claimed the job.
pub fn start_record(id: u64) -> Json {
    Json::obj([
        ("op", Json::Str("start".to_string())),
        ("id", Json::Int(id as i128)),
    ])
}

/// The `cancel` record: `DELETE /jobs/<id>` was acknowledged.
pub fn cancel_record(id: u64) -> Json {
    Json::obj([
        ("op", Json::Str("cancel".to_string())),
        ("id", Json::Int(id as i128)),
    ])
}

/// The terminal record for a finished job.
pub fn done_record(id: u64, state: JobState) -> Json {
    Json::obj([
        ("op", Json::Str("done".to_string())),
        ("id", Json::Int(id as i128)),
        ("state", Json::Str(state.as_str().to_string())),
    ])
}

/// The `lease-grant` record: a distributed-mode lease was granted (or
/// re-granted after expiry) to a worker at the given epoch.
pub fn lease_grant_record(id: u64, lease: u64, epoch: u64, worker: &str) -> Json {
    Json::obj([
        ("op", Json::Str("lease-grant".to_string())),
        ("id", Json::Int(id as i128)),
        ("lease", Json::Int(lease as i128)),
        ("epoch", Json::Int(epoch as i128)),
        ("worker", Json::Str(worker.to_string())),
    ])
}

/// The `lease-done` record: a slice result was accepted for the lease.
pub fn lease_done_record(id: u64, lease: u64, epoch: u64) -> Json {
    Json::obj([
        ("op", Json::Str("lease-done".to_string())),
        ("id", Json::Int(id as i128)),
        ("lease", Json::Int(lease as i128)),
        ("epoch", Json::Int(epoch as i128)),
    ])
}

/// A job the journal proves was accepted but never finished.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The job's original id (kept across the restart).
    pub id: u64,
    /// The submission, exactly as accepted.
    pub request: JobRequest,
    /// The parsed program's name (cached at submission).
    pub program_name: String,
}

/// What [`replay_bytes`] found in a journal.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Jobs to re-enqueue, in id order.
    pub jobs: Vec<RecoveredJob>,
    /// The highest job id any record names (0 for an empty journal); the
    /// restarted daemon allocates ids strictly above it.
    pub next_id: u64,
    /// Complete, well-formed records processed.
    pub records: usize,
    /// One structured warning per skipped line (corrupt or torn).
    pub skipped: Vec<String>,
}

/// Replays a journal's raw bytes. Pure and total: corrupt lines and a
/// torn trailing record are skipped with a warning, never a panic, and
/// never hide the complete records before or after them.
pub fn replay_bytes(bytes: &[u8]) -> JournalReplay {
    let mut replay = JournalReplay::default();
    let mut pending: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
    let mut start = 0;
    let mut line_no = 0usize;
    while let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') {
        let line = &bytes[start..start + nl];
        start += nl + 1;
        line_no += 1;
        if line.is_empty() {
            continue;
        }
        match apply_line(line, &mut pending, &mut replay.next_id) {
            Ok(()) => replay.records += 1,
            Err(reason) => replay.skipped.push(format!("line {line_no}: {reason}")),
        }
    }
    if start < bytes.len() {
        replay.skipped.push(format!(
            "torn trailing record ({} bytes, no newline) ignored",
            bytes.len() - start
        ));
    }
    replay.jobs = pending.into_values().collect();
    replay
}

fn apply_line(
    line: &[u8],
    pending: &mut BTreeMap<u64, RecoveredJob>,
    next_id: &mut u64,
) -> Result<(), String> {
    let text = std::str::from_utf8(line).map_err(|_| "not UTF-8".to_string())?;
    let v = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let op = v.get("op").and_then(Json::as_str).ok_or("missing \"op\"")?;
    let id = v.get("id").and_then(Json::as_u64).ok_or("missing \"id\"")?;
    *next_id = (*next_id).max(id);
    match op {
        "submit" => {
            let request = JobRequest::from_json(v.get("job").ok_or("submit without \"job\"")?)
                .map_err(|e| format!("bad job: {e}"))?;
            let program_name = v
                .get("program")
                .and_then(Json::as_str)
                .ok_or("submit without \"program\"")?
                .to_string();
            pending.insert(
                id,
                RecoveredJob {
                    id,
                    request,
                    program_name,
                },
            );
            Ok(())
        }
        // A started job still recovers: the run never finished. Lease
        // records are an audit trail only — the lease chain is rebuilt
        // deterministically from the job's `submit` record on restart.
        "start" | "lease-grant" | "lease-done" => Ok(()),
        "cancel" | "done" => {
            pending.remove(&id);
            Ok(())
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> JobRequest {
        JobRequest {
            program_source: "program p\nthread T1 {\n}\n".to_string(),
            spec: "dpor".to_string(),
            limit: 500,
            seed: 3,
            preemptions: Some(2),
            stop_on_bug: true,
            deadline_ms: Some(9000),
            minimize: true,
            priority: -1,
            progress_interval: 64,
        }
    }

    fn temp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lazylocks-journal-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir.join("journal.jsonl")
    }

    #[test]
    fn submit_records_round_trip_the_full_request() {
        let r = request();
        let rec = submit_record(7, &r, "p");
        let back = JobRequest::from_json(rec.get("job").unwrap()).unwrap();
        assert_eq!(back.program_source, r.program_source);
        assert_eq!(back.spec, r.spec);
        assert_eq!(back.limit, r.limit);
        assert_eq!(back.seed, r.seed);
        assert_eq!(back.preemptions, r.preemptions);
        assert_eq!(back.stop_on_bug, r.stop_on_bug);
        assert_eq!(back.deadline_ms, r.deadline_ms);
        assert_eq!(back.minimize, r.minimize);
        assert_eq!(back.priority, r.priority);
        assert_eq!(back.progress_interval, r.progress_interval);
    }

    #[test]
    fn replay_recovers_only_unfinished_jobs() {
        let path = temp_journal("replay");
        let journal = Journal::open(&path).unwrap();
        let r = request();
        journal.append(&submit_record(1, &r, "a")).unwrap();
        journal.append(&submit_record(2, &r, "b")).unwrap();
        journal.append(&submit_record(3, &r, "c")).unwrap();
        journal.append(&start_record(1)).unwrap();
        journal.append(&done_record(1, JobState::Done)).unwrap();
        journal.append(&cancel_record(2)).unwrap();
        journal.append(&start_record(3)).unwrap(); // crashed mid-run

        let replay = replay_bytes(&fs::read(&path).unwrap());
        assert_eq!(replay.next_id, 3);
        assert_eq!(replay.records, 7);
        assert!(replay.skipped.is_empty(), "{:?}", replay.skipped);
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![3], "only the mid-run job recovers");
        assert_eq!(replay.jobs[0].program_name, "c");
    }

    #[test]
    fn replay_skips_corrupt_interior_lines_without_losing_neighbours() {
        let path = temp_journal("corrupt");
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(1, &request(), "a")).unwrap();
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{ not json\n\xff\xfe\n{\"op\": \"launch\", \"id\": 9}\n")
            .unwrap();
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(2, &request(), "b")).unwrap();

        let replay = replay_bytes(&fs::read(&path).unwrap());
        assert_eq!(replay.records, 2);
        assert_eq!(replay.skipped.len(), 3, "{:?}", replay.skipped);
        assert!(replay.skipped[0].contains("bad JSON"));
        assert!(replay.skipped[1].contains("not UTF-8"));
        assert!(replay.skipped[2].contains("unknown op"));
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![1, 2]);
        // The unknown-op line still bumps next_id: ids stay unique even
        // across records written by a newer daemon.
        assert_eq!(replay.next_id, 9);
    }

    #[test]
    fn replay_survives_truncation_at_every_byte_offset() {
        let path = temp_journal("truncate");
        let journal = Journal::open(&path).unwrap();
        let r = request();
        journal.append(&submit_record(1, &r, "a")).unwrap();
        journal.append(&done_record(1, JobState::Done)).unwrap();
        journal.append(&submit_record(2, &r, "b")).unwrap();
        let full = fs::read(&path).unwrap();
        let final_start = full.len() - (submit_record(2, &r, "b").encode().len() + 1);

        // Cut the journal at every byte of the final record. Replay must
        // never panic, never lose the completed prefix, and only recover
        // job 2 once its record is complete (trailing newline included).
        for cut in final_start..=full.len() {
            let replay = replay_bytes(&full[..cut]);
            let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
            if cut == full.len() {
                assert_eq!(recovered, vec![2], "complete journal recovers job 2");
                assert!(replay.skipped.is_empty());
            } else {
                assert!(
                    recovered.is_empty(),
                    "torn submit at cut {cut} must not run"
                );
                if cut > final_start {
                    assert_eq!(replay.skipped.len(), 1, "cut {cut}");
                    assert!(replay.skipped[0].contains("torn trailing record"));
                }
            }
            let expected = if cut == full.len() { 3 } else { 2 };
            assert_eq!(
                replay.records, expected,
                "prefix records survive at cut {cut}"
            );
            assert_eq!(replay.next_id.max(1), if cut == full.len() { 2 } else { 1 });
        }
    }

    #[test]
    fn torn_append_leaves_a_replayable_journal() {
        let path = temp_journal("torn-append");
        let faults = FaultPlan::armed();
        let journal = Journal::open(&path).unwrap().with_faults(faults.clone());
        journal.append(&submit_record(1, &request(), "a")).unwrap();
        faults.truncate_next_write(12);
        let err = journal
            .append(&submit_record(2, &request(), "b"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);

        let replay = replay_bytes(&fs::read(&path).unwrap());
        assert_eq!(replay.records, 1);
        assert_eq!(replay.skipped.len(), 1);
        assert!(replay.skipped[0].contains("torn trailing record"));
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].id, 1);

        // The next append lands on a fresh line — through the same handle
        // and through a reopened journal (the restart-after-crash path).
        journal.append(&submit_record(3, &request(), "c")).unwrap();
        let reopened = Journal::open(&path).unwrap();
        reopened.append(&submit_record(4, &request(), "d")).unwrap();
        let replay = replay_bytes(&fs::read(&path).unwrap());
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![1, 3, 4]);
    }

    #[test]
    fn lease_records_replay_clean_and_do_not_finish_the_job() {
        let path = temp_journal("lease-ops");
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(5, &request(), "p")).unwrap();
        journal.append(&lease_grant_record(5, 1, 1, "w1")).unwrap();
        journal.append(&lease_done_record(5, 1, 1)).unwrap();
        journal.append(&lease_grant_record(5, 2, 2, "w2")).unwrap();

        let replay = replay_bytes(&fs::read(&path).unwrap());
        assert_eq!(replay.records, 4);
        assert!(replay.skipped.is_empty(), "{:?}", replay.skipped);
        // Slice progress is not job completion: the job still recovers
        // (its deterministic lease chain restarts from scratch).
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![5]);
        assert_eq!(replay.next_id, 5);
    }

    #[test]
    fn journal_lock_is_exclusive_while_held() {
        let path = temp_journal("lock-excl");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        let lock = JournalLock::acquire(&path).unwrap();
        let err = JournalLock::acquire(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert!(
            err.to_string().contains("live process"),
            "the refusal names the live holder: {err}"
        );
        drop(lock);
        // Released cleanly: a successor acquires without intervention.
        let _again = JournalLock::acquire(&path).unwrap();
    }

    #[test]
    #[cfg(target_os = "linux")] // staleness probe reads /proc
    fn journal_lock_steals_from_a_dead_holder_but_not_an_unreadable_one() {
        let path = temp_journal("lock-stale");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        let lock_path = JournalLock::lock_path(&path);

        // A lock naming a PID that cannot exist (kill -9 leaves exactly
        // this behind) is stolen.
        fs::write(&lock_path, "4294967294").unwrap();
        let lock = JournalLock::acquire(&path).unwrap();
        assert_eq!(
            fs::read_to_string(&lock_path).unwrap(),
            std::process::id().to_string(),
            "the stolen lock now names the new owner"
        );
        drop(lock);

        // A lock whose holder cannot be identified is refused, not
        // stolen: mutual exclusion errs on the side of not starting.
        fs::write(&lock_path, "not a pid").unwrap();
        let err = JournalLock::acquire(&path).unwrap_err();
        assert!(err.to_string().contains("unreadable"), "{err}");
        fs::remove_file(&lock_path).unwrap();
    }

    #[test]
    fn reopening_a_torn_journal_heals_the_tail() {
        let path = temp_journal("heal");
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(1, &request(), "a")).unwrap();
        // A crash mid-append: raw partial line, no newline.
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"op\": \"submit\", \"id\": 2, ")
            .unwrap();

        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(3, &request(), "c")).unwrap();
        let replay = replay_bytes(&fs::read(&path).unwrap());
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![1, 3], "the record after the tear decodes");
        assert_eq!(replay.skipped.len(), 1, "{:?}", replay.skipped);
        assert!(replay.skipped[0].contains("bad JSON"));
    }
}
