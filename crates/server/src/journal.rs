//! The durable job journal: a JSON-lines write-ahead log of every job
//! lifecycle transition, replayed on daemon startup so a crash (or
//! `kill -9`) never loses accepted work.
//!
//! ## Format
//!
//! One JSON object per line, appended and fsynced before the transition
//! is acknowledged:
//!
//! * `{"op": "submit", "id": N, "program": "...", "job": {...}}` — the
//!   full [`JobRequest`] as accepted by `POST /jobs`;
//! * `{"op": "start", "id": N}` — a worker claimed the job;
//! * `{"op": "cancel", "id": N}` — `DELETE /jobs/<id>`;
//! * `{"op": "done", "id": N, "state": "done" | "cancelled" | "failed"}`.
//!
//! ## Replay
//!
//! [`replay_bytes`] is a pure function over the journal's bytes: a job is
//! *recovered* (re-enqueued on restart) when it has a `submit` record but
//! no terminal `cancel`/`done` record — including jobs that were mid-run
//! when the daemon died; exploration is deterministic, so re-running
//! yields the identical scrubbed result. A torn trailing line (the
//! record being appended when the power went) is skipped with a
//! structured warning, as is any corrupt interior line; neither ever
//! panics or hides the complete records around it. Because terminal
//! records are appended with the job's original id, replay is idempotent
//! across repeated crashes with no compaction step.
//!
//! A torn tail is also self-healing on the write side: both [`Journal::open`]
//! and a failed append remember that the file ends mid-line, and the next
//! append terminates that line first — an acknowledged record is never
//! glued onto (and lost inside) a corrupt tail.

use crate::job::{JobRequest, JobState};
use lazylocks_trace::{FaultPlan, Json};
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// An open, append-only journal file.
pub struct Journal {
    file: Mutex<JournalFile>,
    path: PathBuf,
    faults: FaultPlan,
}

struct JournalFile {
    file: fs::File,
    /// The file tail is a partial line — a previous append was torn by a
    /// crash or an injected fault. The next append terminates it first,
    /// so the new record starts on a line of its own instead of being
    /// glued (and lost) onto the corrupt tail.
    needs_newline: bool,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`. A torn tail left
    /// by a crashed append is detected here and terminated on the next
    /// append, so post-crash records never merge into the corrupt line.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        let needs_newline = if file.metadata()?.len() == 0 {
            false
        } else {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            last[0] != b'\n'
        };
        Ok(Journal {
            file: Mutex::new(JournalFile {
                file,
                needs_newline,
            }),
            path,
            faults: FaultPlan::inert(),
        })
    }

    /// Injects a fault plan into every subsequent append (tests).
    pub fn with_faults(mut self, faults: FaultPlan) -> Journal {
        self.faults = faults;
        self
    }

    /// The journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably: the line is written and fsynced before
    /// this returns. An injected torn write leaves a partial line behind
    /// and reports [`io::ErrorKind::Interrupted`], exactly as a crash
    /// mid-append would.
    pub fn append(&self, record: &Json) -> io::Result<()> {
        let mut line = record.encode();
        line.push('\n');
        let mut guard = self.file.lock().unwrap();
        if guard.needs_newline {
            // Terminate the torn partial line so this record starts
            // fresh; replay skips the corrupt line, not this one.
            (&guard.file).write_all(b"\n")?;
            guard.needs_newline = false;
        }
        if let Some(keep) = self.faults.take_torn_write() {
            let torn = &line.as_bytes()[..keep.min(line.len())];
            (&guard.file).write_all(torn)?;
            let _ = guard.file.sync_data();
            guard.needs_newline = true;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected torn journal append",
            ));
        }
        if let Err(e) = (&guard.file).write_all(line.as_bytes()) {
            // Unknown how much landed: treat the tail as torn.
            guard.needs_newline = true;
            return Err(e);
        }
        self.faults.check_fsync()?;
        guard.file.sync_data()
    }
}

/// The `submit` record for an accepted job.
pub fn submit_record(id: u64, request: &JobRequest, program_name: &str) -> Json {
    Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Int(id as i128)),
        ("program", Json::Str(program_name.to_string())),
        ("job", request.to_json()),
    ])
}

/// The `start` record: a worker claimed the job.
pub fn start_record(id: u64) -> Json {
    Json::obj([
        ("op", Json::Str("start".to_string())),
        ("id", Json::Int(id as i128)),
    ])
}

/// The `cancel` record: `DELETE /jobs/<id>` was acknowledged.
pub fn cancel_record(id: u64) -> Json {
    Json::obj([
        ("op", Json::Str("cancel".to_string())),
        ("id", Json::Int(id as i128)),
    ])
}

/// The terminal record for a finished job.
pub fn done_record(id: u64, state: JobState) -> Json {
    Json::obj([
        ("op", Json::Str("done".to_string())),
        ("id", Json::Int(id as i128)),
        ("state", Json::Str(state.as_str().to_string())),
    ])
}

/// A job the journal proves was accepted but never finished.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The job's original id (kept across the restart).
    pub id: u64,
    /// The submission, exactly as accepted.
    pub request: JobRequest,
    /// The parsed program's name (cached at submission).
    pub program_name: String,
}

/// What [`replay_bytes`] found in a journal.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Jobs to re-enqueue, in id order.
    pub jobs: Vec<RecoveredJob>,
    /// The highest job id any record names (0 for an empty journal); the
    /// restarted daemon allocates ids strictly above it.
    pub next_id: u64,
    /// Complete, well-formed records processed.
    pub records: usize,
    /// One structured warning per skipped line (corrupt or torn).
    pub skipped: Vec<String>,
}

/// Replays a journal's raw bytes. Pure and total: corrupt lines and a
/// torn trailing record are skipped with a warning, never a panic, and
/// never hide the complete records before or after them.
pub fn replay_bytes(bytes: &[u8]) -> JournalReplay {
    let mut replay = JournalReplay::default();
    let mut pending: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
    let mut start = 0;
    let mut line_no = 0usize;
    while let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') {
        let line = &bytes[start..start + nl];
        start += nl + 1;
        line_no += 1;
        if line.is_empty() {
            continue;
        }
        match apply_line(line, &mut pending, &mut replay.next_id) {
            Ok(()) => replay.records += 1,
            Err(reason) => replay.skipped.push(format!("line {line_no}: {reason}")),
        }
    }
    if start < bytes.len() {
        replay.skipped.push(format!(
            "torn trailing record ({} bytes, no newline) ignored",
            bytes.len() - start
        ));
    }
    replay.jobs = pending.into_values().collect();
    replay
}

fn apply_line(
    line: &[u8],
    pending: &mut BTreeMap<u64, RecoveredJob>,
    next_id: &mut u64,
) -> Result<(), String> {
    let text = std::str::from_utf8(line).map_err(|_| "not UTF-8".to_string())?;
    let v = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let op = v.get("op").and_then(Json::as_str).ok_or("missing \"op\"")?;
    let id = v.get("id").and_then(Json::as_u64).ok_or("missing \"id\"")?;
    *next_id = (*next_id).max(id);
    match op {
        "submit" => {
            let request = JobRequest::from_json(v.get("job").ok_or("submit without \"job\"")?)
                .map_err(|e| format!("bad job: {e}"))?;
            let program_name = v
                .get("program")
                .and_then(Json::as_str)
                .ok_or("submit without \"program\"")?
                .to_string();
            pending.insert(
                id,
                RecoveredJob {
                    id,
                    request,
                    program_name,
                },
            );
            Ok(())
        }
        // A started job still recovers: the run never finished.
        "start" => Ok(()),
        "cancel" | "done" => {
            pending.remove(&id);
            Ok(())
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> JobRequest {
        JobRequest {
            program_source: "program p\nthread T1 {\n}\n".to_string(),
            spec: "dpor".to_string(),
            limit: 500,
            seed: 3,
            preemptions: Some(2),
            stop_on_bug: true,
            deadline_ms: Some(9000),
            minimize: true,
            priority: -1,
            progress_interval: 64,
        }
    }

    fn temp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lazylocks-journal-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir.join("journal.jsonl")
    }

    #[test]
    fn submit_records_round_trip_the_full_request() {
        let r = request();
        let rec = submit_record(7, &r, "p");
        let back = JobRequest::from_json(rec.get("job").unwrap()).unwrap();
        assert_eq!(back.program_source, r.program_source);
        assert_eq!(back.spec, r.spec);
        assert_eq!(back.limit, r.limit);
        assert_eq!(back.seed, r.seed);
        assert_eq!(back.preemptions, r.preemptions);
        assert_eq!(back.stop_on_bug, r.stop_on_bug);
        assert_eq!(back.deadline_ms, r.deadline_ms);
        assert_eq!(back.minimize, r.minimize);
        assert_eq!(back.priority, r.priority);
        assert_eq!(back.progress_interval, r.progress_interval);
    }

    #[test]
    fn replay_recovers_only_unfinished_jobs() {
        let path = temp_journal("replay");
        let journal = Journal::open(&path).unwrap();
        let r = request();
        journal.append(&submit_record(1, &r, "a")).unwrap();
        journal.append(&submit_record(2, &r, "b")).unwrap();
        journal.append(&submit_record(3, &r, "c")).unwrap();
        journal.append(&start_record(1)).unwrap();
        journal.append(&done_record(1, JobState::Done)).unwrap();
        journal.append(&cancel_record(2)).unwrap();
        journal.append(&start_record(3)).unwrap(); // crashed mid-run

        let replay = replay_bytes(&fs::read(&path).unwrap());
        assert_eq!(replay.next_id, 3);
        assert_eq!(replay.records, 7);
        assert!(replay.skipped.is_empty(), "{:?}", replay.skipped);
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![3], "only the mid-run job recovers");
        assert_eq!(replay.jobs[0].program_name, "c");
    }

    #[test]
    fn replay_skips_corrupt_interior_lines_without_losing_neighbours() {
        let path = temp_journal("corrupt");
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(1, &request(), "a")).unwrap();
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{ not json\n\xff\xfe\n{\"op\": \"launch\", \"id\": 9}\n")
            .unwrap();
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(2, &request(), "b")).unwrap();

        let replay = replay_bytes(&fs::read(&path).unwrap());
        assert_eq!(replay.records, 2);
        assert_eq!(replay.skipped.len(), 3, "{:?}", replay.skipped);
        assert!(replay.skipped[0].contains("bad JSON"));
        assert!(replay.skipped[1].contains("not UTF-8"));
        assert!(replay.skipped[2].contains("unknown op"));
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![1, 2]);
        // The unknown-op line still bumps next_id: ids stay unique even
        // across records written by a newer daemon.
        assert_eq!(replay.next_id, 9);
    }

    #[test]
    fn replay_survives_truncation_at_every_byte_offset() {
        let path = temp_journal("truncate");
        let journal = Journal::open(&path).unwrap();
        let r = request();
        journal.append(&submit_record(1, &r, "a")).unwrap();
        journal.append(&done_record(1, JobState::Done)).unwrap();
        journal.append(&submit_record(2, &r, "b")).unwrap();
        let full = fs::read(&path).unwrap();
        let final_start = full.len() - (submit_record(2, &r, "b").encode().len() + 1);

        // Cut the journal at every byte of the final record. Replay must
        // never panic, never lose the completed prefix, and only recover
        // job 2 once its record is complete (trailing newline included).
        for cut in final_start..=full.len() {
            let replay = replay_bytes(&full[..cut]);
            let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
            if cut == full.len() {
                assert_eq!(recovered, vec![2], "complete journal recovers job 2");
                assert!(replay.skipped.is_empty());
            } else {
                assert!(
                    recovered.is_empty(),
                    "torn submit at cut {cut} must not run"
                );
                if cut > final_start {
                    assert_eq!(replay.skipped.len(), 1, "cut {cut}");
                    assert!(replay.skipped[0].contains("torn trailing record"));
                }
            }
            let expected = if cut == full.len() { 3 } else { 2 };
            assert_eq!(
                replay.records, expected,
                "prefix records survive at cut {cut}"
            );
            assert_eq!(replay.next_id.max(1), if cut == full.len() { 2 } else { 1 });
        }
    }

    #[test]
    fn torn_append_leaves_a_replayable_journal() {
        let path = temp_journal("torn-append");
        let faults = FaultPlan::armed();
        let journal = Journal::open(&path).unwrap().with_faults(faults.clone());
        journal.append(&submit_record(1, &request(), "a")).unwrap();
        faults.truncate_next_write(12);
        let err = journal
            .append(&submit_record(2, &request(), "b"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);

        let replay = replay_bytes(&fs::read(&path).unwrap());
        assert_eq!(replay.records, 1);
        assert_eq!(replay.skipped.len(), 1);
        assert!(replay.skipped[0].contains("torn trailing record"));
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].id, 1);

        // The next append lands on a fresh line — through the same handle
        // and through a reopened journal (the restart-after-crash path).
        journal.append(&submit_record(3, &request(), "c")).unwrap();
        let reopened = Journal::open(&path).unwrap();
        reopened.append(&submit_record(4, &request(), "d")).unwrap();
        let replay = replay_bytes(&fs::read(&path).unwrap());
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![1, 3, 4]);
    }

    #[test]
    fn reopening_a_torn_journal_heals_the_tail() {
        let path = temp_journal("heal");
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(1, &request(), "a")).unwrap();
        // A crash mid-append: raw partial line, no newline.
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"op\": \"submit\", \"id\": 2, ")
            .unwrap();

        let journal = Journal::open(&path).unwrap();
        journal.append(&submit_record(3, &request(), "c")).unwrap();
        let replay = replay_bytes(&fs::read(&path).unwrap());
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        assert_eq!(recovered, vec![1, 3], "the record after the tear decodes");
        assert_eq!(replay.skipped.len(), 1, "{:?}", replay.skipped);
        assert!(replay.skipped[0].contains("bad JSON"));
    }
}
