//! A thin blocking HTTP client for the daemon's API — used by the
//! `lazylocks client` subcommand, the CI smoke test and the e2e tests.
//! One request per connection, mirroring the server's `Connection:
//! close` discipline.

use crate::http::{read_response, Limits};
use lazylocks_trace::Json;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A handle on one daemon.
pub struct Client {
    addr: String,
    limits: Limits,
    /// Extra connection attempts after the first (0 = fail fast).
    retries: u32,
    /// First retry backoff; doubles per attempt.
    retry_base: Duration,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7077`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            limits: Limits::default(),
            retries: 0,
            retry_base: Duration::from_millis(100),
        }
    }

    /// Retries refused or timed-out *connections* up to `retries` extra
    /// times with exponential backoff starting at `base` (base, 2·base,
    /// 4·base, …). Only the connect is retried — an established request
    /// is never resent, so a submission can't be duplicated by a retry.
    pub fn with_retries(mut self, retries: u32, base: Duration) -> Self {
        self.retries = retries;
        self.retry_base = base;
        self
    }

    /// Connects, retrying per [`with_retries`](Client::with_retries).
    fn connect(&self) -> Result<TcpStream, String> {
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(stream) => return Ok(stream),
                Err(e) => {
                    let transient = matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionRefused
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::TimedOut
                    );
                    if !transient || attempt >= self.retries {
                        return Err(format!("cannot connect to {}: {e}", self.addr));
                    }
                    std::thread::sleep(self.retry_base * 2u32.pow(attempt.min(16)));
                    attempt += 1;
                }
            }
        }
    }

    /// One round trip: connect, send, read `(status, body)`.
    pub fn call(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), String> {
        let stream = self.connect()?;
        stream.set_read_timeout(Some(self.limits.read_timeout)).ok();
        stream
            .set_write_timeout(Some(self.limits.read_timeout))
            .ok();
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket: {e}"))?;
        let payload = body.map(Json::encode).unwrap_or_default();
        write!(
            writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        )
        .map_err(|e| format!("request write failed: {e}"))?;
        writer
            .flush()
            .map_err(|e| format!("request flush failed: {e}"))?;
        let mut reader = BufReader::new(stream);
        read_response(&mut reader, &self.limits)
            .map_err(|e| format!("bad response from {}: {}", self.addr, e.message()))
    }

    /// `GET /healthz`.
    pub fn health(&self) -> Result<(u16, Json), String> {
        self.call("GET", "/healthz", None)
    }

    /// `GET /strategies`.
    pub fn strategies(&self) -> Result<(u16, Json), String> {
        self.call("GET", "/strategies", None)
    }

    /// `POST /jobs`; on 201 returns the new job id.
    pub fn submit(&self, job: &Json) -> Result<u64, String> {
        let (status, body) = self.call("POST", "/jobs", Some(job))?;
        if status != 201 {
            return Err(format!(
                "submit rejected ({status}): {}",
                body.get("error").and_then(Json::as_str).unwrap_or("?")
            ));
        }
        body.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "submit response carried no id".to_string())
    }

    /// `GET /jobs`.
    pub fn jobs(&self) -> Result<(u16, Json), String> {
        self.call("GET", "/jobs", None)
    }

    /// `GET /jobs/<id>`.
    pub fn job(&self, id: u64) -> Result<(u16, Json), String> {
        self.call("GET", &format!("/jobs/{id}"), None)
    }

    /// `DELETE /jobs/<id>`.
    pub fn cancel(&self, id: u64) -> Result<(u16, Json), String> {
        self.call("DELETE", &format!("/jobs/{id}"), None)
    }

    /// `GET /jobs/<id>/events?since=N`.
    pub fn events(&self, id: u64, since: u64) -> Result<(u16, Json), String> {
        self.call("GET", &format!("/jobs/{id}/events?since={since}"), None)
    }

    /// `GET /jobs/<id>/profile`.
    pub fn job_profile(&self, id: u64) -> Result<(u16, Json), String> {
        self.call("GET", &format!("/jobs/{id}/profile"), None)
    }

    /// `GET /metrics?format=json` — the JSON twin of the Prometheus
    /// text endpoint, parseable by this JSON-only client.
    pub fn metrics_json(&self) -> Result<(u16, Json), String> {
        self.call("GET", "/metrics?format=json", None)
    }

    /// `POST /shutdown`.
    pub fn shutdown(&self) -> Result<(u16, Json), String> {
        self.call("POST", "/shutdown", None)
    }

    /// Polls `GET /jobs/<id>` until the job reaches a terminal state,
    /// returning its detail document. `poll` is the sleep between polls.
    pub fn wait(&self, id: u64, poll: std::time::Duration) -> Result<Json, String> {
        loop {
            let (status, detail) = self.job(id)?;
            if status != 200 {
                return Err(format!("job {id} lookup failed ({status})"));
            }
            match detail.get("state").and_then(Json::as_str) {
                Some("done") | Some("cancelled") | Some("failed") => return Ok(detail),
                _ => std::thread::sleep(poll),
            }
        }
    }
}
