//! A thin blocking HTTP client for the daemon's API — used by the
//! `lazylocks client` and `lazylocks worker` subcommands, the CI smoke
//! tests and the e2e tests. One request per connection, mirroring the
//! server's `Connection: close` discipline.
//!
//! ## Retry semantics
//!
//! `--retries` applies at two layers. Connect-time failures (refused,
//! reset, timed out) are always retried with exponential backoff: no
//! request was sent, so nothing can be duplicated. Failures *after* the
//! request may have been sent (torn response, dropped connection,
//! timeout) are retried only for requests [`is_idempotent`] classifies
//! as safe to resend: every `GET`, plus the lease-protocol `POST`s,
//! which are keyed by lease id + epoch so the server deduplicates
//! resends. A non-idempotent request — `POST /jobs` above all — is
//! never resent once any byte of it may have reached the server, so a
//! retried submission can't enqueue twice.

use crate::http::{read_response, Limits};
use lazylocks_trace::{FaultPlan, Json};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Whether `method path` is safe to resend after a failure that may
/// have delivered the first copy. The classification table:
///
/// | request | idempotent | why |
/// |---|---|---|
/// | `GET *` | yes | reads only |
/// | `POST /leases/claim` | yes | re-claim by the same holder re-grants the same lease + epoch |
/// | `POST /leases/<id>/renew` | yes | extends a deadline; keyed by lease + epoch |
/// | `POST /leases/<id>/result` | yes | keyed by lease + epoch; duplicates acknowledged, not re-applied |
/// | `POST /jobs` | **no** | a resend could enqueue the job twice |
/// | `DELETE /jobs/<id>`, `POST /shutdown` | no (conservative) | single-shot is always safe |
pub fn is_idempotent(method: &str, path: &str) -> bool {
    if method == "GET" {
        return true;
    }
    if method != "POST" {
        return false;
    }
    let path = path.split('?').next().unwrap_or(path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    matches!(
        segments.as_slice(),
        ["leases", "claim"] | ["leases", _, "renew"] | ["leases", _, "result"]
    )
}

/// Why one request attempt failed, and whether a retry is sound.
struct CallFailure {
    message: String,
    /// Retrying could plausibly succeed (connection-level trouble, not a
    /// malformed request).
    transient: bool,
    /// Any byte of the request may have reached the server — a resend is
    /// then only safe for idempotent requests.
    sent: bool,
}

/// A handle on one daemon.
pub struct Client {
    addr: String,
    limits: Limits,
    /// Extra attempts after the first (0 = fail fast).
    retries: u32,
    /// First retry backoff; doubles per attempt.
    retry_base: Duration,
    /// Shared secret sent as `Authorization: Bearer <token>`.
    token: Option<String>,
    /// Wire-fault injection (tests): torn request writes, short response
    /// reads.
    faults: FaultPlan,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7077`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            limits: Limits::default(),
            retries: 0,
            retry_base: Duration::from_millis(100),
            token: None,
            faults: FaultPlan::inert(),
        }
    }

    /// Retries transient failures up to `retries` extra times with
    /// exponential backoff starting at `base` (base, 2·base, 4·base, …).
    /// Connect-time failures always retry; post-send failures retry only
    /// for requests [`is_idempotent`] marks safe to resend.
    pub fn with_retries(mut self, retries: u32, base: Duration) -> Self {
        self.retries = retries;
        self.retry_base = base;
        self
    }

    /// Attaches the shared-secret token sent on every request.
    pub fn with_token(mut self, token: Option<String>) -> Self {
        self.token = token;
        self
    }

    /// Raises the response-body cap. The worker pairs this with the
    /// coordinator's distributed-mode request cap: lease grants embed
    /// checkpoint frontiers far larger than any ordinary response.
    pub fn with_body_cap(mut self, bytes: usize) -> Self {
        self.limits.max_body_bytes = self.limits.max_body_bytes.max(bytes);
        self
    }

    /// Injects wire faults into subsequent requests (tests): a torn
    /// write cuts the request mid-flight, a short read truncates the
    /// response.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// One attempt: connect, send, read. The failure records whether the
    /// request may have been delivered.
    fn try_call(
        &self,
        method: &str,
        path: &str,
        payload: &str,
    ) -> Result<(u16, Json), CallFailure> {
        let stream = TcpStream::connect(&self.addr).map_err(|e| {
            let transient = matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::TimedOut
            );
            CallFailure {
                message: format!("cannot connect to {}: {e}", self.addr),
                transient,
                sent: false,
            }
        })?;
        stream.set_read_timeout(Some(self.limits.read_timeout)).ok();
        stream
            .set_write_timeout(Some(self.limits.read_timeout))
            .ok();
        let mut writer = stream.try_clone().map_err(|e| CallFailure {
            message: format!("cannot clone socket: {e}"),
            transient: false,
            sent: false,
        })?;
        let auth = match &self.token {
            Some(t) => format!("Authorization: Bearer {t}\r\n"),
            None => String::new(),
        };
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\n{auth}Content-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        );
        if let Some(keep) = self.faults.take_torn_write() {
            // Injected dropped connection: deliver a prefix (possibly
            // nothing) of the request, then hang up.
            let torn = &request.as_bytes()[..keep.min(request.len())];
            let _ = writer.write_all(torn);
            let _ = writer.flush();
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Err(CallFailure {
                message: format!("injected torn request write to {}", self.addr),
                transient: true,
                sent: keep > 0,
            });
        }
        writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| CallFailure {
                message: format!("request write failed: {e}"),
                transient: true,
                sent: true,
            })?;
        let failed_read = |message: String| CallFailure {
            // The request reached the server; whether it executed is
            // unknowable from here. All read failures — timeout,
            // truncation, reset — are retried only when a resend is
            // idempotent.
            message,
            transient: true,
            sent: true,
        };
        if self.faults.is_armed() {
            // Short-read injection needs the raw bytes before parsing.
            let mut raw = Vec::new();
            BufReader::new(stream)
                .read_to_end(&mut raw)
                .map_err(|e| failed_read(format!("response read failed: {e}")))?;
            let raw = self.faults.apply_read(raw);
            let mut reader = BufReader::new(std::io::Cursor::new(raw));
            return read_response(&mut reader, &self.limits).map_err(|e| {
                failed_read(format!("bad response from {}: {}", self.addr, e.message()))
            });
        }
        let mut reader = BufReader::new(stream);
        read_response(&mut reader, &self.limits)
            .map_err(|e| failed_read(format!("bad response from {}: {}", self.addr, e.message())))
    }

    /// One logical round trip: connect, send, read `(status, body)` —
    /// retrying transient failures per the idempotency classification.
    pub fn call(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), String> {
        let payload = body.map(Json::encode).unwrap_or_default();
        let mut attempt = 0u32;
        loop {
            match self.try_call(method, path, &payload) {
                Ok(response) => return Ok(response),
                Err(failure) => {
                    let resendable = !failure.sent || is_idempotent(method, path);
                    if !failure.transient || !resendable || attempt >= self.retries {
                        return Err(failure.message);
                    }
                    std::thread::sleep(self.retry_base * 2u32.pow(attempt.min(16)));
                    attempt += 1;
                }
            }
        }
    }

    /// `GET /healthz`.
    pub fn health(&self) -> Result<(u16, Json), String> {
        self.call("GET", "/healthz", None)
    }

    /// `GET /strategies`.
    pub fn strategies(&self) -> Result<(u16, Json), String> {
        self.call("GET", "/strategies", None)
    }

    /// `POST /jobs`; on 201 returns the new job id.
    pub fn submit(&self, job: &Json) -> Result<u64, String> {
        let (status, body) = self.call("POST", "/jobs", Some(job))?;
        if status != 201 {
            return Err(format!(
                "submit rejected ({status}): {}",
                body.get("error").and_then(Json::as_str).unwrap_or("?")
            ));
        }
        body.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "submit response carried no id".to_string())
    }

    /// `GET /jobs`.
    pub fn jobs(&self) -> Result<(u16, Json), String> {
        self.call("GET", "/jobs", None)
    }

    /// `GET /jobs/<id>`.
    pub fn job(&self, id: u64) -> Result<(u16, Json), String> {
        self.call("GET", &format!("/jobs/{id}"), None)
    }

    /// `DELETE /jobs/<id>`.
    pub fn cancel(&self, id: u64) -> Result<(u16, Json), String> {
        self.call("DELETE", &format!("/jobs/{id}"), None)
    }

    /// `GET /jobs/<id>/events?since=N`.
    pub fn events(&self, id: u64, since: u64) -> Result<(u16, Json), String> {
        self.call("GET", &format!("/jobs/{id}/events?since={since}"), None)
    }

    /// `GET /jobs/<id>/profile`.
    pub fn job_profile(&self, id: u64) -> Result<(u16, Json), String> {
        self.call("GET", &format!("/jobs/{id}/profile"), None)
    }

    /// `GET /metrics?format=json` — the JSON twin of the Prometheus
    /// text endpoint, parseable by this JSON-only client.
    pub fn metrics_json(&self) -> Result<(u16, Json), String> {
        self.call("GET", "/metrics?format=json", None)
    }

    /// `POST /shutdown`.
    pub fn shutdown(&self) -> Result<(u16, Json), String> {
        self.call("POST", "/shutdown", None)
    }

    /// `POST /leases/claim`: asks for a lease as `worker`. Returns the
    /// grant document, or `None` when nothing is claimable right now.
    pub fn claim_lease(&self, worker: &str) -> Result<Option<Json>, String> {
        let body = Json::obj([("worker", Json::Str(worker.to_string()))]);
        let (status, body) = self.call("POST", "/leases/claim", Some(&body))?;
        if status != 200 {
            return Err(format!(
                "claim rejected ({status}): {}",
                body.get("error").and_then(Json::as_str).unwrap_or("?")
            ));
        }
        match body.get("lease") {
            Some(Json::Null) | None => Ok(None),
            Some(grant) => Ok(Some(grant.clone())),
        }
    }

    /// `POST /leases/<id>/renew`: heartbeats a held lease. A non-200
    /// means the lease was reassigned — the worker must abandon it.
    pub fn renew_lease(&self, lease: u64, worker: &str, epoch: u64) -> Result<(u16, Json), String> {
        let body = Json::obj([
            ("worker", Json::Str(worker.to_string())),
            ("epoch", Json::Int(epoch as i128)),
        ]);
        self.call("POST", &format!("/leases/{lease}/renew"), Some(&body))
    }

    /// `POST /leases/<id>/result`: uploads a slice result (which carries
    /// its own `epoch` for fencing). Safe to resend: duplicates are
    /// acknowledged idempotently.
    pub fn lease_result(&self, lease: u64, result: &Json) -> Result<(u16, Json), String> {
        self.call("POST", &format!("/leases/{lease}/result"), Some(result))
    }

    /// Polls `GET /jobs/<id>` until the job reaches a terminal state,
    /// returning its detail document. `poll` is the sleep between polls.
    pub fn wait(&self, id: u64, poll: std::time::Duration) -> Result<Json, String> {
        loop {
            let (status, detail) = self.job(id)?;
            if status != 200 {
                return Err(format!("job {id} lookup failed ({status})"));
            }
            match detail.get("state").and_then(Json::as_str) {
                Some("done") | Some("cancelled") | Some("failed") => return Ok(detail),
                _ => std::thread::sleep(poll),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotency_classification_table() {
        // Reads are always resendable.
        assert!(is_idempotent("GET", "/healthz"));
        assert!(is_idempotent("GET", "/jobs"));
        assert!(is_idempotent("GET", "/jobs/3"));
        assert!(is_idempotent("GET", "/jobs/3/events?since=9"));
        assert!(is_idempotent("GET", "/metrics?format=json"));

        // Lease-protocol POSTs are keyed by lease + epoch.
        assert!(is_idempotent("POST", "/leases/claim"));
        assert!(is_idempotent("POST", "/leases/7/renew"));
        assert!(is_idempotent("POST", "/leases/7/result"));
        assert!(is_idempotent("POST", "/leases/claim?x=1"));

        // Anything that could double-apply is not resent.
        assert!(!is_idempotent("POST", "/jobs"));
        assert!(!is_idempotent("POST", "/shutdown"));
        assert!(!is_idempotent("DELETE", "/jobs/3"));
        // Near-misses stay conservative.
        assert!(!is_idempotent("POST", "/leases"));
        assert!(!is_idempotent("POST", "/leases/7"));
        assert!(!is_idempotent("POST", "/leases/7/result/extra"));
        assert!(!is_idempotent("PUT", "/leases/claim"));
    }

    #[test]
    fn non_idempotent_requests_fail_without_resend_after_a_torn_write() {
        // No server involved: the injected torn write fails the attempt
        // before the connect would matter — bind a listener so connect
        // succeeds, then assert that one torn POST /jobs burns the only
        // attempt despite retries being generous.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Accept and drop a few connections without responding.
            for _ in 0..4 {
                match listener.accept() {
                    Ok((stream, _)) => drop(stream),
                    Err(_) => break,
                }
            }
        });

        let faults = FaultPlan::armed();
        faults.truncate_next_write(10); // a prefix was sent
        let client = Client::new(addr.clone())
            .with_retries(3, Duration::from_millis(1))
            .with_faults(faults.clone());
        let err = client
            .call("POST", "/jobs", Some(&Json::obj([])))
            .unwrap_err();
        assert!(err.contains("torn request write"), "{err}");
        assert!(
            faults.take_torn_write().is_none(),
            "exactly one attempt was made: a possibly-delivered POST /jobs is never resent"
        );

        // The same failure on an idempotent request is retried: the
        // second attempt (no fault armed) proceeds to the read phase.
        faults.truncate_next_write(10);
        let err = client.call("GET", "/healthz", None).unwrap_err();
        assert!(
            !err.contains("torn request write"),
            "the retry attempt ran and failed differently: {err}"
        );
        drop(client);
        server.join().unwrap();
    }
}
