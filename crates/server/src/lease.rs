//! Subtree leases: fault-tolerant distributed exploration.
//!
//! In `serve --distributed` mode a job is not explored by the claiming
//! job-worker thread directly. Instead the coordinator serialises the
//! job into a chain of **subtree leases**: each lease carries the
//! authoritative frontier (a [`CheckpointDoc`]) plus a bounded schedule
//! *slice*, and is handed to exactly one worker process at a time. The
//! worker resumes the sequential engine, explores until the slice budget
//! (or the whole job) is exhausted, and returns the end-of-slice
//! frontier, the slice's bugs and cumulative stats. The coordinator
//! installs the returned frontier and offers the next lease.
//!
//! Because at most one lease per job is outstanding and every slice
//! resumes the *sequential* engine from the previous slice's frontier,
//! the final stats are byte-identical to an uninterrupted sequential run
//! — at any worker count, and under any crash/reassignment interleaving.
//! Parallelism comes from running *jobs* concurrently, not from
//! splitting one job's frontier across racing workers (whose sleep-set
//! explored sets would be run-to-run nondeterministic).
//!
//! ## Failure handling
//!
//! * **Worker crash / hang / `kill -9`** — the lease's deadline expires
//!   (heartbeat renewals stop), the coordinator bumps the lease *epoch*
//!   and makes it claimable again. The same frontier is re-explored, so
//!   nothing is lost and nothing is double-counted.
//! * **Zombie worker** — a late result carrying a superseded epoch is
//!   rejected with 409 and counted in
//!   `lazylocks_lease_zombie_results_total`; a duplicate resend of the
//!   *current* epoch's result is acknowledged idempotently — even after
//!   the coordinator has consumed the result and moved on (a bounded
//!   tombstone of consumed `(lease, epoch)` pairs keeps the ack
//!   available to a worker whose 200 was lost on the wire).
//! * **Undeliverable result** — a worker whose slice result is refused
//!   for any reason other than fencing (e.g. a frontier that outgrew
//!   even the widened distributed wire cap) reports a small
//!   `{"failed": reason}` document instead; the coordinator logs a
//!   `slice-failed` job event and re-leases the whole job as one slice,
//!   whose grant and completed result carry no checkpoint and therefore
//!   always fit.
//! * **No live workers** — after an unclaimed grace period the
//!   coordinator takes the lease over (epoch bump) and explores the
//!   slice in-process, so a job always terminates.
//! * **Coordinator restart** — leases are in-memory; the journal's
//!   `submit` records re-enqueue the job from scratch on restart, and
//!   determinism makes the re-run's result identical.

use crate::job::{scrubbed_result, JobRequest, JobTable};
use crate::journal::{lease_done_record, lease_grant_record, Journal};
use lazylocks::obs::ids;
use lazylocks::runtime::program_fingerprint;
use lazylocks::{
    minimize_schedule, BugReport, CancelToken, CheckpointState, ExploreConfig, ExploreOutcome,
    ExploreSession, ExploreStats, MetricsHandle, Observer, StrategyRegistry, Verdict,
};
use lazylocks_model::{Program, ThreadId};
use lazylocks_trace::{
    bug_kind_from_json, bug_kind_to_json, outcome_json, stats_from_json, stats_to_json,
    CheckpointDoc, CorpusStore, Json,
};
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lease-protocol knobs (the `serve --distributed` flags).
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// How long a granted lease stays valid without a renewal; a worker
    /// heartbeats every `ttl / 3`, so a crashed or hung worker misses
    /// its deadline and the lease is reassigned.
    pub ttl: Duration,
    /// Schedule budget per lease: each slice runs the engine for at most
    /// this many additional complete schedules before checkpointing.
    pub slice: usize,
    /// How long an offered lease may sit unclaimed before the
    /// coordinator explores it in-process (the zero-live-workers
    /// fallback that keeps every job terminating).
    pub grace: Duration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            ttl: Duration::from_millis(5_000),
            slice: 25_000,
            grace: Duration::from_millis(1_000),
        }
    }
}

/// One outstanding lease.
struct LeaseEntry {
    job: u64,
    /// Fencing token: bumped on every reassignment or takeover, so a
    /// zombie holding a superseded grant can never commit a result.
    epoch: u64,
    /// The wire body (program, spec, seed, limit, slice, checkpoint);
    /// grant-specific fields (lease id, epoch, ttl) are injected per
    /// grant.
    body: Json,
    claimed_by: Option<String>,
    /// Expiry of the current grant; `None` for an in-process takeover
    /// (the coordinator cannot crash out from under itself).
    deadline: Option<Instant>,
    /// When the lease (re-)became claimable — starts the grace clock.
    offered_at: Instant,
    result: Option<Json>,
}

struct LeaseInner {
    next_id: u64,
    leases: BTreeMap<u64, LeaseEntry>,
    /// Tombstones of consumed leases, newest last, capped at
    /// [`CONSUMED_TOMBSTONES`]: a worker resending a result whose 200
    /// was lost still gets the idempotent duplicate ack after the
    /// coordinator consumed the original and dropped the live entry.
    consumed: VecDeque<(u64, u64)>,
}

/// How many consumed `(lease, epoch)` pairs are remembered for late
/// duplicate acks. Old tombstones age out; a resend older than this
/// window degrades to the 409 a withdrawn lease gets, which a worker
/// already treats as "superseded".
const CONSUMED_TOMBSTONES: usize = 1024;

/// Wire body cap for distributed mode, applied by `serve --distributed`
/// to incoming requests and by the worker's client to responses. Lease
/// grants and slice results embed checkpoint frontiers whose size grows
/// with the explored tree — far past the 1 MiB that bounds every other
/// route — and an undeliverable result must never be the steady state
/// (see the failure-handling notes above).
pub const DISTRIBUTED_BODY_CAP: usize = 64 << 20;

/// What [`LeaseTable::wait`] resolved to.
pub enum LeaseWait {
    /// A worker returned the slice result (already validated by epoch).
    Result(Json),
    /// Nobody claimed the lease within the grace period: the coordinator
    /// has taken it over (epoch bumped) and should run the slice
    /// in-process, then submit under the returned epoch.
    TakeOver { body: Json, epoch: u64 },
    /// The job was cancelled (token or deadline) while waiting.
    Cancelled,
}

/// The coordinator's lease table: every outstanding lease, behind one
/// mutex, with a condvar waking the per-job coordinator loop when a
/// result lands.
pub struct LeaseTable {
    inner: Mutex<LeaseInner>,
    changed: Condvar,
    config: LeaseConfig,
    metrics: MetricsHandle,
    journal: Option<Arc<Journal>>,
}

impl LeaseTable {
    /// A table using `config`, recording protocol counters on `metrics`
    /// and journalling grants/completions when `journal` is present.
    pub fn new(
        config: LeaseConfig,
        metrics: MetricsHandle,
        journal: Option<Arc<Journal>>,
    ) -> LeaseTable {
        LeaseTable {
            inner: Mutex::new(LeaseInner {
                next_id: 0,
                leases: BTreeMap::new(),
                consumed: VecDeque::new(),
            }),
            changed: Condvar::new(),
            config,
            metrics,
            journal,
        }
    }

    /// The protocol knobs this table runs under.
    pub fn config(&self) -> &LeaseConfig {
        &self.config
    }

    fn journal_append(&self, record: &Json) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(record) {
                eprintln!(
                    "warning: journal append to {} failed: {e}",
                    journal.path().display()
                );
            }
        }
    }

    /// Offers a new lease for `job` with wire body `body`; returns the
    /// lease id. The lease starts unclaimed at epoch 1.
    pub fn offer(&self, job: u64, body: Json) -> u64 {
        let mut t = self.inner.lock().unwrap();
        t.next_id += 1;
        let id = t.next_id;
        t.leases.insert(
            id,
            LeaseEntry {
                job,
                epoch: 1,
                body,
                claimed_by: None,
                deadline: None,
                offered_at: Instant::now(),
                result: None,
            },
        );
        id
    }

    /// Worker side (`POST /leases/claim`): grants the oldest claimable
    /// lease to `worker`, or `None` when nothing is claimable. A lease
    /// is claimable when unclaimed, when its current grant has expired
    /// (the epoch is bumped — reassignment), or when `worker` already
    /// holds it (idempotent re-grant of the same epoch, so a retried
    /// claim after a torn response never wedges the worker).
    pub fn claim(&self, worker: &str) -> Option<Json> {
        let now = Instant::now();
        let mut t = self.inner.lock().unwrap();
        let ttl = self.config.ttl;
        for (&id, entry) in t.leases.iter_mut() {
            if entry.result.is_some() {
                continue;
            }
            let held_by_caller = entry.claimed_by.as_deref() == Some(worker);
            let expired = entry.deadline.is_some_and(|d| now >= d);
            let claimable = entry.claimed_by.is_none() || expired || held_by_caller;
            if !claimable {
                continue;
            }
            if expired && !held_by_caller {
                // The previous holder crashed or hung: fence it out.
                entry.epoch += 1;
                self.metrics.shard().inc(ids::LEASES_REASSIGNED);
            }
            entry.claimed_by = Some(worker.to_string());
            entry.deadline = Some(now + ttl);
            self.metrics.shard().inc(ids::LEASES_GRANTED);
            self.journal_append(&lease_grant_record(entry.job, id, entry.epoch, worker));
            let mut grant = entry.body.clone();
            if let Json::Obj(pairs) = &mut grant {
                pairs.push(("lease".to_string(), Json::Int(id as i128)));
                pairs.push(("job".to_string(), Json::Int(entry.job as i128)));
                pairs.push(("epoch".to_string(), Json::Int(entry.epoch as i128)));
                pairs.push(("ttl_ms".to_string(), Json::Int(ttl.as_millis() as i128)));
            }
            return Some(grant);
        }
        None
    }

    /// Worker heartbeat (`POST /leases/<id>/renew`): extends the
    /// deadline when `worker` still holds `lease` at `epoch`; a stale
    /// epoch or unknown lease is refused so a fenced-out worker learns
    /// it lost the lease.
    pub fn renew(&self, lease: u64, worker: &str, epoch: u64) -> Result<u64, String> {
        let mut t = self.inner.lock().unwrap();
        let entry = t
            .leases
            .get_mut(&lease)
            .ok_or_else(|| format!("no lease {lease}"))?;
        if entry.epoch != epoch || entry.claimed_by.as_deref() != Some(worker) {
            return Err(format!(
                "lease {lease} is no longer held by {worker:?} at epoch {epoch}"
            ));
        }
        entry.deadline = Some(Instant::now() + self.config.ttl);
        Ok(epoch)
    }

    /// Accepts or rejects a slice result (`POST /leases/<id>/result`).
    /// Returns `(status, body)`: 200 for the current epoch (idempotent —
    /// a duplicate resend of an already-accepted result is acknowledged
    /// again, not double-applied, including after the coordinator has
    /// consumed it), 409 for an unknown lease or a stale epoch (the
    /// zombie-worker path).
    pub fn submit_result(&self, lease: u64, epoch: u64, result: Json) -> (u16, Json) {
        let mut t = self.inner.lock().unwrap();
        let Some(entry) = t.leases.get_mut(&lease) else {
            if t.consumed.iter().any(|&(l, e)| l == lease && e == epoch) {
                // The original landed but its 200 was lost: acknowledge
                // the resend without re-applying anything.
                return (
                    200,
                    Json::obj([
                        ("accepted", Json::Bool(true)),
                        ("duplicate", Json::Bool(true)),
                    ]),
                );
            }
            self.metrics.shard().inc(ids::LEASE_ZOMBIE_RESULTS);
            return (
                409,
                Json::obj([(
                    "error",
                    Json::Str(format!("no lease {lease} (already consumed or withdrawn)")),
                )]),
            );
        };
        if entry.epoch != epoch {
            self.metrics.shard().inc(ids::LEASE_ZOMBIE_RESULTS);
            return (
                409,
                Json::obj([(
                    "error",
                    Json::Str(format!(
                        "stale epoch {epoch} for lease {lease} (current {})",
                        entry.epoch
                    )),
                )]),
            );
        }
        if entry.result.is_some() {
            return (
                200,
                Json::obj([
                    ("accepted", Json::Bool(true)),
                    ("duplicate", Json::Bool(true)),
                ]),
            );
        }
        entry.result = Some(result);
        let (job, epoch) = (entry.job, entry.epoch);
        self.metrics.shard().inc(ids::LEASE_SLICES_COMPLETED);
        self.journal_append(&lease_done_record(job, lease, epoch));
        self.changed.notify_all();
        (
            200,
            Json::obj([
                ("accepted", Json::Bool(true)),
                ("duplicate", Json::Bool(false)),
            ]),
        )
    }

    /// Removes a lease (job cancelled or errored before the slice came
    /// back). A zombie posting afterwards gets a 409.
    pub fn withdraw(&self, lease: u64) {
        let mut t = self.inner.lock().unwrap();
        t.leases.remove(&lease);
    }

    /// Coordinator side: blocks until the lease resolves — a result
    /// arrives, cancellation wins, or nobody claims within the grace
    /// period and the coordinator takes over. Expired grants are
    /// reassigned (epoch bump) from in here as well, so a crashed worker
    /// is fenced out even if no other worker ever polls `claim`.
    pub fn wait(&self, lease: u64, cancel: &CancelToken, deadline: Option<Instant>) -> LeaseWait {
        let mut t = self.inner.lock().unwrap();
        loop {
            if cancel.is_cancelled() || deadline.is_some_and(|d| Instant::now() >= d) {
                t.leases.remove(&lease);
                return LeaseWait::Cancelled;
            }
            let Some(entry) = t.leases.get_mut(&lease) else {
                return LeaseWait::Cancelled;
            };
            if entry.result.is_some() {
                let entry = t.leases.remove(&lease).expect("checked above");
                t.consumed.push_back((lease, entry.epoch));
                while t.consumed.len() > CONSUMED_TOMBSTONES {
                    t.consumed.pop_front();
                }
                return LeaseWait::Result(entry.result.expect("checked above"));
            }
            let now = Instant::now();
            match entry.claimed_by {
                Some(_) if entry.deadline.is_some_and(|d| now >= d) => {
                    // Missed renewals: fence the holder out and restart
                    // the grace clock for live workers (or the inline
                    // fallback) to pick the subtree up again.
                    entry.epoch += 1;
                    entry.claimed_by = None;
                    entry.deadline = None;
                    entry.offered_at = now;
                    self.metrics.shard().inc(ids::LEASES_REASSIGNED);
                }
                None if now.duration_since(entry.offered_at) >= self.config.grace => {
                    entry.epoch += 1;
                    entry.claimed_by = Some("coordinator".to_string());
                    entry.deadline = None;
                    self.metrics.shard().inc(ids::LEASE_INLINE_SLICES);
                    return LeaseWait::TakeOver {
                        body: entry.body.clone(),
                        epoch: entry.epoch,
                    };
                }
                _ => {}
            }
            let (guard, _) = self
                .changed
                .wait_timeout(t, Duration::from_millis(20))
                .unwrap();
            t = guard;
        }
    }
}

/// Builds the wire body for a job's next lease: everything a worker
/// needs to run one slice, with the frontier checkpoint inlined.
fn lease_body(request: &JobRequest, slice: usize, checkpoint: &Option<Json>) -> Json {
    Json::obj([
        ("program", Json::Str(request.program_source.clone())),
        ("spec", Json::Str(request.spec.clone())),
        ("seed", Json::Int(i128::from(request.seed))),
        ("limit", Json::Int(request.limit as i128)),
        (
            "preemptions",
            request
                .preemptions
                .map(|p| Json::Int(i128::from(p)))
                .unwrap_or(Json::Null),
        ),
        ("stop_on_bug", Json::Bool(request.stop_on_bug)),
        ("slice", Json::Int(slice as i128)),
        ("checkpoint", checkpoint.clone().unwrap_or(Json::Null)),
    ])
}

/// Captures the final frontier snapshot a slice-bounded run emits
/// through `ExploreConfig::checkpoint_on_stop`.
#[derive(Default)]
struct CheckpointCapture(Mutex<Option<CheckpointState>>);

impl Observer for CheckpointCapture {
    fn on_checkpoint(&self, checkpoint: &CheckpointState) {
        *self.0.lock().unwrap() = Some(checkpoint.clone());
    }
}

/// Runs one lease slice — the worker half of the protocol, also used by
/// the coordinator's in-process fallback. Resumes the sequential engine
/// from the lease's checkpoint (if any), explores at most `slice` more
/// complete schedules, and returns the slice result document:
/// `{completed, strategy, stats, bugs, checkpoint}`.
pub fn run_slice(body: &Json) -> Result<Json, String> {
    let str_field = |key: &str| {
        body.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("lease body missing {key:?}"))
    };
    let u64_field = |key: &str| {
        body.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("lease body missing {key:?}"))
    };
    let source = str_field("program")?;
    let spec = str_field("spec")?.to_string();
    let seed = u64_field("seed")?;
    let limit = u64_field("limit")? as usize;
    let slice = (u64_field("slice")? as usize).max(1);
    let stop_on_bug = body
        .get("stop_on_bug")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let preemptions = match body.get("preemptions") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("lease body: bad \"preemptions\"".to_string())? as u32,
        ),
    };
    let program = Program::parse(source).map_err(|e| format!("program: {e}"))?;

    let (resume, start) = match body.get("checkpoint") {
        None | Some(Json::Null) => (None, 0),
        Some(cp) => {
            let doc = CheckpointDoc::from_json(cp).map_err(|e| format!("checkpoint: {e}"))?;
            doc.check_matches(&program, &spec, seed)?;
            let mut state = doc.state;
            // The frontier was captured at a slice-budget stop, so its
            // stats record that stop; the resumed run is not stopped.
            state.stats.limit_hit = false;
            state.stats.cancelled = false;
            let start = state.stats.schedules;
            (Some(Arc::new(state)), start)
        }
    };

    let mut config = ExploreConfig::with_limit(limit.min(start.saturating_add(slice)))
        .seeded(seed)
        .checkpointing_on_stop();
    config.preemption_bound = preemptions;
    config.stop_on_bug = stop_on_bug;
    config.resume_from = resume;

    let capture = Arc::new(CheckpointCapture::default());
    let outcome = ExploreSession::new(&program)
        .with_config(config)
        .progress_every(0)
        .observe_arc(capture.clone())
        .run_spec(&spec)
        .map_err(|e| format!("spec: {e}"))?;

    // Incomplete iff the slice budget (not the job budget) stopped it.
    let completed = !(outcome.stats.limit_hit && outcome.stats.schedules < limit);
    let checkpoint = if completed {
        Json::Null
    } else {
        match capture.0.lock().unwrap().take() {
            Some(state) => CheckpointDoc {
                program_name: program.name().to_string(),
                program_fingerprint: program_fingerprint(&program),
                strategy_spec: spec.clone(),
                seed,
                state,
            }
            .to_json(),
            // Strategy without checkpoint support (dfs, random, …): no
            // frontier to chain. The coordinator falls back to a single
            // whole-job lease.
            None => Json::Null,
        }
    };
    Ok(Json::obj([
        ("completed", Json::Bool(completed)),
        ("strategy", Json::Str(outcome.strategy_id.clone())),
        ("stats", stats_to_json(&outcome.stats)),
        (
            "bugs",
            Json::Arr(
                outcome
                    .bugs
                    .iter()
                    .map(|b| {
                        Json::obj([
                            ("kind", bug_kind_to_json(&b.kind)),
                            (
                                "schedule",
                                Json::Arr(
                                    b.schedule
                                        .iter()
                                        .map(|t| Json::Int(i128::from(t.0)))
                                        .collect(),
                                ),
                            ),
                            ("trace_len", Json::Int(b.trace_len as i128)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("checkpoint", checkpoint),
    ]))
}

/// Decodes the bug reports a slice result carries.
fn decode_bugs(result: &Json) -> Result<Vec<BugReport>, String> {
    let Some(bugs) = result.get("bugs").and_then(Json::as_arr) else {
        return Err("slice result missing \"bugs\"".to_string());
    };
    bugs.iter()
        .map(|b| {
            let kind = bug_kind_from_json(b.get("kind").ok_or("bug missing \"kind\"")?)
                .map_err(|e| format!("bug kind: {e}"))?;
            let schedule = b
                .get("schedule")
                .and_then(Json::as_arr)
                .ok_or("bug missing \"schedule\"")?
                .iter()
                .map(|t| {
                    t.as_u64()
                        .and_then(|t| u16::try_from(t).ok())
                        .map(ThreadId)
                        .ok_or_else(|| "bad thread id in bug schedule".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            let trace_len = b
                .get("trace_len")
                .and_then(Json::as_u64)
                .ok_or("bug missing \"trace_len\"")? as usize;
            Ok(BugReport {
                kind,
                schedule,
                trace_len,
            })
        })
        .collect()
}

/// Runs one job through the lease chain — the distributed counterpart
/// of the in-process `execute`. Offers leases slice by slice, survives
/// worker loss via epoch-fenced reassignment, falls back to in-process
/// slices when nobody claims, and assembles the same scrubbed result
/// document schema the sequential path produces (minus the per-job
/// metrics/profile embeds, which cannot be reconstructed across a
/// process split).
pub fn execute_distributed(
    table: &Arc<JobTable>,
    leases: &Arc<LeaseTable>,
    id: u64,
    request: &JobRequest,
    cancel: CancelToken,
    corpus_dir: Option<&Path>,
) -> Result<Json, String> {
    let program = Program::parse(&request.program_source).map_err(|e| format!("program: {e}"))?;
    let registry = StrategyRegistry::default();
    let strategy_id = registry
        .create(&request.spec)
        .map_err(|e| format!("spec: {e}"))?
        .name();
    let deadline = request
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    let mut checkpoint: Option<Json> = None;
    let mut bugs: Vec<BugReport> = Vec::new();
    let mut stats = ExploreStats::default();
    let mut whole_job = false;
    let mut cancelled = false;

    loop {
        let slice = if whole_job {
            request.limit
        } else {
            leases.config().slice
        };
        let lease = leases.offer(id, lease_body(request, slice, &checkpoint));
        table.push_job_event(
            id,
            "lease",
            vec![
                ("lease", Json::Int(lease as i128)),
                ("start", Json::Int(stats.schedules as i128)),
            ],
        );
        let result = loop {
            match leases.wait(lease, &cancel, deadline) {
                LeaseWait::Result(result) => break Some(result),
                LeaseWait::Cancelled => break None,
                LeaseWait::TakeOver { body, epoch } => match run_slice(&body) {
                    Ok(result) => {
                        leases.submit_result(lease, epoch, result);
                    }
                    Err(e) => {
                        leases.withdraw(lease);
                        return Err(e);
                    }
                },
            }
        };
        let Some(result) = result else {
            cancelled = true;
            break;
        };

        if let Some(reason) = result.get("failed").and_then(Json::as_str) {
            // The worker ran the slice but could not deliver its result
            // (e.g. the frontier outgrew the wire cap) and reported this
            // small failure document instead. Re-lease the whole job as
            // one slice: its grant and its completed result carry no
            // checkpoint, so they always fit. Bugs already consumed from
            // earlier slices are kept — the whole-job re-run rediscovers
            // them and the dedup-by-kind mirror absorbs the overlap.
            if whole_job {
                // A failed *whole-job* slice cannot fall back any
                // further; fail the job loudly instead of looping.
                return Err(format!("whole-job lease failed at the worker: {reason}"));
            }
            table.push_job_event(
                id,
                "slice-failed",
                vec![
                    ("lease", Json::Int(lease as i128)),
                    ("reason", Json::Str(reason.to_string())),
                ],
            );
            checkpoint = None;
            stats = ExploreStats::default();
            whole_job = true;
            continue;
        }

        stats = stats_from_json(
            result
                .get("stats")
                .ok_or("slice result missing \"stats\"")?,
        )
        .map_err(|e| format!("slice stats: {e}"))?;
        for bug in decode_bugs(&result)? {
            // Mirror the sequential BugSink: dedup by kind, cap 64,
            // discovery order.
            if bugs.len() < 64 && !bugs.iter().any(|b| b.kind == bug.kind) {
                table.push_job_event(
                    id,
                    "bug",
                    vec![
                        ("kind", bug_kind_to_json(&bug.kind)),
                        ("trace_len", Json::Int(bug.trace_len as i128)),
                        ("schedule_len", Json::Int(bug.schedule.len() as i128)),
                    ],
                );
                bugs.push(bug);
            }
        }
        let completed = result
            .get("completed")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        table.push_job_event(
            id,
            "slice",
            vec![
                ("lease", Json::Int(lease as i128)),
                ("schedules", Json::Int(stats.schedules as i128)),
                ("completed", Json::Bool(completed)),
            ],
        );
        if completed {
            break;
        }
        match result.get("checkpoint") {
            Some(cp @ Json::Obj(_)) => checkpoint = Some(cp.clone()),
            _ => {
                // Non-checkpointable strategy: re-lease the whole job as
                // one slice (the partial slice's work is discarded; the
                // full run is deterministic, so nothing is lost).
                checkpoint = None;
                stats = ExploreStats::default();
                whole_job = true;
            }
        }
    }

    if cancelled {
        stats.cancelled = true;
    }
    let verdict = if stats.found_bug() || !bugs.is_empty() {
        Verdict::BugFound
    } else if stats.cancelled {
        Verdict::Cancelled
    } else if stats.limit_hit {
        Verdict::LimitHit
    } else {
        Verdict::Clean
    };

    let reported: Vec<BugReport> = if request.minimize {
        bugs.iter()
            .map(|b| minimize_schedule(&program, b))
            .collect()
    } else {
        bugs.clone()
    };
    let mut trace_paths = Vec::new();
    let mut trace_errors = Vec::new();
    if let Some(dir) = corpus_dir {
        match CorpusStore::open(dir) {
            Ok(store) => {
                for bug in &reported {
                    let mut artifact = lazylocks_trace::TraceArtifact::from_bug(
                        &program,
                        &request.spec,
                        request.seed,
                        bug,
                    )
                    .with_stats(&stats);
                    artifact.minimized = request.minimize;
                    match store.save(&artifact) {
                        Ok(saved) => trace_paths.push(saved.path().to_path_buf()),
                        Err(e) => trace_errors.push(format!("cannot persist trace: {e}")),
                    }
                }
            }
            Err(e) => trace_errors.push(format!("cannot open corpus {}: {e}", dir.display())),
        }
    }

    let outcome = ExploreOutcome {
        stats,
        bugs: Vec::new(),
        verdict,
        strategy_id,
    };
    let mut doc = outcome_json(
        program.name(),
        &request.spec,
        &outcome,
        &reported,
        request.minimize,
        &trace_paths,
    );
    if !trace_errors.is_empty() {
        if let Json::Obj(pairs) = &mut doc {
            pairs.push((
                "trace_errors".to_string(),
                Json::Arr(trace_errors.into_iter().map(Json::Str).collect()),
            ));
        }
    }
    Ok(scrubbed_result(doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABBA: &str = "\
program deadlock
mutex a
mutex b
thread T1 {
  lock a
  lock b
  unlock b
  unlock a
}
thread T2 {
  lock b
  lock a
  unlock a
  unlock b
}
";

    fn request(limit: usize) -> JobRequest {
        JobRequest {
            program_source: ABBA.to_string(),
            spec: "dpor(sleep=true)".to_string(),
            limit,
            seed: 7,
            preemptions: None,
            stop_on_bug: false,
            deadline_ms: None,
            minimize: false,
            priority: 0,
            progress_interval: crate::job::DEFAULT_PROGRESS_INTERVAL,
        }
    }

    fn table(ttl_ms: u64, grace_ms: u64) -> LeaseTable {
        LeaseTable::new(
            LeaseConfig {
                ttl: Duration::from_millis(ttl_ms),
                slice: 4,
                grace: Duration::from_millis(grace_ms),
            },
            MetricsHandle::enabled(),
            None,
        )
    }

    #[test]
    fn claim_grants_oldest_and_regrants_idempotently() {
        let t = table(60_000, 60_000);
        let a = t.offer(1, lease_body(&request(100), 4, &None));
        let b = t.offer(2, lease_body(&request(100), 4, &None));
        let grant = t.claim("w1").unwrap();
        assert_eq!(grant.get("lease").unwrap().as_u64(), Some(a));
        assert_eq!(grant.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(grant.get("job").unwrap().as_u64(), Some(1));
        // A retried claim by the same worker re-grants the same lease at
        // the same epoch instead of handing it the second lease.
        let again = t.claim("w1").unwrap();
        assert_eq!(again.get("lease").unwrap().as_u64(), Some(a));
        assert_eq!(again.get("epoch").unwrap().as_u64(), Some(1));
        // Another worker gets the next lease.
        let other = t.claim("w2").unwrap();
        assert_eq!(other.get("lease").unwrap().as_u64(), Some(b));
        assert!(t.claim("w3").is_none(), "both leases are held");
    }

    #[test]
    fn expired_grants_are_reassigned_with_a_bumped_epoch() {
        let t = table(1, 60_000);
        let lease = t.offer(1, lease_body(&request(100), 4, &None));
        let grant = t.claim("crashy").unwrap();
        assert_eq!(grant.get("epoch").unwrap().as_u64(), Some(1));
        std::thread::sleep(Duration::from_millis(20));
        let regrant = t.claim("steady").unwrap();
        assert_eq!(regrant.get("lease").unwrap().as_u64(), Some(lease));
        assert_eq!(regrant.get("epoch").unwrap().as_u64(), Some(2));
        // The zombie's renewal and result are both fenced out...
        assert!(t.renew(lease, "crashy", 1).is_err());
        let (status, _) = t.submit_result(lease, 1, Json::Null);
        assert_eq!(status, 409);
        // ...while the new holder renews and commits.
        assert_eq!(t.renew(lease, "steady", 2), Ok(2));
        let (status, body) = t.submit_result(lease, 2, Json::obj([("ok", Json::Bool(true))]));
        assert_eq!(status, 200);
        assert_eq!(body.get("duplicate").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn duplicate_results_ack_idempotently_and_unknown_leases_409() {
        let t = table(60_000, 60_000);
        let lease = t.offer(1, lease_body(&request(100), 4, &None));
        t.claim("w").unwrap();
        let (s1, b1) = t.submit_result(lease, 1, Json::obj([("n", Json::Int(1))]));
        assert_eq!(s1, 200);
        assert_eq!(b1.get("duplicate").unwrap().as_bool(), Some(false));
        // A resend (torn response, client retry) is acknowledged, not
        // double-applied.
        let (s2, b2) = t.submit_result(lease, 1, Json::obj([("n", Json::Int(1))]));
        assert_eq!(s2, 200);
        assert_eq!(b2.get("duplicate").unwrap().as_bool(), Some(true));
        let (s3, _) = t.submit_result(99, 1, Json::Null);
        assert_eq!(s3, 409, "unknown lease is a zombie result");
        // Even after the coordinator consumes the result (removing the
        // live entry), a same-epoch resend is acknowledged from the
        // tombstone; a wrong-epoch resend is not.
        match t.wait(lease, &CancelToken::new(), None) {
            LeaseWait::Result(_) => {}
            _ => panic!("expected the submitted result"),
        }
        let (s4, b4) = t.submit_result(lease, 1, Json::obj([("n", Json::Int(1))]));
        assert_eq!(s4, 200);
        assert_eq!(b4.get("duplicate").unwrap().as_bool(), Some(true));
        let (s5, _) = t.submit_result(lease, 2, Json::Null);
        assert_eq!(s5, 409, "a consumed lease only acks its own epoch");
    }

    #[test]
    fn wait_takes_over_an_unclaimed_lease_after_the_grace_period() {
        let t = table(60_000, 1);
        let lease = t.offer(1, lease_body(&request(100), 4, &None));
        match t.wait(lease, &CancelToken::new(), None) {
            LeaseWait::TakeOver { epoch, body } => {
                assert_eq!(epoch, 2, "takeover fences out late claimants");
                assert!(body.get("program").is_some());
                // A worker arriving after the takeover gets nothing.
                assert!(t.claim("late").is_none());
            }
            _ => panic!("expected a takeover"),
        }
    }

    #[test]
    fn slice_chain_matches_an_uninterrupted_run() {
        // One-shot reference.
        let whole = run_slice(&lease_body(&request(10_000), 10_000, &None)).unwrap();
        assert_eq!(whole.get("completed").unwrap().as_bool(), Some(true));

        // Chained 4-schedule slices over the same job.
        let mut checkpoint: Option<Json> = None;
        let mut last = None;
        for _ in 0..1000 {
            let result = run_slice(&lease_body(&request(10_000), 4, &checkpoint)).unwrap();
            if result.get("completed").unwrap().as_bool() == Some(true) {
                last = Some(result);
                break;
            }
            checkpoint = Some(result.get("checkpoint").unwrap().clone());
        }
        let last = last.expect("the chain must terminate");
        // Wall time is the one legitimately nondeterministic field;
        // final job documents scrub it, so compare scrubbed stats.
        assert_eq!(
            scrubbed_result(last.get("stats").unwrap().clone()).encode(),
            scrubbed_result(whole.get("stats").unwrap().clone()).encode(),
            "chained slices must reproduce the uninterrupted stats byte-for-byte"
        );
    }

    #[test]
    fn execute_distributed_via_inline_fallback_produces_a_bug_found_doc() {
        let jobs = Arc::new(JobTable::default());
        let req = request(10_000);
        let id = jobs.submit(req.clone(), "deadlock".to_string()).unwrap();
        let leases = Arc::new(table(60_000, 1));
        let doc = execute_distributed(&jobs, &leases, id, &req, CancelToken::new(), None).unwrap();
        assert_eq!(doc.get("verdict").unwrap().as_str(), Some("bug-found"));
        assert_eq!(doc.get("strategy").unwrap().as_str(), Some("dpor-sleep"));
        assert_eq!(
            doc.get("stats")
                .unwrap()
                .get("wall_time_us")
                .unwrap()
                .as_i64(),
            Some(0),
            "result documents are scrubbed"
        );
        assert_eq!(
            doc.get("bugs").unwrap().as_arr().unwrap().len(),
            1,
            "the ABBA deadlock is reported once"
        );
    }

    #[test]
    fn non_checkpointable_strategies_fall_back_to_a_whole_job_lease() {
        let jobs = Arc::new(JobTable::default());
        let mut req = request(50);
        req.spec = "dfs".to_string();
        let id = jobs.submit(req.clone(), "deadlock".to_string()).unwrap();
        let leases = Arc::new(table(60_000, 1));
        let doc = execute_distributed(&jobs, &leases, id, &req, CancelToken::new(), None).unwrap();
        // dfs emits no checkpoints; the fallback still terminates with
        // the same verdict a sequential dfs run reaches.
        assert_eq!(doc.get("strategy").unwrap().as_str(), Some("dfs"));
        assert!(doc.get("verdict").unwrap().as_str().is_some());
    }
}
