//! The [`Executor`]: stepwise controlled execution of a guest program.

use crate::event::{Event, EventId};
use crate::state::StateSnapshot;
use lazylocks_model::{
    Instr, MutexId, Operand, Program, Reg, ThreadId, ThreadSet, Value, VisibleKind,
};
use std::fmt;

/// Safety valve: maximum local (invisible) instructions executed in one
/// stretch before the thread is failed with
/// [`FaultKind::LocalStepBudget`]. Guards against invisible infinite loops
/// (`top: jump top`), which would otherwise hang the interpreter without
/// the scheduler ever regaining control.
pub const LOCAL_STEP_BUDGET: usize = 65_536;

/// Scheduling status of one guest thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadStatus {
    /// Has more instructions to run (though it may currently be *disabled*
    /// if its next operation is a `lock` on a held mutex).
    Runnable,
    /// Ran to the end of its code.
    Finished,
    /// Stopped by a fault (failed assertion, unlock-without-hold, local
    /// step budget).
    Failed,
}

impl ThreadStatus {
    fn discriminant(self) -> u8 {
        match self {
            ThreadStatus::Runnable => 0,
            ThreadStatus::Finished => 1,
            ThreadStatus::Failed => 2,
        }
    }
}

/// Why a thread was failed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `assert` with a zero condition.
    AssertFailed {
        /// The assertion's message.
        msg: String,
    },
    /// `unlock m` while not owning `m`.
    UnlockNotHeld {
        /// The mutex that was not held.
        mutex: MutexId,
    },
    /// More than [`LOCAL_STEP_BUDGET`] invisible instructions without a
    /// visible operation.
    LocalStepBudget,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::AssertFailed { msg } => write!(f, "assertion failed: {msg}"),
            FaultKind::UnlockNotHeld { mutex } => {
                write!(f, "unlocked {mutex} without holding it")
            }
            FaultKind::LocalStepBudget => write!(f, "local step budget exhausted"),
        }
    }
}

/// A fault that stopped a thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulting thread.
    pub thread: ThreadId,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// What went wrong.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at pc {}: {}", self.thread, self.pc, self.kind)
    }
}

/// Result of one [`Executor::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// The visible operation performed, if the step got that far. `None`
    /// only when the visible instruction itself faulted
    /// (unlock-without-hold).
    pub event: Option<Event>,
    /// A fault raised by this step — either by the visible instruction or
    /// by the invisible instructions that ran immediately after it.
    pub fault: Option<Fault>,
}

/// Overall phase of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecPhase {
    /// At least one thread is enabled.
    Running,
    /// Every thread is finished or failed.
    Done,
    /// No thread is enabled but at least one is runnable: every runnable
    /// thread is blocked on a lock. The classic deadlock.
    Deadlock {
        /// The blocked threads and the mutexes they wait on.
        waiting: Vec<(ThreadId, MutexId)>,
    },
}

/// Per-thread control state. Registers live in the executor's flat
/// register file (`Executor::regs`), located by `reg_base`/`reg_len`, so
/// cloning an executor copies a fixed number of flat vectors instead of
/// one heap allocation per thread — the executor clone is the single most
/// frequent operation of snapshot-based exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    pc: usize,
    status: ThreadStatus,
    reg_base: u32,
    reg_len: u32,
}

/// Stepwise interpreter for one execution of a program.
///
/// The executor maintains the invariant that every runnable thread's `pc`
/// rests on a *visible* instruction (invisible instructions are run eagerly
/// after initialisation and after every step). The scheduler — whoever calls
/// [`step`](Executor::step) — therefore always chooses between visible
/// operations, exactly the granularity of the paper's schedules.
///
/// Cloning an executor snapshots the machine; exploration engines clone at
/// every scheduling point and restore by dropping back to an earlier clone.
#[derive(Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    shared: Vec<Value>,
    mutex_owner: Vec<Option<ThreadId>>,
    frames: Vec<Frame>,
    /// Flat register file of every thread, located by the frames'
    /// `reg_base`/`reg_len`.
    regs: Vec<Value>,
    /// Number of visible events each thread has performed.
    event_counts: Vec<u32>,
    /// Total visible events performed.
    events_total: u64,
    /// Faults raised so far, in order.
    faults: Vec<Fault>,
}

impl<'p> Executor<'p> {
    /// Starts a fresh execution: shared variables at their initial values,
    /// registers zeroed, every thread at its first visible instruction.
    pub fn new(program: &'p Program) -> Self {
        let mut reg_total = 0u32;
        let frames: Vec<Frame> = program
            .threads()
            .iter()
            .map(|t| {
                let reg_len = thread_reg_count(&t.code) as u32;
                let reg_base = reg_total;
                reg_total += reg_len;
                Frame {
                    pc: 0,
                    status: if t.code.is_empty() {
                        ThreadStatus::Finished
                    } else {
                        ThreadStatus::Runnable
                    },
                    reg_base,
                    reg_len,
                }
            })
            .collect();
        let mut exec = Executor {
            program,
            shared: program.vars().iter().map(|v| v.init).collect(),
            mutex_owner: vec![None; program.mutexes().len()],
            frames,
            regs: vec![0; reg_total as usize],
            event_counts: vec![0; program.thread_count()],
            events_total: 0,
            faults: Vec::new(),
        };
        for t in 0..exec.frames.len() {
            exec.advance_locals(ThreadId::from_index(t));
        }
        exec
    }

    /// The register slice of thread `tix`.
    #[inline]
    fn thread_regs(&self, tix: usize) -> &[Value] {
        let f = &self.frames[tix];
        &self.regs[f.reg_base as usize..(f.reg_base + f.reg_len) as usize]
    }

    /// One register of thread `tix`, writable.
    #[inline]
    fn reg_mut(&mut self, tix: usize, reg: usize) -> &mut Value {
        let f = &self.frames[tix];
        debug_assert!(reg < f.reg_len as usize);
        &mut self.regs[f.reg_base as usize + reg]
    }

    /// The program being executed.
    #[inline]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current status of `thread`.
    #[inline]
    pub fn status(&self, thread: ThreadId) -> ThreadStatus {
        self.frames[thread.index()].status
    }

    /// The next visible operation `thread` would perform, or `None` if the
    /// thread is finished or failed.
    pub fn next_visible(&self, thread: ThreadId) -> Option<VisibleKind> {
        let frame = &self.frames[thread.index()];
        if frame.status != ThreadStatus::Runnable {
            return None;
        }
        let code = &self.program.threads()[thread.index()].code;
        debug_assert!(frame.pc < code.len(), "runnable thread parked off-code");
        code[frame.pc].visible_kind()
    }

    /// `true` if `thread` can take a step right now: it is runnable and its
    /// next operation is not a `lock` on a mutex someone (including itself)
    /// already holds.
    pub fn is_enabled(&self, thread: ThreadId) -> bool {
        match self.next_visible(thread) {
            Some(VisibleKind::Lock(m)) => self.mutex_owner[m.index()].is_none(),
            Some(_) => true,
            None => false,
        }
    }

    /// The enabled threads, in thread-id order.
    ///
    /// Allocates; exploration hot loops should prefer
    /// [`enabled_iter`](Self::enabled_iter) or
    /// [`enabled_set`](Self::enabled_set).
    pub fn enabled_threads(&self) -> Vec<ThreadId> {
        self.enabled_iter().collect()
    }

    /// Iterates the enabled threads in thread-id order without allocating.
    #[inline]
    pub fn enabled_iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.program.thread_ids().filter(|&t| self.is_enabled(t))
    }

    /// The enabled threads as an allocation-free bitmask set.
    ///
    /// # Panics
    /// Panics if the program declares more than
    /// [`ThreadSet::MAX_THREADS`] threads (no such program is explorable
    /// in practice).
    pub fn enabled_set(&self) -> ThreadSet {
        self.enabled_iter().collect()
    }

    /// Number of enabled threads.
    pub fn enabled_count(&self) -> usize {
        self.enabled_iter().count()
    }

    /// Overall phase: running, done, or deadlocked.
    pub fn phase(&self) -> ExecPhase {
        if self.program.thread_ids().any(|t| self.is_enabled(t)) {
            return ExecPhase::Running;
        }
        let waiting: Vec<(ThreadId, MutexId)> = self
            .program
            .thread_ids()
            .filter_map(|t| match self.next_visible(t) {
                Some(VisibleKind::Lock(m)) => Some((t, m)),
                _ => None,
            })
            .collect();
        if waiting.is_empty() {
            ExecPhase::Done
        } else {
            ExecPhase::Deadlock { waiting }
        }
    }

    /// Faults raised so far.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Total visible events performed so far.
    #[inline]
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// Number of visible events `thread` has performed.
    #[inline]
    pub fn event_count(&self, thread: ThreadId) -> u32 {
        self.event_counts[thread.index()]
    }

    /// Current owner of `mutex`.
    #[inline]
    pub fn mutex_owner(&self, mutex: MutexId) -> Option<ThreadId> {
        self.mutex_owner[mutex.index()]
    }

    /// `true` if `thread` currently holds at least one mutex.
    pub fn holds_any_mutex(&self, thread: ThreadId) -> bool {
        self.mutex_owner.contains(&Some(thread))
    }

    /// Current value of a shared variable.
    #[inline]
    pub fn shared_value(&self, var: lazylocks_model::VarId) -> Value {
        self.shared[var.index()]
    }

    /// Executes one visible operation of `thread`, then runs its invisible
    /// instructions up to the next visible operation.
    ///
    /// # Panics
    /// Panics if `thread` is not enabled — schedulers must consult
    /// [`is_enabled`](Self::is_enabled) (or
    /// [`enabled_threads`](Self::enabled_threads)) first; calling with a
    /// blocked or finished
    /// thread is an exploration-engine bug, not a guest-program bug.
    pub fn step(&mut self, thread: ThreadId) -> StepOutcome {
        assert!(
            self.is_enabled(thread),
            "step() on non-enabled thread {thread}"
        );
        let tix = thread.index();
        let code = &self.program.threads()[tix].code;
        let pc = self.frames[tix].pc;
        let instr = &code[pc];

        let kind = match *instr {
            Instr::Load { dst, var } => {
                let v = self.shared[var.index()];
                *self.reg_mut(tix, dst.index()) = v;
                VisibleKind::Read(var)
            }
            Instr::Store { var, src } => {
                let v = self.eval(thread, src);
                self.shared[var.index()] = v;
                VisibleKind::Write(var)
            }
            Instr::Lock(m) => {
                debug_assert!(self.mutex_owner[m.index()].is_none());
                self.mutex_owner[m.index()] = Some(thread);
                VisibleKind::Lock(m)
            }
            Instr::Unlock(m) => {
                if self.mutex_owner[m.index()] != Some(thread) {
                    let fault = self.fail(thread, pc, FaultKind::UnlockNotHeld { mutex: m });
                    return StepOutcome {
                        event: None,
                        fault: Some(fault),
                    };
                }
                self.mutex_owner[m.index()] = None;
                VisibleKind::Unlock(m)
            }
            ref other => unreachable!("pc parked on invisible instruction {other:?}"),
        };

        let ordinal = self.event_counts[tix];
        self.event_counts[tix] += 1;
        self.events_total += 1;
        let event = Event {
            id: EventId { thread, ordinal },
            kind,
            pc: pc as u32,
        };
        self.frames[tix].pc += 1;
        let fault = self.advance_locals(thread);
        StepOutcome {
            event: Some(event),
            fault,
        }
    }

    /// Makes `self` an exact copy of `other` **in place**, reusing every
    /// buffer `self` already owns.
    ///
    /// Semantically identical to `*self = other.clone()` (asserted by the
    /// test suite), but allocation-free in the steady state: exploration
    /// engines recycle executor bodies through a frame pool, and two
    /// executors of the same program always have equal buffer sizes, so
    /// the per-step snapshot turns into a handful of `memcpy`s.
    pub fn assign_from(&mut self, other: &Executor<'p>) {
        self.program = other.program;
        self.shared.clone_from(&other.shared);
        self.mutex_owner.clone_from(&other.mutex_owner);
        self.frames.clone_from(&other.frames);
        self.regs.clone_from(&other.regs);
        self.event_counts.clone_from(&other.event_counts);
        self.events_total = other.events_total;
        self.faults.clone_from(&other.faults);
    }

    /// Captures the complete machine state.
    pub fn snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            shared: self.shared.clone(),
            regs: (0..self.frames.len())
                .map(|t| self.thread_regs(t).to_vec())
                .collect(),
            pcs: self.frames.iter().map(|f| f.pc as u32).collect(),
            statuses: self
                .frames
                .iter()
                .map(|f| f.status.discriminant())
                .collect(),
            mutex_owner: self.mutex_owner.clone(),
        }
    }

    /// The fingerprint of [`snapshot`](Self::snapshot), computed directly
    /// from the live machine state — no intermediate snapshot allocation.
    /// Identical to `self.snapshot().fingerprint()` byte for byte
    /// (asserted by the test suite); this is the per-terminal path of the
    /// exploration engines.
    pub fn state_fingerprint(&self) -> u128 {
        let mut h = crate::fingerprint::Fnv128::new();
        h.write_usize(self.shared.len());
        for &v in &self.shared {
            h.write_i64(v);
        }
        h.write_usize(self.frames.len());
        for t in 0..self.frames.len() {
            let regs = self.thread_regs(t);
            h.write_usize(regs.len());
            for &v in regs {
                h.write_i64(v);
            }
        }
        for f in &self.frames {
            h.write_u32(f.pc as u32);
        }
        for f in &self.frames {
            h.write(&[f.status.discriminant()]);
        }
        for owner in &self.mutex_owner {
            match owner {
                None => h.write(&[0xff, 0xff, 0xfe]),
                Some(t) => {
                    h.write(&[0x01]);
                    h.write(&t.0.to_le_bytes());
                }
            }
        }
        h.finish()
    }

    fn eval(&self, thread: ThreadId, op: Operand) -> Value {
        match op {
            Operand::Const(v) => v,
            Operand::Reg(r) => self.thread_regs(thread.index())[r.index()],
        }
    }

    fn fail(&mut self, thread: ThreadId, pc: usize, kind: FaultKind) -> Fault {
        self.frames[thread.index()].status = ThreadStatus::Failed;
        let fault = Fault {
            thread,
            pc: pc as u32,
            kind,
        };
        self.faults.push(fault.clone());
        fault
    }

    /// Runs invisible instructions of `thread` until its pc rests on a
    /// visible instruction, the thread finishes, or a fault occurs.
    fn advance_locals(&mut self, thread: ThreadId) -> Option<Fault> {
        let tix = thread.index();
        if self.frames[tix].status != ThreadStatus::Runnable {
            return None;
        }
        let code = &self.program.threads()[tix].code;
        let mut budget = LOCAL_STEP_BUDGET;
        loop {
            let pc = self.frames[tix].pc;
            if pc >= code.len() {
                self.frames[tix].status = ThreadStatus::Finished;
                return None;
            }
            let instr = &code[pc];
            if instr.is_visible() {
                return None;
            }
            if budget == 0 {
                return Some(self.fail(thread, pc, FaultKind::LocalStepBudget));
            }
            budget -= 1;
            match *instr {
                Instr::Set { dst, src } => {
                    let v = self.eval(thread, src);
                    *self.reg_mut(tix, dst.index()) = v;
                    self.frames[tix].pc += 1;
                }
                Instr::Bin { dst, op, lhs, rhs } => {
                    let v = op.apply(self.eval(thread, lhs), self.eval(thread, rhs));
                    *self.reg_mut(tix, dst.index()) = v;
                    self.frames[tix].pc += 1;
                }
                Instr::Un { dst, op, src } => {
                    let v = op.apply(self.eval(thread, src));
                    *self.reg_mut(tix, dst.index()) = v;
                    self.frames[tix].pc += 1;
                }
                Instr::Jump { target } => {
                    self.frames[tix].pc = target;
                }
                Instr::Branch {
                    cond,
                    target,
                    when_zero,
                } => {
                    let c = self.eval(thread, cond);
                    let taken = (c == 0) == when_zero;
                    if taken {
                        self.frames[tix].pc = target;
                    } else {
                        self.frames[tix].pc += 1;
                    }
                }
                Instr::Assert { cond, ref msg } => {
                    if self.eval(thread, cond) == 0 {
                        let msg = msg.clone();
                        return Some(self.fail(thread, pc, FaultKind::AssertFailed { msg }));
                    }
                    self.frames[tix].pc += 1;
                }
                Instr::Nop => {
                    self.frames[tix].pc += 1;
                }
                Instr::Load { .. } | Instr::Store { .. } | Instr::Lock(_) | Instr::Unlock(_) => {
                    unreachable!("visible instruction reached invisible loop")
                }
            }
        }
    }
}

/// One more than the highest register index referenced by `code`; the size
/// of the register file the executor allocates for the thread.
fn thread_reg_count(code: &[Instr]) -> usize {
    fn reg_width(r: Reg) -> usize {
        r.index() + 1
    }
    fn op_width(op: &Operand) -> usize {
        match op {
            Operand::Reg(r) => reg_width(*r),
            Operand::Const(_) => 0,
        }
    }
    code.iter()
        .map(|instr| match instr {
            Instr::Load { dst, .. } => reg_width(*dst),
            Instr::Store { src, .. } => op_width(src),
            Instr::Set { dst, src } => reg_width(*dst).max(op_width(src)),
            Instr::Bin { dst, lhs, rhs, .. } => {
                reg_width(*dst).max(op_width(lhs)).max(op_width(rhs))
            }
            Instr::Un { dst, src, .. } => reg_width(*dst).max(op_width(src)),
            Instr::Branch { cond, .. } => op_width(cond),
            Instr::Assert { cond, .. } => op_width(cond),
            Instr::Lock(_) | Instr::Unlock(_) | Instr::Jump { .. } | Instr::Nop => 0,
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::ProgramBuilder;

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn threads_park_on_first_visible_instruction() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T", |tb| {
            tb.set(Reg(0), 5);
            tb.add(Reg(0), Reg(0), 2);
            tb.store(x, Reg(0));
        });
        let p = b.build();
        let exec = Executor::new(&p);
        // Local prefix already ran; pc rests on the store.
        assert_eq!(exec.next_visible(t(0)), Some(VisibleKind::Write(x)));
        assert_eq!(exec.snapshot().regs()[0][0], 7);
    }

    #[test]
    fn step_executes_visible_op_and_following_locals() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 3);
        let y = b.var("y", 0);
        b.thread("T", |tb| {
            tb.load(Reg(0), x);
            tb.mul(Reg(0), Reg(0), 10);
            tb.store(y, Reg(0));
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        let out = exec.step(t(0));
        let event = out.event.unwrap();
        assert_eq!(event.kind, VisibleKind::Read(x));
        assert_eq!(event.id.ordinal, 0);
        assert_eq!(event.pc, 0);
        // Multiplication already happened; next stop is the store.
        assert_eq!(exec.next_visible(t(0)), Some(VisibleKind::Write(y)));
        let out = exec.step(t(0));
        assert_eq!(out.event.unwrap().id.ordinal, 1);
        assert_eq!(exec.shared_value(y), 30);
        assert_eq!(exec.status(t(0)), ThreadStatus::Finished);
        assert_eq!(exec.phase(), ExecPhase::Done);
        assert_eq!(exec.events_total(), 2);
    }

    #[test]
    fn lock_blocks_and_unlock_releases() {
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex("m");
        b.thread("T1", |tb| {
            tb.lock(m);
            tb.unlock(m);
        });
        b.thread("T2", |tb| {
            tb.lock(m);
            tb.unlock(m);
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        assert!(exec.is_enabled(t(0)) && exec.is_enabled(t(1)));
        exec.step(t(0)); // T1 locks
        assert_eq!(exec.mutex_owner(m), Some(t(0)));
        assert!(!exec.is_enabled(t(1)), "T2 must block on held mutex");
        assert_eq!(exec.enabled_threads(), vec![t(0)]);
        exec.step(t(0)); // T1 unlocks
        assert!(exec.is_enabled(t(1)));
        exec.step(t(1));
        exec.step(t(1));
        assert_eq!(exec.phase(), ExecPhase::Done);
    }

    #[test]
    #[should_panic(expected = "non-enabled thread")]
    fn stepping_blocked_thread_panics() {
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex("m");
        b.thread("T1", |tb| tb.lock(m));
        b.thread("T2", |tb| tb.lock(m));
        let p = b.build();
        let mut exec = Executor::new(&p);
        exec.step(t(0));
        exec.step(t(1)); // blocked: panics
    }

    #[test]
    fn classic_ab_ba_deadlock_detected() {
        let mut b = ProgramBuilder::new("p");
        let a = b.mutex("a");
        let mb = b.mutex("b");
        b.thread("T1", |tb| {
            tb.lock(a);
            tb.lock(mb);
            tb.unlock(mb);
            tb.unlock(a);
        });
        b.thread("T2", |tb| {
            tb.lock(mb);
            tb.lock(a);
            tb.unlock(a);
            tb.unlock(mb);
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        exec.step(t(0)); // T1 locks a
        exec.step(t(1)); // T2 locks b
        match exec.phase() {
            ExecPhase::Deadlock { waiting } => {
                assert_eq!(waiting, vec![(t(0), mb), (t(1), a)]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn self_relock_is_deadlock_not_panic() {
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex("m");
        b.thread("T", |tb| {
            tb.lock(m);
            tb.lock(m); // non-reentrant: blocks on itself
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        exec.step(t(0));
        assert!(!exec.is_enabled(t(0)));
        assert!(matches!(exec.phase(), ExecPhase::Deadlock { .. }));
    }

    #[test]
    fn unlock_without_hold_faults_thread() {
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex("m");
        b.thread("T", |tb| tb.unlock(m));
        let p = b.build();
        let mut exec = Executor::new(&p);
        let out = exec.step(t(0));
        assert!(out.event.is_none());
        let fault = out.fault.unwrap();
        assert_eq!(fault.kind, FaultKind::UnlockNotHeld { mutex: m });
        assert_eq!(exec.status(t(0)), ThreadStatus::Failed);
        assert_eq!(exec.faults().len(), 1);
        assert_eq!(exec.phase(), ExecPhase::Done);
    }

    #[test]
    fn failed_assertion_faults_thread_and_reports_message() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T", |tb| {
            tb.load(Reg(0), x);
            tb.assert_true(Reg(0), "x must be non-zero");
            tb.store(x, 99); // unreachable
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        let out = exec.step(t(0)); // the read; assert runs in local advance
        assert!(out.event.is_some());
        let fault = out.fault.unwrap();
        assert_eq!(
            fault.kind,
            FaultKind::AssertFailed {
                msg: "x must be non-zero".to_string()
            }
        );
        assert_eq!(exec.status(t(0)), ThreadStatus::Failed);
        assert_eq!(exec.shared_value(x), 0, "store after fault must not run");
    }

    #[test]
    fn passing_assertion_is_invisible() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 1);
        b.thread("T", |tb| {
            tb.load(Reg(0), x);
            tb.assert_true(Reg(0), "fine");
            tb.store(x, 2);
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        let out = exec.step(t(0));
        assert!(out.fault.is_none());
        exec.step(t(0));
        assert_eq!(exec.shared_value(x), 2);
    }

    #[test]
    fn invisible_infinite_loop_hits_local_budget() {
        let mut b = ProgramBuilder::new("p");
        b.thread("T", |tb| {
            let top = tb.here();
            tb.jump(top);
        });
        let p = b.build();
        let exec = Executor::new(&p);
        // The loop already ran at construction; the thread is failed.
        assert_eq!(exec.status(t(0)), ThreadStatus::Failed);
        assert_eq!(exec.faults()[0].kind, FaultKind::LocalStepBudget);
    }

    #[test]
    fn branch_directions_both_work() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T", |tb| {
            // if 1 goto skip_store_x
            let skip = tb.label();
            tb.branch_if(1, skip);
            tb.store(x, 1);
            tb.bind(skip);
            // ifz 1 goto skip_store_y (not taken)
            let skip2 = tb.label();
            tb.branch_if_zero(1, skip2);
            tb.store(y, 1);
            tb.bind(skip2);
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        while exec.is_enabled(t(0)) {
            exec.step(t(0));
        }
        assert_eq!(exec.shared_value(x), 0, "first branch skips the store");
        assert_eq!(exec.shared_value(y), 1, "second branch is not taken");
    }

    #[test]
    fn clone_snapshots_machine_state() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T", |tb| {
            tb.store(x, 1);
            tb.store(x, 2);
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        exec.step(t(0));
        let saved = exec.clone();
        exec.step(t(0));
        assert_eq!(exec.shared_value(x), 2);
        assert_eq!(saved.shared_value(x), 1);
        assert_eq!(saved.snapshot().pcs()[0], 1);
        // Resume from the clone.
        let mut resumed = saved;
        resumed.step(t(0));
        assert_eq!(resumed.snapshot(), exec.snapshot());
    }

    #[test]
    fn assign_from_matches_clone_at_every_step() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 3);
        let m = b.mutex("m");
        b.thread("T1", |tb| {
            tb.lock(m);
            tb.load(Reg(0), x);
            tb.add(Reg(0), Reg(0), 1);
            tb.store(x, Reg(0));
            tb.unlock(m);
        });
        b.thread("T2", |tb| {
            tb.lock(m);
            tb.store(x, 9);
            tb.unlock(m);
        });
        let p = b.build();
        let mut exec = Executor::new(&p);
        // A recycled body starts out at a *different* machine state.
        let mut recycled = Executor::new(&p);
        recycled.step(t(1));
        while let Some(next) = exec.enabled_set().first() {
            recycled.assign_from(&exec);
            assert_eq!(recycled.snapshot(), exec.snapshot());
            assert_eq!(recycled.state_fingerprint(), exec.state_fingerprint());
            exec.step(next);
        }
        // The assigned copy diverges independently, like a clone would.
        assert_ne!(recycled.snapshot(), exec.snapshot());
    }

    #[test]
    fn state_fingerprint_matches_snapshot_fingerprint() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 3);
        let m = b.mutex("m");
        b.thread("T1", |tb| {
            tb.lock(m);
            tb.load(Reg(0), x);
            tb.add(Reg(0), Reg(0), 1);
            tb.store(x, Reg(0));
            tb.unlock(m);
        });
        b.thread("T2", |tb| {
            tb.lock(m);
            tb.store(x, 9);
            tb.unlock(m);
        });
        b.thread("E", |_| {});
        let p = b.build();
        let mut exec = Executor::new(&p);
        assert_eq!(exec.state_fingerprint(), exec.snapshot().fingerprint());
        // Check at every step of one full schedule, including mid-critical
        // section (held mutex) and post-fault/finished states.
        while let Some(t) = exec.enabled_set().first() {
            exec.step(t);
            assert_eq!(exec.state_fingerprint(), exec.snapshot().fingerprint());
        }
    }

    #[test]
    fn empty_thread_is_finished_immediately() {
        let mut b = ProgramBuilder::new("p");
        b.thread("T", |_| {});
        let p = b.build();
        let exec = Executor::new(&p);
        assert_eq!(exec.status(t(0)), ThreadStatus::Finished);
        assert_eq!(exec.phase(), ExecPhase::Done);
    }

    #[test]
    fn reg_count_is_minimal() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T", |tb| tb.load(Reg(6), x));
        b.thread("S", |_| {});
        let p = b.build();
        let exec = Executor::new(&p);
        assert_eq!(exec.snapshot().regs()[0].len(), 7);
        assert_eq!(exec.snapshot().regs()[1].len(), 0);
    }

    #[test]
    fn event_ordinals_count_per_thread() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |tb| {
            tb.store(x, 1);
            tb.store(x, 2);
        });
        b.thread("T2", |tb| tb.store(x, 3));
        let p = b.build();
        let mut exec = Executor::new(&p);
        assert_eq!(exec.step(t(0)).event.unwrap().id.ordinal, 0);
        assert_eq!(exec.step(t(1)).event.unwrap().id.ordinal, 0);
        assert_eq!(exec.step(t(0)).event.unwrap().id.ordinal, 1);
        assert_eq!(exec.event_count(t(0)), 2);
        assert_eq!(exec.event_count(t(1)), 1);
    }
}
