//! Whole-run drivers: replaying explicit schedules and driving executions
//! with a scheduling callback.

use crate::event::Event;
use crate::executor::{ExecPhase, Executor, Fault};
use crate::state::StateSnapshot;
use lazylocks_model::{MutexId, Program, ThreadId};
use std::fmt;

/// Default cap on the number of visible events in a single run. Guest
/// programs in the benchmark suite are finite, but user programs with
/// unbounded spin loops are not; the cap turns a hang into a reportable
/// outcome.
pub const DEFAULT_STEP_LIMIT: u64 = 1_000_000;

/// How a driven run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// All threads finished (some may have failed — see
    /// [`RunResult::faults`]).
    Completed,
    /// No enabled thread while some thread still waits on a lock.
    Deadlock {
        /// The blocked threads and the mutexes they wait on.
        waiting: Vec<(ThreadId, MutexId)>,
    },
    /// The per-run step limit was hit; the run was abandoned.
    StepLimit,
}

impl RunStatus {
    /// `true` for [`RunStatus::Deadlock`].
    pub fn is_deadlock(&self) -> bool {
        matches!(self, RunStatus::Deadlock { .. })
    }
}

/// Outcome of a complete driven run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Every visible event, in schedule order.
    pub trace: Vec<Event>,
    /// The schedule actually taken (thread choice per event).
    pub schedule: Vec<ThreadId>,
    /// Why the run ended.
    pub status: RunStatus,
    /// Faults raised during the run (assertion failures etc.).
    pub faults: Vec<Fault>,
    /// The machine state at the end of the run.
    pub state: StateSnapshot,
}

impl RunResult {
    /// `true` if the run surfaced a bug: a deadlock or any fault.
    pub fn has_bug(&self) -> bool {
        self.status.is_deadlock() || !self.faults.is_empty()
    }
}

/// A schedule could not be followed: the chosen thread was not enabled at
/// some position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleSchedule {
    /// Index into the schedule at which replay failed.
    pub position: usize,
    /// The thread the schedule asked for.
    pub thread: ThreadId,
}

impl fmt::Display for InfeasibleSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule infeasible at position {}: thread {} not enabled",
            self.position, self.thread
        )
    }
}

impl std::error::Error for InfeasibleSchedule {}

/// Replays an explicit schedule: at step `i`, thread `schedule[i]` performs
/// its next visible operation. After the schedule is exhausted, remaining
/// enabled threads run in thread-id order until the program stops (so a
/// *prefix* schedule — e.g. one recorded up to a bug — still produces a
/// complete run).
///
/// Returns an error if some prefix of the schedule cannot be executed
/// because the requested thread is not enabled — in the paper's terms, the
/// schedule is not *feasible*.
pub fn run_schedule(
    program: &Program,
    schedule: &[ThreadId],
) -> Result<RunResult, InfeasibleSchedule> {
    let mut next = 0usize;
    let result = run_with_scheduler(program, |exec| {
        if next < schedule.len() {
            let choice = schedule[next];
            next += 1;
            // Feasibility is checked below via `ScheduleViolation`.
            return Some(choice);
        }
        exec.enabled_iter().next()
    });
    match result {
        Ok(r) => Ok(r),
        Err(position) => Err(InfeasibleSchedule {
            position,
            thread: schedule[position],
        }),
    }
}

/// Drives a run with a scheduling callback: at every scheduling point the
/// callback sees the executor and picks the next thread (returning `None`
/// stops the run early, which counts as [`RunStatus::Completed`] only if
/// the program is already done).
///
/// Returns `Err(position)` if the callback picked a non-enabled thread at
/// the given scheduling position.
pub fn run_with_scheduler(
    program: &Program,
    mut pick: impl FnMut(&Executor) -> Option<ThreadId>,
) -> Result<RunResult, usize> {
    let mut exec = Executor::new(program);
    let mut trace = Vec::new();
    let mut schedule = Vec::new();

    let status = loop {
        match exec.phase() {
            ExecPhase::Done => break RunStatus::Completed,
            ExecPhase::Deadlock { waiting } => break RunStatus::Deadlock { waiting },
            ExecPhase::Running => {}
        }
        if exec.events_total() >= DEFAULT_STEP_LIMIT {
            break RunStatus::StepLimit;
        }
        let Some(choice) = pick(&exec) else {
            match exec.phase() {
                ExecPhase::Done => break RunStatus::Completed,
                ExecPhase::Deadlock { waiting } => break RunStatus::Deadlock { waiting },
                // The scheduler gave up mid-run; report as a step limit.
                ExecPhase::Running => break RunStatus::StepLimit,
            }
        };
        if !exec.is_enabled(choice) {
            return Err(schedule.len());
        }
        let out = exec.step(choice);
        schedule.push(choice);
        if let Some(event) = out.event {
            trace.push(event);
        }
    };

    Ok(RunResult {
        trace,
        schedule,
        status,
        faults: exec.faults().to_vec(),
        state: exec.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    fn two_writers() -> Program {
        let mut b = ProgramBuilder::new("two-writers");
        let x = b.var("x", 0);
        b.thread("T1", |tb| tb.store(x, 1));
        b.thread("T2", |tb| tb.store(x, 2));
        b.build()
    }

    #[test]
    fn replay_follows_schedule_exactly() {
        let p = two_writers();
        let r = run_schedule(&p, &[t(1), t(0)]).unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.schedule, vec![t(1), t(0)]);
        assert_eq!(r.state.shared()[0], 1, "T1 wrote last");
        let r = run_schedule(&p, &[t(0), t(1)]).unwrap();
        assert_eq!(r.state.shared()[0], 2, "T2 wrote last");
    }

    #[test]
    fn prefix_schedule_completes_in_thread_order() {
        let p = two_writers();
        // Only schedule T2's write; T1 finishes automatically.
        let r = run_schedule(&p, &[t(1)]).unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.schedule, vec![t(1), t(0)]);
        assert_eq!(r.state.shared()[0], 1);
    }

    #[test]
    fn infeasible_schedule_reports_position() {
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex("m");
        b.thread("T1", |tb| {
            tb.lock(m);
            tb.unlock(m);
        });
        b.thread("T2", |tb| {
            tb.lock(m);
            tb.unlock(m);
        });
        let p = b.build();
        // T1 locks, then T2 tries to lock while m is held: infeasible.
        let err = run_schedule(&p, &[t(0), t(1)]).unwrap_err();
        assert_eq!(
            err,
            InfeasibleSchedule {
                position: 1,
                thread: t(1)
            }
        );
        assert!(err.to_string().contains("position 1"));
    }

    #[test]
    fn deadlock_is_reported_with_waiters() {
        let mut b = ProgramBuilder::new("p");
        let a = b.mutex("a");
        let c = b.mutex("b");
        b.thread("T1", |tb| {
            tb.lock(a);
            tb.lock(c);
        });
        b.thread("T2", |tb| {
            tb.lock(c);
            tb.lock(a);
        });
        let p = b.build();
        let r = run_schedule(&p, &[t(0), t(1)]).unwrap();
        assert!(r.status.is_deadlock());
        assert!(r.has_bug());
        match r.status {
            RunStatus::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn faults_surface_in_result() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |tb| {
            tb.load(Reg(0), x);
            tb.assert_true(Reg(0), "boom");
        });
        let p = b.build();
        let r = run_schedule(&p, &[t(0)]).unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.faults.len(), 1);
        assert!(r.has_bug());
    }

    #[test]
    fn trace_records_events_in_schedule_order() {
        let p = two_writers();
        let r = run_schedule(&p, &[t(1), t(0)]).unwrap();
        assert_eq!(r.trace.len(), 2);
        assert_eq!(r.trace[0].thread(), t(1));
        assert_eq!(r.trace[1].thread(), t(0));
    }

    #[test]
    fn scheduler_callback_sees_live_executor() {
        let p = two_writers();
        let mut seen_enabled = Vec::new();
        let r = run_with_scheduler(&p, |exec| {
            let enabled = exec.enabled_threads();
            seen_enabled.push(enabled.len());
            enabled.last().copied()
        })
        .unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(seen_enabled, vec![2, 1]);
        assert_eq!(r.schedule, vec![t(1), t(0)]);
    }

    #[test]
    fn callback_returning_none_mid_run_is_step_limit() {
        let p = two_writers();
        let r = run_with_scheduler(&p, |_| None).unwrap();
        assert_eq!(r.status, RunStatus::StepLimit);
        assert!(r.trace.is_empty());
    }

    #[test]
    fn callback_picking_disabled_thread_is_error() {
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex("m");
        b.thread("T1", |tb| {
            tb.lock(m);
            tb.unlock(m);
        });
        b.thread("T2", |tb| {
            tb.lock(m);
            tb.unlock(m);
        });
        let p = b.build();
        let mut first = true;
        let err = run_with_scheduler(&p, |_| {
            if first {
                first = false;
                Some(t(0))
            } else {
                Some(t(1)) // blocked after T0's lock
            }
        })
        .unwrap_err();
        assert_eq!(err, 1);
    }
}
