//! Deterministic interpreter and controlled scheduler for systematic
//! concurrency testing.
//!
//! The [`Executor`] runs a [`Program`](lazylocks_model::Program) one
//! *visible operation* at a time, with the caller (an exploration engine, a
//! replay harness, a random walker) deciding which thread moves next. This
//! is the execution substrate the paper's `LAZYLOCKS` tool provides for Java
//! programs, rebuilt for our guest IR:
//!
//! * threads advance through thread-local instructions invisibly — the
//!   scheduler only interleaves at `read` / `write` / `lock` / `unlock`;
//! * `lock` has blocking semantics: a thread whose next operation is `lock m`
//!   while `m` is held is *disabled* until the owner unlocks;
//! * deadlocks (no enabled thread while some thread is still running),
//!   assertion failures and unlock-without-hold faults are detected and
//!   reported;
//! * terminal (and intermediate) machine states are captured as canonical,
//!   hashable [`StateSnapshot`]s so exploration engines can count distinct
//!   states exactly;
//! * complete schedules can be replayed deterministically
//!   ([`run_schedule`]), the basis for Heisenbug reproduction.
//!
//! ```
//! use lazylocks_model::{ProgramBuilder, Reg, ThreadId};
//! use lazylocks_runtime::{run_schedule, RunStatus};
//!
//! let mut b = ProgramBuilder::new("two-writes");
//! let x = b.var("x", 0);
//! b.thread("T1", |t| t.store(x, 1));
//! b.thread("T2", |t| t.store(x, 2));
//! let p = b.build();
//!
//! let result = run_schedule(&p, &[ThreadId(0), ThreadId(1)]).unwrap();
//! assert_eq!(result.status, RunStatus::Completed);
//! assert_eq!(result.state.shared()[x.index()], 2); // T2 wrote last
//! ```

mod event;
mod executor;
mod fingerprint;
mod schedule;
mod state;

pub use event::{Event, EventId};
pub use executor::{
    ExecPhase, Executor, Fault, FaultKind, StepOutcome, ThreadStatus, LOCAL_STEP_BUDGET,
};
pub use fingerprint::{program_fingerprint, Fnv128};
pub use schedule::{run_schedule, run_with_scheduler, InfeasibleSchedule, RunResult, RunStatus};
pub use state::StateSnapshot;
