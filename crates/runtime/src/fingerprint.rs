//! 128-bit FNV-1a hashing for canonical fingerprints.
//!
//! Exploration engines count millions of states, happens-before relations
//! and schedule prefixes by fingerprint. A 128-bit digest makes accidental
//! collisions vanishingly unlikely while staying dependency-free and fully
//! deterministic across runs and platforms (unlike `std`'s seeded hashers).
//! The exact test suite additionally cross-checks fingerprint equality
//! against structural equality on small instances.

/// Incremental 128-bit FNV-1a hasher.
///
/// ```
/// use lazylocks_runtime::Fnv128;
///
/// let mut h = Fnv128::new();
/// h.write(b"hello");
/// let a = h.finish();
/// assert_eq!(a, Fnv128::hash_bytes(b"hello"));
/// assert_ne!(a, Fnv128::hash_bytes(b"world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv128 {
    state: u128,
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    /// Fresh hasher at the standard FNV offset basis.
    #[inline]
    pub fn new() -> Self {
        Fnv128 { state: FNV_OFFSET }
    }

    /// Absorbs bytes.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= b as u128;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Absorbs a `u32` in little-endian byte order.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64` in little-endian byte order.
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to 64 bits (platform independent digests).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// The current digest.
    #[inline]
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// One-shot convenience.
    pub fn hash_bytes(bytes: &[u8]) -> u128 {
        let mut h = Fnv128::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

/// The canonical 128-bit fingerprint of a guest program.
///
/// Hashes [`Program::canonical_bytes`] (the deterministic pretty-printed
/// form) with [`Fnv128`], prefixed by a domain tag so program fingerprints
/// never collide with state or relation fingerprints built from the same
/// hasher. Two programs share a fingerprint iff they are structurally
/// equal, and the fingerprint survives a `to_source` → `parse` round trip
/// — the property trace artifacts rely on to detect that a stored
/// counterexample no longer matches the program under test.
///
/// ```
/// use lazylocks_model::ProgramBuilder;
/// use lazylocks_runtime::program_fingerprint;
///
/// let mut b = ProgramBuilder::new("p");
/// let x = b.var("x", 0);
/// b.thread("T1", |t| t.store(x, 1));
/// let p = b.build();
///
/// let fp = program_fingerprint(&p);
/// let reparsed = lazylocks_model::Program::parse(&p.to_source()).unwrap();
/// assert_eq!(fp, program_fingerprint(&reparsed));
/// ```
pub fn program_fingerprint(program: &lazylocks_model::Program) -> u128 {
    let mut h = Fnv128::new();
    h.write(b"lazylocks-program-v1\0");
    h.write(&program.canonical_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_offset_basis() {
        assert_eq!(Fnv128::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv128::new();
        h.write(b"ab");
        h.write(b"cd");
        assert_eq!(h.finish(), Fnv128::hash_bytes(b"abcd"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Fnv128::hash_bytes(b"a"), Fnv128::hash_bytes(b"b"));
        assert_ne!(Fnv128::hash_bytes(b""), Fnv128::hash_bytes(b"\0"));
        // Order sensitivity.
        assert_ne!(Fnv128::hash_bytes(b"ab"), Fnv128::hash_bytes(b"ba"));
    }

    #[test]
    fn integer_writers_are_width_tagged_by_caller_not_hasher() {
        // u32 and u64 of the same value hash differently because they feed
        // different byte counts.
        let mut a = Fnv128::new();
        a.write_u32(7);
        let mut b = Fnv128::new();
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn program_fingerprint_is_canonical_and_change_sensitive() {
        use lazylocks_model::ProgramBuilder;
        let build = |name: &str, init: i64| {
            let mut b = ProgramBuilder::new(name);
            let x = b.var("x", init);
            b.thread("T1", |t| t.store(x, 1));
            b.build()
        };
        let p = build("p", 0);
        assert_eq!(program_fingerprint(&p), program_fingerprint(&build("p", 0)));
        // A changed initial value or name is a changed program.
        assert_ne!(program_fingerprint(&p), program_fingerprint(&build("p", 1)));
        assert_ne!(program_fingerprint(&p), program_fingerprint(&build("q", 0)));
        // Domain separation from raw byte hashing.
        assert_ne!(
            program_fingerprint(&p),
            Fnv128::hash_bytes(&p.canonical_bytes())
        );
    }

    #[test]
    fn single_byte_digest_matches_direct_computation() {
        // FNV-1a: (offset ^ byte) * prime.
        let expected = (FNV_OFFSET ^ b'a' as u128).wrapping_mul(FNV_PRIME);
        assert_eq!(Fnv128::hash_bytes(b"a"), expected);
        // Determinism across calls.
        assert_eq!(Fnv128::hash_bytes(b"a"), Fnv128::hash_bytes(b"a"));
    }
}
