//! Events: the visible operations of an execution, in schedule order.

use lazylocks_model::{ThreadId, VisibleKind};
use std::fmt;

/// Identity of an event within an execution: the issuing thread and the
/// ordinal of the event among that thread's events (0-based).
///
/// Because every thread executes a deterministic instruction stream between
/// visible operations, `(thread, ordinal)` identifies "the same event"
/// across different schedules that execute the same per-thread prefixes —
/// the notion of event identity the happens-before machinery relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    /// The issuing thread.
    pub thread: ThreadId,
    /// 0-based index of this event among the thread's events.
    pub ordinal: u32,
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.thread, self.ordinal)
    }
}

/// One visible operation performed during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Who performed the operation, and its per-thread ordinal.
    pub id: EventId,
    /// What was performed.
    pub kind: VisibleKind,
    /// The program counter of the instruction that produced the event
    /// (within the issuing thread's code).
    pub pc: u32,
}

impl Event {
    /// The issuing thread.
    #[inline]
    pub fn thread(&self) -> ThreadId {
        self.id.thread
    }

    /// Dependence under the regular happens-before relation; see
    /// [`VisibleKind::dependent_regular`].
    #[inline]
    pub fn dependent_regular(&self, other: &Event) -> bool {
        self.kind.dependent_regular(other.kind)
    }

    /// Dependence under the lazy happens-before relation; see
    /// [`VisibleKind::dependent_lazy`].
    #[inline]
    pub fn dependent_lazy(&self, other: &Event) -> bool {
        self.kind.dependent_lazy(other.kind)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.id, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{MutexId, VarId};

    fn ev(thread: u16, ordinal: u32, kind: VisibleKind) -> Event {
        Event {
            id: EventId {
                thread: ThreadId(thread),
                ordinal,
            },
            kind,
            pc: 0,
        }
    }

    #[test]
    fn event_identity_orders_by_thread_then_ordinal() {
        let a = EventId {
            thread: ThreadId(0),
            ordinal: 5,
        };
        let b = EventId {
            thread: ThreadId(1),
            ordinal: 0,
        };
        assert!(a < b);
    }

    #[test]
    fn dependence_delegates_to_visible_kind() {
        let w = ev(0, 0, VisibleKind::Write(VarId(3)));
        let r = ev(1, 0, VisibleKind::Read(VarId(3)));
        let l = ev(1, 1, VisibleKind::Lock(MutexId(0)));
        let u = ev(0, 1, VisibleKind::Unlock(MutexId(0)));
        assert!(w.dependent_regular(&r));
        assert!(w.dependent_lazy(&r));
        assert!(l.dependent_regular(&u));
        assert!(!l.dependent_lazy(&u));
    }

    #[test]
    fn display_formats_compactly() {
        let e = ev(2, 7, VisibleKind::Lock(MutexId(1)));
        assert_eq!(format!("{e}"), "t2#7:lock(m1)");
    }
}
