//! Canonical machine-state snapshots.

use crate::fingerprint::Fnv128;
use lazylocks_model::{ThreadId, Value};
use std::fmt;

/// A canonical, hashable snapshot of the complete guest machine state:
/// shared memory, per-thread registers and control state, and mutex
/// ownership.
///
/// Two executions are "in the same state" in the sense of the paper's
/// Theorems 2.1 and 2.2 exactly when their snapshots compare equal. The
/// exploration engines use snapshots (or their 128-bit
/// [`fingerprint`](StateSnapshot::fingerprint)s) to count distinct terminal
/// states, giving the `#states` term of the paper's inequality
/// `#states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateSnapshot {
    pub(crate) shared: Vec<Value>,
    pub(crate) regs: Vec<Vec<Value>>,
    pub(crate) pcs: Vec<u32>,
    pub(crate) statuses: Vec<u8>,
    pub(crate) mutex_owner: Vec<Option<ThreadId>>,
}

impl StateSnapshot {
    /// Shared-variable values, indexed by `VarId`.
    pub fn shared(&self) -> &[Value] {
        &self.shared
    }

    /// Register files, indexed by `ThreadId` then register index.
    pub fn regs(&self) -> &[Vec<Value>] {
        &self.regs
    }

    /// Per-thread program counters.
    pub fn pcs(&self) -> &[u32] {
        &self.pcs
    }

    /// Per-thread status discriminants (see
    /// [`ThreadStatus`](crate::ThreadStatus)): 0 runnable, 1 finished,
    /// 2 failed.
    pub fn statuses(&self) -> &[u8] {
        &self.statuses
    }

    /// Mutex owners, indexed by `MutexId`; `None` means free.
    pub fn mutex_owner(&self) -> &[Option<ThreadId>] {
        &self.mutex_owner
    }

    /// `true` if no mutex is held.
    pub fn all_mutexes_free(&self) -> bool {
        self.mutex_owner.iter().all(|o| o.is_none())
    }

    /// Deterministic 128-bit digest of the snapshot. Equal snapshots have
    /// equal fingerprints; the converse holds up to FNV-128 collision odds.
    pub fn fingerprint(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write_usize(self.shared.len());
        for &v in &self.shared {
            h.write_i64(v);
        }
        h.write_usize(self.regs.len());
        for regs in &self.regs {
            h.write_usize(regs.len());
            for &v in regs {
                h.write_i64(v);
            }
        }
        for &pc in &self.pcs {
            h.write_u32(pc);
        }
        h.write(&self.statuses);
        for owner in &self.mutex_owner {
            match owner {
                None => h.write(&[0xff, 0xff, 0xfe]),
                Some(t) => {
                    h.write(&[0x01]);
                    h.write(&t.0.to_le_bytes());
                }
            }
        }
        h.finish()
    }
}

impl fmt::Display for StateSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shared={:?} mutexes=[", self.shared)?;
        for (i, o) in self.mutex_owner.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match o {
                Some(t) => write!(f, "{t}")?,
                None => write!(f, "-")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> StateSnapshot {
        StateSnapshot {
            shared: vec![1, 2],
            regs: vec![vec![0], vec![5, 6]],
            pcs: vec![3, 4],
            statuses: vec![1, 1],
            mutex_owner: vec![None, Some(ThreadId(1))],
        }
    }

    #[test]
    fn equal_snapshots_equal_fingerprints() {
        assert_eq!(snapshot(), snapshot());
        assert_eq!(snapshot().fingerprint(), snapshot().fingerprint());
    }

    #[test]
    fn any_field_change_changes_fingerprint() {
        let base = snapshot().fingerprint();
        let mut s = snapshot();
        s.shared[0] = 9;
        assert_ne!(s.fingerprint(), base);
        let mut s = snapshot();
        s.regs[1][0] = 9;
        assert_ne!(s.fingerprint(), base);
        let mut s = snapshot();
        s.pcs[0] = 99;
        assert_ne!(s.fingerprint(), base);
        let mut s = snapshot();
        s.statuses[0] = 2;
        assert_ne!(s.fingerprint(), base);
        let mut s = snapshot();
        s.mutex_owner[1] = None;
        assert_ne!(s.fingerprint(), base);
        let mut s = snapshot();
        s.mutex_owner[1] = Some(ThreadId(0));
        assert_ne!(s.fingerprint(), base);
    }

    #[test]
    fn all_mutexes_free_reports_held_locks() {
        let mut s = snapshot();
        assert!(!s.all_mutexes_free());
        s.mutex_owner[1] = None;
        assert!(s.all_mutexes_free());
    }

    #[test]
    fn display_is_compact() {
        let s = snapshot();
        assert_eq!(format!("{s}"), "shared=[1, 2] mutexes=[-,t1]");
    }
}
