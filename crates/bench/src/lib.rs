//! Shared harness for the figure-reproduction binaries.
//!
//! Each binary sweeps the 79-benchmark corpus under a schedule budget and
//! prints three artefacts, mirroring the paper's presentation:
//!
//! 1. a TSV block (spreadsheet/gnuplot-ready),
//! 2. an ASCII log-log scatter plot with benchmark ids as point labels,
//! 3. the aggregate statistics the paper quotes in prose (points off the
//!    diagonal, total and percentage reduction/gain among them).

use lazylocks::report::{rows_to_table, rows_to_tsv, DiagonalSummary, Row};
use lazylocks::scatter::scatter_plot;

pub mod timing;

/// Parses `--limit N` (schedule budget) from argv; `default` otherwise.
pub fn limit_from_args(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `measure` over the whole corpus, producing one row per benchmark.
pub fn sweep(measure: impl FnMut(&lazylocks_suite::Benchmark) -> Row) -> Vec<Row> {
    lazylocks_suite::all().iter().map(measure).collect()
}

/// Prints the full figure artefact set.
pub fn print_figure(
    title: &str,
    x_label: &str,
    y_label: &str,
    rows: &[Row],
    limit: usize,
) -> DiagonalSummary {
    println!("==================================================================");
    println!("{title}");
    println!("(schedule limit {limit}; * marks benchmarks that hit the limit,");
    println!(" the paper's underlined ids)");
    println!("==================================================================\n");
    println!("{}", rows_to_table(x_label, y_label, rows));
    println!("{}", scatter_plot(x_label, y_label, rows, 64, 24));
    println!("--- TSV ---\n{}", rows_to_tsv(x_label, y_label, rows));
    let summary = DiagonalSummary::of(rows);
    println!("--- aggregates ---");
    println!(
        "benchmarks below the diagonal (y < x): {}",
        summary.below_diagonal
    );
    println!(
        "benchmarks on the diagonal (y = x): {}",
        summary.on_diagonal
    );
    println!(
        "benchmarks above the diagonal (y > x): {}",
        summary.above_diagonal
    );
    if summary.below_diagonal > 0 {
        println!(
            "reduction among below-diagonal: {} of {} ({:.0}%)",
            summary.reduction_total,
            summary.reduction_base,
            summary.reduction_percent()
        );
    }
    if summary.above_diagonal > 0 {
        println!(
            "gain among above-diagonal: {} extra over {} ({:.0}% more)",
            summary.gain_total,
            summary.gain_base,
            summary.gain_percent()
        );
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_corpus() {
        let rows = sweep(|b| Row {
            id: b.id,
            name: b.name.clone(),
            x: 1,
            y: 1,
            schedules: 0,
            limit_hit: false,
        });
        assert_eq!(rows.len(), 79);
        assert_eq!(rows[0].id, 1);
    }

    #[test]
    fn print_figure_summarises() {
        let rows = vec![
            Row {
                id: 1,
                name: "a".into(),
                x: 10,
                y: 2,
                schedules: 10,
                limit_hit: false,
            },
            Row {
                id: 2,
                name: "b".into(),
                x: 4,
                y: 4,
                schedules: 4,
                limit_hit: true,
            },
        ];
        let s = print_figure("t", "x", "y", &rows, 100);
        assert_eq!(s.below_diagonal, 1);
        assert_eq!(s.on_diagonal, 1);
        assert_eq!(s.reduction_total, 8);
    }
}
