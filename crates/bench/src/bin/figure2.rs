//! **Figure 2** — the number of regular vs. lazy happens-before relations
//! explored within the schedule budget of DPOR.
//!
//! Each corpus benchmark is explored with DPOR; the point `(x, y)` plots
//! `x = #HBRs` against `y = #lazy HBRs`. Points below the diagonal are
//! benchmarks where the lazy relation identifies explored HBRs as
//! redundant — the paper reports 33 of 79 such benchmarks, with 910,007
//! (80%) of the unique HBRs among them redundant.
//!
//! ```text
//! cargo run --release -p lazylocks-bench --bin figure2 [-- --limit 100000]
//! ```

use lazylocks::report::Row;
use lazylocks::{ExploreConfig, ExploreSession};
use lazylocks_bench::{limit_from_args, print_figure, sweep};

fn main() {
    let limit = limit_from_args(10_000);
    let rows = sweep(|bench| {
        let outcome = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(limit))
            .run_spec("dpor")
            .expect("dpor is registered");
        let stats = outcome.stats;
        stats
            .check_inequality()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        Row {
            id: bench.id,
            name: bench.name.clone(),
            x: stats.unique_hbrs,
            y: stats.unique_lazy_hbrs,
            schedules: stats.schedules,
            limit_hit: stats.limit_hit,
        }
    });
    let summary = print_figure(
        "Figure 2: #HBRs vs #lazy HBRs explored by DPOR",
        "#HBRs",
        "#lazy HBRs",
        &rows,
        limit,
    );
    println!("\npaper reference: 33/79 below the diagonal, 80% of their HBRs redundant");
    println!(
        "this run:        {}/79 below the diagonal, {:.0}% of their HBRs redundant",
        summary.below_diagonal,
        summary.reduction_percent()
    );
}
