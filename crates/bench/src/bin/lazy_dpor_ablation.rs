//! **E5** — ablation of the lazy-DPOR prototype (the paper's §4 future
//! work) against classic DPOR and the two caching modes: schedules needed
//! per benchmark under the same budget, plus a coverage check against the
//! lazy-DPOR states.
//!
//! ```text
//! cargo run --release -p lazylocks-bench --bin lazy_dpor_ablation [-- --limit 100000]
//! ```

use lazylocks::{ExploreConfig, ExploreSession, ExploreStats, StrategyRegistry};
use lazylocks_bench::limit_from_args;

fn main() {
    let limit = limit_from_args(5_000);
    let registry = StrategyRegistry::default();
    println!("schedules explored per strategy (limit {limit}; * = limit hit)\n");
    println!(
        "{:>3}  {:<28} {:>9} {:>9} {:>9} {:>9} {:>9}  states d/l",
        "id", "name", "dpor", "lazydpor", "vars", "caching", "lazycache"
    );
    let mut totals = [0usize; 5];
    let mut lazy_wins = 0usize;
    let mut state_mismatches = 0usize;
    for bench in lazylocks_suite::all() {
        let session =
            ExploreSession::new(&bench.program).with_config(ExploreConfig::with_limit(limit));
        let run = |spec: &str| -> ExploreStats {
            session
                .run_with(&registry, spec)
                .expect("registered spec")
                .stats
        };
        let dpor = run("dpor");
        let lazy = run("lazy-dpor");
        let vars = run("lazy-dpor(style=vars)");
        let caching = run("caching");
        let lazy_caching = run("caching(mode=lazy)");
        for (t, s) in totals.iter_mut().zip([
            dpor.schedules,
            lazy.schedules,
            vars.schedules,
            caching.schedules,
            lazy_caching.schedules,
        ]) {
            *t += s;
        }
        if lazy.schedules < dpor.schedules && !dpor.limit_hit {
            lazy_wins += 1;
        }
        let coverage = if dpor.limit_hit || lazy.limit_hit {
            "?".to_string()
        } else if dpor.unique_states == lazy.unique_states {
            "=".to_string()
        } else {
            state_mismatches += 1;
            format!("{}≠{}", dpor.unique_states, lazy.unique_states)
        };
        println!(
            "{:>3}  {:<28} {:>8}{} {:>8}{} {:>8}{} {:>8}{} {:>8}{}  {}",
            bench.id,
            bench.name,
            dpor.schedules,
            mark(dpor.limit_hit),
            lazy.schedules,
            mark(lazy.limit_hit),
            vars.schedules,
            mark(vars.limit_hit),
            caching.schedules,
            mark(caching.limit_hit),
            lazy_caching.schedules,
            mark(lazy_caching.limit_hit),
            coverage
        );
    }
    println!(
        "\ntotals: dpor={} lazy-dpor={} vars-only={} caching={} lazy-caching={}",
        totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    println!("benchmarks where lazy DPOR strictly beats DPOR (both exhaustive): {lazy_wins}");
    println!(
        "state-coverage mismatches of lazy DPOR vs DPOR on exhaustive benchmarks: {state_mismatches}"
    );
}

fn mark(hit: bool) -> char {
    if hit {
        '*'
    } else {
        ' '
    }
}
