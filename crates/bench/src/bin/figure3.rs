//! **Figure 3** — the number of lazy HBRs explored by regular HBR caching
//! vs. lazy HBR caching within the schedule budget.
//!
//! Both caching explorers run with the same budget; the point `(x, y)`
//! plots `x = #lazy HBRs` reached by *regular* caching against `y = #lazy
//! HBRs` reached by *lazy* caching. Regular caching never reaches more
//! (`y ≥ x` everywhere); on budget-limited benchmarks the lazy variant
//! pulls ahead — the paper reports 18 of 79 benchmarks off the diagonal,
//! with 8,969 (84%) more terminal lazy HBRs among them.
//!
//! ```text
//! cargo run --release -p lazylocks-bench --bin figure3 [-- --limit 100000]
//! ```

use lazylocks::report::Row;
use lazylocks::{ExploreConfig, ExploreSession};
use lazylocks_bench::{limit_from_args, print_figure, sweep};

fn main() {
    let limit = limit_from_args(1_000);
    let rows = sweep(|bench| {
        let session =
            ExploreSession::new(&bench.program).with_config(ExploreConfig::with_limit(limit));
        let regular = session.run_spec("caching").expect("registered").stats;
        let lazy = session
            .run_spec("caching(mode=lazy)")
            .expect("registered")
            .stats;
        Row {
            id: bench.id,
            name: bench.name.clone(),
            x: regular.unique_lazy_hbrs,
            y: lazy.unique_lazy_hbrs,
            schedules: regular.schedules.max(lazy.schedules),
            limit_hit: regular.limit_hit || lazy.limit_hit,
        }
    });
    let summary = print_figure(
        "Figure 3: #lazy HBRs explored by regular vs lazy HBR caching",
        "HBR caching (#lazy HBRs)",
        "lazy HBR caching (#lazy HBRs)",
        &rows,
        limit,
    );
    // Sanity property from the paper: "regular HBR caching never explored
    // more lazy HBRs".
    assert_eq!(
        summary.below_diagonal, 0,
        "regular caching must never reach more lazy classes"
    );
    println!("\npaper reference: 18/79 off the diagonal, 84% more terminal lazy HBRs among them");
    println!(
        "this run:        {}/79 off the diagonal, {:.0}% more terminal lazy HBRs among them",
        summary.above_diagonal,
        summary.gain_percent()
    );
}
