//! **E3** — the paper's §3 counting chain, tabulated for every benchmark:
//!
//! ```text
//! #states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules ≤ limit
//! ```
//!
//! ```text
//! cargo run --release -p lazylocks-bench --bin inequality [-- --limit 100000]
//! ```

use lazylocks::{ExploreConfig, ExploreSession};
use lazylocks_bench::limit_from_args;

fn main() {
    let limit = limit_from_args(10_000);
    println!("#states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules ≤ {limit} (DPOR)\n");
    println!(
        "{:>3}  {:<28} {:>8} {:>10} {:>8} {:>10}  limit",
        "id", "name", "#states", "#lazyHBRs", "#HBRs", "#scheds"
    );
    let mut violations = 0;
    for bench in lazylocks_suite::all() {
        let stats = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(limit))
            .run_spec("dpor")
            .expect("dpor is registered")
            .stats;
        let ok = stats.check_inequality();
        if ok.is_err() {
            violations += 1;
        }
        println!(
            "{:>3}  {:<28} {:>8} {:>10} {:>8} {:>10}  {}{}",
            bench.id,
            bench.name,
            stats.unique_states,
            stats.unique_lazy_hbrs,
            stats.unique_hbrs,
            stats.schedules,
            if stats.limit_hit { "*" } else { "" },
            match ok {
                Ok(()) => String::new(),
                Err(e) => format!("  VIOLATION: {e}"),
            }
        );
    }
    println!("\nviolations: {violations} (the paper's inequality demands 0)");
    assert_eq!(violations, 0);
}
