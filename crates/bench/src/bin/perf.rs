//! **perf** — the tracked end-to-end exploration throughput baseline.
//!
//! Runs every registered exploration strategy (plus the named parameter
//! variants the paper's evaluation leans on, and the work-stealing
//! parallel DPOR grid at 1/2/4/8 workers) over a fixed slice of the
//! benchmark corpus — weighted toward the deepest families (philosophers,
//! workqueue) where per-step costs dominate — and emits a machine-readable
//! `BENCH_perf.json` next to a human-readable table. CI smoke-runs this
//! binary with `--quick` and archives the JSON, so the repository carries
//! a perf trajectory alongside its correctness suite.
//!
//! ```text
//! cargo run --release -p lazylocks-bench --bin perf [-- --quick]
//!     [--limit N] [--out PATH] [--compare BASELINE.json] [--tolerance X]
//! ```
//!
//! With `--compare`, each `(bench, strategy)` cell's executions/sec is
//! checked against the named baseline file and the run fails (exit ≠ 0)
//! when any cell regressed by more than the tolerance factor (default 3 —
//! generous on purpose: CI machines differ wildly from the machines that
//! bless baselines; only catastrophic regressions should trip it).
//!
//! The JSON schema (integer-only, see `lazylocks_trace::json`):
//!
//! ```text
//! { "format": "lazylocks-perf", "version": 4, "schedule_limit": N,
//!   "results": [ { "bench", "strategy", "schedules", "events",
//!                  "wall_time_us", "execs_per_sec", "events_per_sec",
//!                  "execs_per_sec_instrumented", "execs_per_sec_profiled",
//!                  "events_compared", "limit_hit",
//!                  "metrics": { name: count, ... },
//!                  "speedup_vs_1w_pct"? } ] }
//! ```
//!
//! `speedup_vs_1w_pct` appears only on `parallel(...)` cells: the cell's
//! executions/sec as a percentage of the same bench + reduction at
//! `workers=1` (100 = parity, 250 = 2.5×).
//!
//! Version 3 additions: every cell is timed a second time with the
//! metrics registry enabled — `execs_per_sec_instrumented` against
//! `execs_per_sec` is the measured observability tax (the `obs%` table
//! column, 100 = parity) — and `metrics` embeds the non-zero scalar
//! series of one instrumented run's wall-clock-scrubbed snapshot
//! (histograms contribute `<name>` = sample count and `<name>_sum`).
//!
//! Version 4 additions: a third timing pass with the exploration
//! *profiler* enabled — `execs_per_sec_profiled` against `execs_per_sec`
//! is the attribution tax (the `prof%` column). The acceptance budget is
//! ≤5% overhead on the deep `dpor(sleep=true)` cells, reported as a
//! headline line alongside the metrics one.

use lazylocks::{
    ExploreConfig, ExploreSession, MetricsHandle, MetricsSnapshot, ProfileHandle, StrategyRegistry,
};
use lazylocks_bench::timing::quick_mode;
use lazylocks_trace::json::Json;
use std::time::{Duration, Instant};

/// The fixed suite slice: id-stable names covering the deepest families
/// plus one representative of the shallow ones.
const BENCHES: &[&str] = &[
    "paper-figure1",
    "coarse-disjoint-t4-r1",
    "fine-t3-e3",
    "accounts-fine-deadlock2",
    "philosophers-naive-4",
    "philosophers-ordered-4",
    "workqueue-w2-i3",
    "workqueue-w3-i2",
];

/// Parameter variants measured on top of every registered strategy's
/// default configuration.
const EXTRA_SPECS: &[&str] = &[
    "dpor(sleep=true)",
    "lazy-dpor(style=vars)",
    "caching(mode=lazy)",
];

/// The parallel-DPOR scaling grid: reduction × worker count. Every cell
/// carries `speedup_vs_1w_pct` against its own `workers=1` row.
const PARALLEL_REDUCTIONS: &[&str] = &["dpor", "lazy"];
const PARALLEL_WORKERS: &[usize] = &[1, 2, 4, 8];

struct Cell {
    bench: &'static str,
    spec: String,
    schedules: usize,
    events: u64,
    events_compared: u64,
    limit_hit: bool,
    runs: u32,
    mean_us: i128,
    execs_per_sec: f64,
    events_per_sec: f64,
    /// Executions/sec with the metrics registry enabled (same window).
    execs_per_sec_instrumented: f64,
    /// Executions/sec with the exploration profiler enabled (same window).
    execs_per_sec_profiled: f64,
    /// Scrubbed snapshot of one instrumented run.
    metrics: Option<MetricsSnapshot>,
    /// `Some((bench, reduction))` key when this is a parallel grid cell.
    parallel_key: Option<(&'static str, &'static str, usize)>,
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let quick = quick_mode();
    let limit: usize = arg_value("--limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 150 } else { 3000 });
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let compare_path = arg_value("--compare");
    let tolerance: f64 = arg_value("--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    let registry = StrategyRegistry::default();
    let mut specs: Vec<(String, Option<(&'static str, usize)>)> =
        registry.names().into_iter().map(|n| (n, None)).collect();
    specs.extend(EXTRA_SPECS.iter().map(|s| (s.to_string(), None)));
    for &reduction in PARALLEL_REDUCTIONS {
        for &workers in PARALLEL_WORKERS {
            specs.push((
                format!("parallel(reduction={reduction}, workers={workers})"),
                Some((reduction, workers)),
            ));
        }
    }

    // Each cell is re-explored until the aggregate wall time reaches this
    // window: single explorations of the reduced strategies finish in
    // microseconds, far below timer noise.
    let window = if quick {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(250)
    };
    let max_runs = 10_000u32;

    println!("== perf: exploration throughput (schedule limit {limit}) ==\n");
    println!(
        "{:<26} {:<38} {:>8} {:>9} {:>6} {:>11} {:>11} {:>11} {:>6} {:>6}",
        "bench",
        "strategy",
        "scheds",
        "events",
        "runs",
        "wall_us",
        "execs/s",
        "events/s",
        "obs%",
        "prof%"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for name in BENCHES {
        let bench = lazylocks_suite::by_name(name)
            .unwrap_or_else(|| panic!("benchmark {name} missing from the corpus"));
        for (spec, parallel) in &specs {
            let explore = || {
                ExploreSession::new(&bench.program)
                    .with_config(ExploreConfig::with_limit(limit))
                    .run_spec(spec)
                    .unwrap_or_else(|e| panic!("{name}/{spec}: {e}"))
                    .stats
            };
            // Warm-up run; `s` is its counter snapshot. Rates aggregate the
            // *per-run* schedule/event counts rather than assuming every
            // repeat matches the snapshot: the parallel strategies' split
            // of a limit-capped budget across workers is not run-to-run
            // deterministic.
            let s = explore();
            let mut runs = 1u32;
            let mut total = s.wall_time;
            let mut total_schedules = s.schedules as u64;
            let mut total_events = s.events;
            let started = Instant::now();
            while started.elapsed() < window && runs < max_runs {
                let r = explore();
                total += r.wall_time;
                total_schedules += r.schedules as u64;
                total_events += r.events;
                runs += 1;
            }
            let secs = total.as_secs_f64().max(1e-9);
            let execs_per_sec = total_schedules as f64 / secs;
            let events_per_sec = total_events as f64 / secs;
            let mean_us = (total.as_micros() / u128::from(runs)).min(u64::MAX as u128) as i128;

            // Second pass, same window, metrics registry enabled: the
            // rate delta is the measured observability tax. A fresh
            // handle per run keeps registry allocation inside the tax.
            let explore_instrumented = |handle: &MetricsHandle| {
                ExploreSession::new(&bench.program)
                    .with_config(ExploreConfig::with_limit(limit).with_metrics(handle.clone()))
                    .run_spec(spec)
                    .unwrap_or_else(|e| panic!("{name}/{spec}: {e}"))
                    .stats
            };
            let mut m_total = Duration::ZERO;
            let mut m_schedules = 0u64;
            let mut m_runs = 0u32;
            let mut snapshot = None;
            let m_started = Instant::now();
            while m_runs == 0 || (m_started.elapsed() < window && m_runs < max_runs) {
                let handle = MetricsHandle::enabled();
                let r = explore_instrumented(&handle);
                m_total += r.wall_time;
                m_schedules += r.schedules as u64;
                m_runs += 1;
                snapshot = handle.snapshot();
            }
            let execs_per_sec_instrumented = m_schedules as f64 / m_total.as_secs_f64().max(1e-9);
            let obs_pct = if execs_per_sec > 0.0 {
                (execs_per_sec_instrumented / execs_per_sec * 100.0).round() as i128
            } else {
                100
            };

            // Third pass, same window, exploration profiler enabled: the
            // rate delta is the attribution tax. As with metrics, a fresh
            // handle per run keeps slab allocation inside the tax.
            let explore_profiled = |handle: &ProfileHandle| {
                ExploreSession::new(&bench.program)
                    .with_config(ExploreConfig::with_limit(limit).with_profile(handle.clone()))
                    .run_spec(spec)
                    .unwrap_or_else(|e| panic!("{name}/{spec}: {e}"))
                    .stats
            };
            let mut p_total = Duration::ZERO;
            let mut p_schedules = 0u64;
            let mut p_runs = 0u32;
            let p_started = Instant::now();
            while p_runs == 0 || (p_started.elapsed() < window && p_runs < max_runs) {
                let handle = ProfileHandle::enabled();
                let r = explore_profiled(&handle);
                p_total += r.wall_time;
                p_schedules += r.schedules as u64;
                p_runs += 1;
            }
            let execs_per_sec_profiled = p_schedules as f64 / p_total.as_secs_f64().max(1e-9);
            let prof_pct = if execs_per_sec > 0.0 {
                (execs_per_sec_profiled / execs_per_sec * 100.0).round() as i128
            } else {
                100
            };

            println!(
                "{:<26} {:<38} {:>8} {:>9} {:>6} {:>11} {:>11} {:>11} {:>6} {:>6}",
                name,
                spec,
                s.schedules,
                s.events,
                runs,
                mean_us,
                execs_per_sec.round() as i128,
                events_per_sec.round() as i128,
                obs_pct,
                prof_pct
            );
            cells.push(Cell {
                bench: name,
                spec: spec.clone(),
                schedules: s.schedules,
                events: s.events,
                events_compared: s.events_compared,
                limit_hit: s.limit_hit,
                runs,
                mean_us,
                execs_per_sec,
                events_per_sec,
                execs_per_sec_instrumented,
                execs_per_sec_profiled,
                metrics: snapshot.map(|s: MetricsSnapshot| s.scrubbed()),
                parallel_key: parallel.map(|(r, w)| (*name, r, w)),
            });
        }
    }

    // --- per-cell speedup vs the workers=1 row of the same grid line ---
    let one_worker: Vec<((&str, &str), f64)> = cells
        .iter()
        .filter_map(|c| match c.parallel_key {
            Some((bench, reduction, 1)) => Some(((bench, reduction), c.execs_per_sec)),
            _ => None,
        })
        .collect();
    let speedup_pct = |c: &Cell| -> Option<i128> {
        let (bench, reduction, _) = c.parallel_key?;
        let base = one_worker
            .iter()
            .find(|((b, r), _)| *b == bench && *r == reduction)?
            .1;
        if base <= 0.0 {
            return None;
        }
        Some((c.execs_per_sec / base * 100.0).round() as i128)
    };

    let mut results = Vec::new();
    for c in &cells {
        let mut fields = vec![
            ("bench", Json::Str(c.bench.to_string())),
            ("strategy", Json::Str(c.spec.clone())),
            ("schedules", Json::Int(c.schedules as i128)),
            ("events", Json::Int(i128::from(c.events))),
            ("runs", Json::Int(i128::from(c.runs))),
            ("wall_time_us", Json::Int(c.mean_us)),
            ("execs_per_sec", Json::Int(c.execs_per_sec.round() as i128)),
            (
                "events_per_sec",
                Json::Int(c.events_per_sec.round() as i128),
            ),
            (
                "execs_per_sec_instrumented",
                Json::Int(c.execs_per_sec_instrumented.round() as i128),
            ),
            (
                "execs_per_sec_profiled",
                Json::Int(c.execs_per_sec_profiled.round() as i128),
            ),
            ("events_compared", Json::Int(i128::from(c.events_compared))),
            ("limit_hit", Json::Bool(c.limit_hit)),
        ];
        if let Some(snap) = &c.metrics {
            let mut series: Vec<(String, Json)> = Vec::new();
            for m in &snap.metrics {
                let count = m.total.count();
                if count == 0 {
                    continue;
                }
                series.push((m.name.to_string(), Json::Int(i128::from(count))));
                let sum = m.total.sum();
                if sum > 0 {
                    series.push((format!("{}_sum", m.name), Json::Int(i128::from(sum))));
                }
            }
            fields.push(("metrics", Json::Obj(series)));
        }
        if let Some(pct) = speedup_pct(c) {
            fields.push(("speedup_vs_1w_pct", Json::Int(pct)));
        }
        results.push(Json::obj(fields));
    }

    // The headline overhead number for the acceptance gate: the deepest
    // sequential DPOR cells, where per-step instrumentation costs would
    // show up first.
    let deep: Vec<&Cell> = cells
        .iter()
        .filter(|c| {
            c.spec == "dpor(sleep=true)"
                && (c.bench.starts_with("philosophers") || c.bench.starts_with("workqueue"))
        })
        .collect();
    if !deep.is_empty() {
        let mean_pct = deep
            .iter()
            .map(|c| c.execs_per_sec_instrumented / c.execs_per_sec.max(1e-9) * 100.0)
            .sum::<f64>()
            / deep.len() as f64;
        println!(
            "\nmetrics overhead (dpor(sleep=true), deep families): instrumented \
             throughput is {mean_pct:.1}% of uninstrumented"
        );
        let prof_pct = deep
            .iter()
            .map(|c| c.execs_per_sec_profiled / c.execs_per_sec.max(1e-9) * 100.0)
            .sum::<f64>()
            / deep.len() as f64;
        println!(
            "profiler overhead (dpor(sleep=true), deep families): profiled \
             throughput is {prof_pct:.1}% of unprofiled (budget: >= 95%)"
        );
    }

    let doc = Json::obj([
        ("format", Json::Str("lazylocks-perf".to_string())),
        ("version", Json::Int(4)),
        ("schedule_limit", Json::Int(limit as i128)),
        ("quick", Json::Bool(quick)),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");

    if let Some(baseline_path) = compare_path {
        let regressions = compare_against_baseline(&cells, &baseline_path, tolerance);
        if regressions > 0 {
            eprintln!(
                "perf: {regressions} cell(s) regressed by more than {tolerance}x \
                 against {baseline_path}"
            );
            std::process::exit(1);
        }
        println!("perf: no cell regressed more than {tolerance}x vs {baseline_path}");
    }
}

/// Checks every current cell against the matching `(bench, strategy)` cell
/// of a baseline file; returns the number of cells whose executions/sec
/// fell by more than `tolerance`×.
///
/// Only **same-work** cells are compared: a quick run (`--limit 150`)
/// and the committed full-limit baseline explore different trees for
/// limit-capped cells, so their rates are not commensurable — a cell
/// participates only when both sides report the same schedule and event
/// counts. Cells missing from the baseline (new strategies) are skipped
/// too — the gate guards against regressions, not schema drift — but a
/// run where *no* cell matches (renamed strategies, emptied results,
/// wrong file) is a broken gate, not a pass, and panics so CI fails
/// loudly instead of vacuously.
fn compare_against_baseline(cells: &[Cell], baseline_path: &str, tolerance: f64) -> usize {
    let raw = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
    let doc = Json::parse(&raw).unwrap_or_else(|e| panic!("parsing {baseline_path}: {e}"));
    struct BaseCell<'a> {
        bench: &'a str,
        spec: &'a str,
        schedules: u64,
        events: u64,
        execs_per_sec: f64,
    }
    let baseline: Vec<BaseCell> = doc
        .get("results")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| {
                    Some(BaseCell {
                        bench: r.get("bench")?.as_str()?,
                        spec: r.get("strategy")?.as_str()?,
                        schedules: r.get("schedules")?.as_u64()?,
                        events: r.get("events")?.as_u64()?,
                        execs_per_sec: r.get("execs_per_sec")?.as_u64()? as f64,
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let mut regressions = 0;
    let mut matched = 0usize;
    let mut skipped_work = 0usize;
    for c in cells {
        let Some(base) = baseline
            .iter()
            .find(|b| b.bench == c.bench && b.spec == c.spec)
        else {
            continue;
        };
        if base.schedules != c.schedules as u64 || base.events != c.events {
            skipped_work += 1; // different tree explored: rates incomparable
            continue;
        }
        matched += 1;
        if base.execs_per_sec > 0.0 && c.execs_per_sec * tolerance < base.execs_per_sec {
            eprintln!(
                "perf regression: {} / {} — {:.0} execs/s vs baseline {:.0} (>{tolerance}x)",
                c.bench, c.spec, c.execs_per_sec, base.execs_per_sec
            );
            regressions += 1;
        }
    }
    assert!(
        matched > 0,
        "no current cell is comparable to the baseline in {baseline_path} — \
         the regression gate would pass vacuously; re-bless the baseline"
    );
    println!(
        "perf: compared {matched} same-work cell(s) against {baseline_path} \
         ({skipped_work} skipped for differing work)"
    );
    regressions
}
