//! **perf** — the tracked end-to-end exploration throughput baseline.
//!
//! Runs every registered exploration strategy (plus the named parameter
//! variants the paper's evaluation leans on) over a fixed slice of the
//! benchmark corpus — weighted toward the deepest families (philosophers,
//! workqueue) where per-step costs dominate — and emits a machine-readable
//! `BENCH_perf.json` next to a human-readable table. CI smoke-runs this
//! binary with `--quick` and archives the JSON, so the repository carries
//! a perf trajectory alongside its correctness suite.
//!
//! ```text
//! cargo run --release -p lazylocks-bench --bin perf [-- --quick]
//!     [--limit N] [--out PATH]
//! ```
//!
//! The JSON schema (integer-only, see `lazylocks_trace::json`):
//!
//! ```text
//! { "format": "lazylocks-perf", "version": 1, "schedule_limit": N,
//!   "results": [ { "bench", "strategy", "schedules", "events",
//!                  "wall_time_us", "execs_per_sec", "events_per_sec",
//!                  "events_compared", "limit_hit" } ] }
//! ```

use lazylocks::{ExploreConfig, ExploreSession, StrategyRegistry};
use lazylocks_bench::timing::quick_mode;
use lazylocks_trace::json::Json;
use std::time::{Duration, Instant};

/// The fixed suite slice: id-stable names covering the deepest families
/// plus one representative of the shallow ones.
const BENCHES: &[&str] = &[
    "paper-figure1",
    "coarse-disjoint-t4-r1",
    "fine-t3-e3",
    "accounts-fine-deadlock2",
    "philosophers-naive-4",
    "philosophers-ordered-4",
    "workqueue-w2-i3",
    "workqueue-w3-i2",
];

/// Parameter variants measured on top of every registered strategy's
/// default configuration.
const EXTRA_SPECS: &[&str] = &[
    "dpor(sleep=true)",
    "lazy-dpor(style=vars)",
    "caching(mode=lazy)",
];

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let quick = quick_mode();
    let limit: usize = arg_value("--limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 150 } else { 3000 });
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_perf.json".to_string());

    let registry = StrategyRegistry::default();
    let mut specs: Vec<String> = registry.names();
    specs.extend(EXTRA_SPECS.iter().map(|s| s.to_string()));

    // Each cell is re-explored until the aggregate wall time reaches this
    // window: single explorations of the reduced strategies finish in
    // microseconds, far below timer noise.
    let window = if quick {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(250)
    };
    let max_runs = 10_000u32;

    println!("== perf: exploration throughput (schedule limit {limit}) ==\n");
    println!(
        "{:<26} {:<24} {:>8} {:>9} {:>6} {:>11} {:>11} {:>11}",
        "bench", "strategy", "scheds", "events", "runs", "wall_us", "execs/s", "events/s"
    );

    let mut results = Vec::new();
    for name in BENCHES {
        let bench = lazylocks_suite::by_name(name)
            .unwrap_or_else(|| panic!("benchmark {name} missing from the corpus"));
        for spec in &specs {
            let explore = || {
                ExploreSession::new(&bench.program)
                    .with_config(ExploreConfig::with_limit(limit))
                    .run_spec(spec)
                    .unwrap_or_else(|e| panic!("{name}/{spec}: {e}"))
                    .stats
            };
            // Warm-up run; `s` is its counter snapshot. Rates aggregate the
            // *per-run* schedule/event counts rather than assuming every
            // repeat matches the snapshot: the parallel strategy's split
            // of a limit-capped budget across workers is not run-to-run
            // deterministic.
            let s = explore();
            let mut runs = 1u32;
            let mut total = s.wall_time;
            let mut total_schedules = s.schedules as u64;
            let mut total_events = s.events;
            let started = Instant::now();
            while started.elapsed() < window && runs < max_runs {
                let r = explore();
                total += r.wall_time;
                total_schedules += r.schedules as u64;
                total_events += r.events;
                runs += 1;
            }
            let secs = total.as_secs_f64().max(1e-9);
            let execs_per_sec = (total_schedules as f64 / secs).round() as i128;
            let events_per_sec = (total_events as f64 / secs).round() as i128;
            let mean_us = (total.as_micros() / u128::from(runs)).min(u64::MAX as u128) as i128;
            println!(
                "{:<26} {:<24} {:>8} {:>9} {:>6} {:>11} {:>11} {:>11}",
                name, spec, s.schedules, s.events, runs, mean_us, execs_per_sec, events_per_sec
            );
            results.push(Json::obj([
                ("bench", Json::Str(name.to_string())),
                ("strategy", Json::Str(spec.clone())),
                ("schedules", Json::Int(s.schedules as i128)),
                ("events", Json::Int(i128::from(s.events))),
                ("runs", Json::Int(i128::from(runs))),
                ("wall_time_us", Json::Int(mean_us)),
                ("execs_per_sec", Json::Int(execs_per_sec)),
                ("events_per_sec", Json::Int(events_per_sec)),
                ("events_compared", Json::Int(i128::from(s.events_compared))),
                ("limit_hit", Json::Bool(s.limit_hit)),
            ]));
        }
    }

    let doc = Json::obj([
        ("format", Json::Str("lazylocks-perf".to_string())),
        ("version", Json::Int(1)),
        ("schedule_limit", Json::Int(limit as i128)),
        ("quick", Json::Bool(quick)),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
