//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds without network access, so the benches use this
//! dependency-free harness instead of criterion: warm up, run until a
//! time budget or an iteration cap is hit, report mean/min per-iteration
//! time (and optional throughput). Pass `--quick` to any bench binary to
//! shrink the budget for smoke runs (CI uses this).

use std::time::{Duration, Instant};

/// One benchmark group; prints a header on creation and aligned result
/// lines per case.
pub struct Group {
    name: String,
    budget: Duration,
    max_iters: u32,
}

/// `true` if `--quick` was passed to the bench binary.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

impl Group {
    /// A group with the default budget (0.5s per case, 1/10th of that in
    /// `--quick` mode).
    pub fn new(name: &str) -> Self {
        let budget = if quick_mode() {
            Duration::from_millis(50)
        } else {
            Duration::from_millis(500)
        };
        println!("\n== {name}");
        Group {
            name: name.to_string(),
            budget,
            max_iters: 10_000,
        }
    }

    /// Caps iterations per case (for expensive bodies).
    pub fn max_iters(mut self, n: u32) -> Self {
        self.max_iters = n;
        self
    }

    /// Times `f`, printing mean/min per-iteration wall time.
    pub fn bench(&self, case: &str, mut f: impl FnMut()) -> Duration {
        self.bench_throughput(case, 0, &mut f)
    }

    /// Times `f`, additionally reporting `elements / mean-time` as
    /// throughput when `elements > 0`.
    ///
    /// Iterations are run in batches sized so that one batch takes on the
    /// order of 50µs: a nanosecond-scale body is then measured thousands
    /// of calls per `Instant` pair, amortising the timer overhead that a
    /// per-call measurement would fold into the result.
    pub fn bench_throughput(&self, case: &str, elements: u64, f: &mut dyn FnMut()) -> Duration {
        // Warm-up and batch-size calibration from a single timed run.
        let t0 = Instant::now();
        f();
        let single = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_micros(50).as_nanos() / single.as_nanos()).clamp(1, 10_000) as u32;

        let mut iters = 0u32;
        let mut min = Duration::MAX;
        let started = Instant::now();
        while started.elapsed() < self.budget && iters < self.max_iters {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            min = min.min(t0.elapsed() / batch);
            iters += batch;
        }
        let mean = started.elapsed() / iters.max(1);
        let throughput = if elements > 0 && mean > Duration::ZERO {
            format!(
                "  ({:.1} Melem/s)",
                elements as f64 / mean.as_secs_f64() / 1e6
            )
        } else {
            String::new()
        };
        println!(
            "   {:<40} mean {:>12?}  min {:>12?}  ({} iters){}",
            format!("{}/{case}", self.name),
            mean,
            min,
            iters,
            throughput
        );
        mean
    }
}

/// Keeps a value from being optimised away (stable-Rust black box).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
