//! Micro-benchmark: happens-before construction and fingerprinting
//! throughput — the per-event cost every explorer pays.

use lazylocks_bench::timing::{black_box, Group};
use lazylocks_hbr::{event_record_hash, ClockEngine, HbBuilder, HbMode, PrefixAccumulator};
use lazylocks_model::{ProgramBuilder, Reg};
use lazylocks_runtime::{run_schedule, Event};

/// A trace with a healthy mix of variable and mutex events.
fn sample_trace(threads: usize, rounds: usize) -> (lazylocks_model::Program, Vec<Event>) {
    let mut b = ProgramBuilder::new("bench");
    let m = b.mutex("m");
    let shared = b.var("shared", 0);
    let slots = b.var_array("slot", threads, 0);
    #[allow(clippy::needless_range_loop)] // i is the thread id
    for i in 0..threads {
        let slot = slots[i];
        b.thread(format!("T{i}"), move |t| {
            t.repeat(rounds, |t, _| {
                t.with_lock(m, |t| {
                    t.load(Reg(0), slot);
                    t.add(Reg(0), Reg(0), 1);
                    t.store(slot, Reg(0));
                });
                t.load(Reg(1), shared);
                t.store(shared, Reg(1));
            });
        });
    }
    let p = b.build();
    // The default completion runs threads in id order; that is enough
    // structure for a representative trace.
    let run = run_schedule(&p, &[]).unwrap();
    (p, run.trace)
}

fn main() {
    let (program, trace) = sample_trace(4, 8);
    let group = Group::new("hbr_fingerprint");
    let elements = trace.len() as u64;
    for mode in [HbMode::Regular, HbMode::Lazy, HbMode::SyncOnly] {
        group.bench_throughput(&format!("from_trace/{mode}"), elements, &mut || {
            black_box(HbBuilder::from_trace(mode, &program, &trace).fingerprint());
        });
        group.bench_throughput(&format!("clock_engine/{mode}"), elements, &mut || {
            let mut engine = ClockEngine::for_program(mode, &program);
            let mut acc = PrefixAccumulator::new();
            for e in &trace {
                let clock = engine.apply(e);
                acc.absorb(event_record_hash(e, clock));
            }
            black_box(acc.fingerprint());
        });
    }
}
