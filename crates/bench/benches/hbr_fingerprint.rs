//! Micro-benchmark: happens-before construction and fingerprinting
//! throughput — the per-event cost every explorer pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lazylocks_hbr::{event_record_hash, ClockEngine, HbBuilder, HbMode, PrefixAccumulator};
use lazylocks_model::{ProgramBuilder, Reg, ThreadId};
use lazylocks_runtime::{run_schedule, Event};

/// A trace with a healthy mix of variable and mutex events.
fn sample_trace(threads: usize, rounds: usize) -> (lazylocks_model::Program, Vec<Event>) {
    let mut b = ProgramBuilder::new("bench");
    let m = b.mutex("m");
    let shared = b.var("shared", 0);
    let slots = b.var_array("slot", threads, 0);
    #[allow(clippy::needless_range_loop)] // i is the thread id
    for i in 0..threads {
        let slot = slots[i];
        b.thread(format!("T{i}"), move |t| {
            t.repeat(rounds, |t, _| {
                t.with_lock(m, |t| {
                    t.load(Reg(0), slot);
                    t.add(Reg(0), Reg(0), 1);
                    t.store(slot, Reg(0));
                });
                t.load(Reg(1), shared);
                t.store(shared, Reg(1));
            });
        });
    }
    let p = b.build();
    let trace = run_schedule(&p, &[]).map(|r| r.trace).unwrap_or_default();
    // Round-robin-ish completion via thread order: build a longer trace by
    // running threads in id order (the default completion).
    let schedule: Vec<ThreadId> = Vec::new();
    let run = run_schedule(&p, &schedule).unwrap();
    let _ = trace;
    (p, run.trace)
}

fn hbr_throughput(c: &mut Criterion) {
    let (program, trace) = sample_trace(4, 8);
    let mut group = c.benchmark_group("hbr_fingerprint");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for mode in [HbMode::Regular, HbMode::Lazy, HbMode::SyncOnly] {
        group.bench_with_input(
            BenchmarkId::new("from_trace", format!("{mode}")),
            &trace,
            |b, trace| {
                b.iter(|| HbBuilder::from_trace(mode, &program, trace).fingerprint())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("clock_engine", format!("{mode}")),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut engine = ClockEngine::for_program(mode, &program);
                    let mut acc = PrefixAccumulator::new();
                    for e in trace {
                        let clock = engine.apply(e);
                        acc.absorb(event_record_hash(e, &clock));
                    }
                    acc.fingerprint()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, hbr_throughput);
criterion_main!(benches);
