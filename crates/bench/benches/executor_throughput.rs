//! Micro-benchmark: interpreter throughput — visible events per second of
//! a single deterministic run, and the cost of executor snapshots (the
//! per-node price of the snapshot-based explorers).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lazylocks_model::{Program, ProgramBuilder, Reg};
use lazylocks_runtime::{run_schedule, Executor};

fn long_program(rounds: usize) -> Program {
    let mut b = ProgramBuilder::new("long");
    let m = b.mutex("m");
    let xs = b.var_array("x", 4, 0);
    for i in 0..2 {
        let xs = xs.clone();
        b.thread(format!("T{i}"), move |t| {
            t.repeat(rounds, |t, k| {
                let x = xs[(i + k) % 4];
                t.with_lock(m, |t| {
                    t.load(Reg(0), x);
                    t.add(Reg(0), Reg(0), 1);
                    t.store(x, Reg(0));
                });
            });
        });
    }
    b.build()
}

fn executor_throughput(c: &mut Criterion) {
    let program = long_program(200);
    let events = run_schedule(&program, &[]).unwrap().trace.len() as u64;

    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(events));
    group.bench_function("run_schedule_events", |b| {
        b.iter(|| run_schedule(&program, &[]).unwrap().trace.len())
    });
    group.finish();

    let mut exec = Executor::new(&program);
    for _ in 0..50 {
        let t = exec.enabled_threads()[0];
        exec.step(t);
    }
    let mut group = c.benchmark_group("snapshots");
    group.bench_function("executor_clone", |b| b.iter(|| exec.clone()));
    group.bench_function("state_snapshot_fingerprint", |b| {
        b.iter(|| exec.snapshot().fingerprint())
    });
    group.finish();
}

criterion_group!(benches, executor_throughput);
criterion_main!(benches);
