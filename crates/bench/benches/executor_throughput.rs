//! Micro-benchmark: interpreter throughput — visible events per second of
//! a single deterministic run, and the cost of executor snapshots (the
//! per-node price of the snapshot-based explorers).

use lazylocks_bench::timing::{black_box, Group};
use lazylocks_model::{Program, ProgramBuilder, Reg};
use lazylocks_runtime::{run_schedule, Executor};

fn long_program(rounds: usize) -> Program {
    let mut b = ProgramBuilder::new("long");
    let m = b.mutex("m");
    let xs = b.var_array("x", 4, 0);
    for i in 0..2 {
        let xs = xs.clone();
        b.thread(format!("T{i}"), move |t| {
            t.repeat(rounds, |t, k| {
                let x = xs[(i + k) % 4];
                t.with_lock(m, |t| {
                    t.load(Reg(0), x);
                    t.add(Reg(0), Reg(0), 1);
                    t.store(x, Reg(0));
                });
            });
        });
    }
    b.build()
}

fn main() {
    let program = long_program(200);
    let events = run_schedule(&program, &[]).unwrap().trace.len() as u64;

    let group = Group::new("executor");
    group.bench_throughput("run_schedule_events", events, &mut || {
        black_box(run_schedule(&program, &[]).unwrap().trace.len());
    });

    let mut exec = Executor::new(&program);
    for _ in 0..50 {
        let t = exec.enabled_threads()[0];
        exec.step(t);
    }
    let group = Group::new("snapshots");
    group.bench("executor_clone", || {
        black_box(exec.clone());
    });
    group.bench("state_snapshot_fingerprint", || {
        black_box(exec.snapshot().fingerprint());
    });
}
