//! Macro-benchmark: wall-clock cost of exploring representative corpus
//! programs under each strategy with a fixed schedule budget, driven
//! through the session API.

use lazylocks::{ExploreConfig, ExploreSession, StrategyRegistry};
use lazylocks_bench::timing::{black_box, Group};

fn main() {
    let registry = StrategyRegistry::default();
    let subjects = [
        "paper-figure1",
        "coarse-disjoint-t3-r1",
        "coarse-shared-t3-r1",
        "philosophers-ordered-3",
        "indexer-t2-s4",
    ];
    let specs = ["dfs", "dpor", "caching", "caching(mode=lazy)", "lazy-dpor"];
    let group = Group::new("explore_speed").max_iters(50);
    for subject in subjects {
        let bench = lazylocks_suite::by_name(subject).expect("corpus benchmark");
        let session = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(500))
            .progress_every(0);
        for spec in specs {
            group.bench(&format!("{spec}/{subject}"), || {
                black_box(session.run_with(&registry, spec).expect("registered spec"));
            });
        }
    }
}
