//! Macro-benchmark: wall-clock cost of exploring representative corpus
//! programs under each strategy with a fixed schedule budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer, HbrCaching, LazyDpor};

fn explore_speed(c: &mut Criterion) {
    let subjects = [
        "paper-figure1",
        "coarse-disjoint-t3-r1",
        "coarse-shared-t3-r1",
        "philosophers-ordered-3",
        "indexer-t2-s4",
    ];
    let mut group = c.benchmark_group("explore_speed");
    for name in subjects {
        let bench = lazylocks_suite::by_name(name).expect("corpus benchmark");
        let config = ExploreConfig::with_limit(500);
        group.bench_with_input(BenchmarkId::new("dfs", name), &bench, |b, bench| {
            b.iter(|| DfsEnumeration.explore(&bench.program, &config))
        });
        group.bench_with_input(BenchmarkId::new("dpor", name), &bench, |b, bench| {
            b.iter(|| Dpor::default().explore(&bench.program, &config))
        });
        group.bench_with_input(BenchmarkId::new("caching", name), &bench, |b, bench| {
            b.iter(|| HbrCaching::regular().explore(&bench.program, &config))
        });
        group.bench_with_input(BenchmarkId::new("lazy-caching", name), &bench, |b, bench| {
            b.iter(|| HbrCaching::lazy().explore(&bench.program, &config))
        });
        group.bench_with_input(BenchmarkId::new("lazy-dpor", name), &bench, |b, bench| {
            b.iter(|| LazyDpor::default().explore(&bench.program, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, explore_speed);
criterion_main!(benches);
