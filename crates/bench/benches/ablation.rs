//! Ablation benches for the design choices DESIGN.md calls out:
//! sleep sets on/off, terminal-only vs prefix caching surrogate
//! (regular vs lazy cache keys), and parallel DFS worker scaling.
//!
//! Strategies are built from registry spec strings — the same entry point
//! the CLI and the session API use.

use lazylocks::{ExploreConfig, StrategyRegistry};
use lazylocks_bench::timing::{black_box, Group};

fn bench_specs(
    group: &Group,
    registry: &StrategyRegistry,
    subject: &str,
    specs: &[&str],
    limit: usize,
) {
    let bench = lazylocks_suite::by_name(subject).expect("corpus benchmark");
    let config = ExploreConfig::with_limit(limit);
    for spec in specs {
        let explorer = registry.create(spec).expect("registered spec");
        group.bench(&format!("{spec}/{subject}"), || {
            black_box(explorer.explore(&bench.program, &config));
        });
    }
}

fn main() {
    let registry = StrategyRegistry::default();

    let group = Group::new("ablation_sleep_sets").max_iters(50);
    for subject in ["coarse-shared-t3-r1", "philosophers-ordered-3", "rw-r2-w1"] {
        bench_specs(
            &group,
            &registry,
            subject,
            &["dpor(sleep=false)", "dpor(sleep=true)"],
            2_000,
        );
    }

    let group = Group::new("ablation_cache_mode").max_iters(50);
    for subject in ["coarse-disjoint-t4-r1", "accounts-coarse-disjoint3"] {
        bench_specs(
            &group,
            &registry,
            subject,
            &["caching(mode=regular)", "caching(mode=lazy)"],
            5_000,
        );
    }

    let group = Group::new("ablation_parallel_workers").max_iters(20);
    for workers in [1usize, 2, 4] {
        bench_specs(
            &group,
            &registry,
            "coarse-shared-t4-r1",
            &[&format!("parallel(workers={workers})")],
            3_000,
        );
    }
}
