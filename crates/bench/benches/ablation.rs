//! Ablation benches for the design choices DESIGN.md calls out:
//! sleep sets on/off, terminal-only vs prefix caching surrogate
//! (regular vs lazy cache keys), and parallel DFS worker scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazylocks::{Dpor, ExploreConfig, Explorer, HbrCaching, ParallelDfs};

fn sleep_set_ablation(c: &mut Criterion) {
    let subjects = ["coarse-shared-t3-r1", "philosophers-ordered-3", "rw-r2-w1"];
    let mut group = c.benchmark_group("ablation_sleep_sets");
    for name in subjects {
        let bench = lazylocks_suite::by_name(name).expect("corpus benchmark");
        let config = ExploreConfig::with_limit(2_000);
        group.bench_with_input(BenchmarkId::new("dpor", name), &bench, |b, bench| {
            b.iter(|| {
                Dpor {
                    sleep_sets: false,
                    ..Dpor::default()
                }
                .explore(&bench.program, &config)
            })
        });
        group.bench_with_input(BenchmarkId::new("dpor-sleep", name), &bench, |b, bench| {
            b.iter(|| {
                Dpor {
                    sleep_sets: true,
                    ..Dpor::default()
                }
                .explore(&bench.program, &config)
            })
        });
    }
    group.finish();
}

fn cache_mode_ablation(c: &mut Criterion) {
    let subjects = ["coarse-disjoint-t4-r1", "accounts-coarse-disjoint3"];
    let mut group = c.benchmark_group("ablation_cache_mode");
    for name in subjects {
        let bench = lazylocks_suite::by_name(name).expect("corpus benchmark");
        let config = ExploreConfig::with_limit(5_000);
        group.bench_with_input(BenchmarkId::new("regular", name), &bench, |b, bench| {
            b.iter(|| HbrCaching::regular().explore(&bench.program, &config))
        });
        group.bench_with_input(BenchmarkId::new("lazy", name), &bench, |b, bench| {
            b.iter(|| HbrCaching::lazy().explore(&bench.program, &config))
        });
    }
    group.finish();
}

fn parallel_scaling(c: &mut Criterion) {
    let bench = lazylocks_suite::by_name("coarse-shared-t4-r1").expect("corpus benchmark");
    let config = ExploreConfig::with_limit(3_000);
    let mut group = c.benchmark_group("ablation_parallel_workers");
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| b.iter(|| ParallelDfs { workers }.explore(&bench.program, &config)),
        );
    }
    group.finish();
}

criterion_group!(benches, sleep_set_ablation, cache_mode_ablation, parallel_scaling);
criterion_main!(benches);
