//! Micro-benchmark: vector-clock lattice operations at the widths the
//! corpus uses (2–8 threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazylocks_clock::VectorClock;

fn clock_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_clock");
    for width in [2usize, 4, 8, 16] {
        let a = VectorClock::from_counts((0..width as u32).collect());
        let b = VectorClock::from_counts((0..width as u32).rev().collect());
        group.bench_with_input(BenchmarkId::new("join", width), &width, |bencher, _| {
            bencher.iter(|| {
                let mut x = a.clone();
                x.join(&b);
                x
            })
        });
        group.bench_with_input(BenchmarkId::new("le", width), &width, |bencher, _| {
            bencher.iter(|| a.le(&b))
        });
        group.bench_with_input(
            BenchmarkId::new("causal_cmp", width),
            &width,
            |bencher, _| bencher.iter(|| a.causal_cmp(&b)),
        );
    }
    group.finish();
}

criterion_group!(benches, clock_ops);
criterion_main!(benches);
