//! Micro-benchmark: vector-clock lattice operations at the widths the
//! corpus uses (2–8 threads).

use lazylocks_bench::timing::{black_box, Group};
use lazylocks_clock::VectorClock;

fn main() {
    let group = Group::new("vector_clock");
    for width in [2usize, 4, 8, 16] {
        let a = VectorClock::from_counts((0..width as u32).collect());
        let b = VectorClock::from_counts((0..width as u32).rev().collect());
        group.bench(&format!("join/{width}"), || {
            let mut x = a.clone();
            x.join(&b);
            black_box(x);
        });
        group.bench(&format!("le/{width}"), || {
            black_box(a.le(&b));
        });
        group.bench(&format!("causal_cmp/{width}"), || {
            black_box(a.causal_cmp(&b));
        });
    }
}
