//! Bug reports with replayable schedules.

use lazylocks_model::{MutexId, Program, ThreadId};
use lazylocks_runtime::{run_schedule, Fault, InfeasibleSchedule, RunResult};
use std::fmt;

/// What kind of safety violation was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BugKind {
    /// No enabled thread while some threads wait on locks.
    Deadlock {
        /// The blocked threads and the mutexes they wait on.
        waiting: Vec<(ThreadId, MutexId)>,
    },
    /// An assertion failure, unlock-without-hold or local-step-budget
    /// fault.
    Fault(Fault),
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugKind::Deadlock { waiting } => {
                write!(f, "deadlock:")?;
                for (t, m) in waiting {
                    write!(f, " {t} waits on {m};")?;
                }
                Ok(())
            }
            BugKind::Fault(fault) => write!(f, "fault: {fault}"),
        }
    }
}

/// A bug found during exploration, together with the exact schedule that
/// triggers it — the CHESS-style "reproducible Heisenbug".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugReport {
    /// The violation.
    pub kind: BugKind,
    /// Thread choices that deterministically reproduce the bug via
    /// [`BugReport::reproduce`].
    pub schedule: Vec<ThreadId>,
    /// Number of visible events in the buggy execution.
    pub trace_len: usize,
}

impl BugReport {
    /// Replays the recorded schedule, reproducing the buggy execution
    /// deterministically.
    pub fn reproduce(&self, program: &Program) -> Result<RunResult, InfeasibleSchedule> {
        run_schedule(program, &self.schedule)
    }

    /// `true` for deadlocks.
    pub fn is_deadlock(&self) -> bool {
        matches!(self.kind, BugKind::Deadlock { .. })
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (schedule of {} choices, trace of {} events)",
            self.kind,
            self.schedule.len(),
            self.trace_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::ProgramBuilder;

    #[test]
    fn deadlock_report_reproduces() {
        let mut b = ProgramBuilder::new("abba");
        let a = b.mutex("a");
        let c = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(a);
            t.lock(c);
        });
        b.thread("T2", |t| {
            t.lock(c);
            t.lock(a);
        });
        let p = b.build();
        let report = BugReport {
            kind: BugKind::Deadlock {
                waiting: vec![(ThreadId(0), c), (ThreadId(1), a)],
            },
            schedule: vec![ThreadId(0), ThreadId(1)],
            trace_len: 2,
        };
        assert!(report.is_deadlock());
        let run = report.reproduce(&p).unwrap();
        assert!(run.status.is_deadlock());
        assert_eq!(run.trace.len(), 2);
    }

    #[test]
    fn display_formats() {
        let report = BugReport {
            kind: BugKind::Deadlock {
                waiting: vec![(ThreadId(0), MutexId(1))],
            },
            schedule: vec![ThreadId(0)],
            trace_len: 1,
        };
        let text = report.to_string();
        assert!(text.contains("deadlock"));
        assert!(text.contains("t0 waits on m1"));
        assert!(text.contains("schedule of 1 choices"));
    }
}
