//! Exploration configuration.

use crate::checkpoint::CheckpointState;
use crate::session::ExploreControl;
use lazylocks_obs::{MetricsHandle, ProfileHandle};
use std::sync::Arc;

/// Budget and feature knobs shared by every exploration strategy.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Stop after this many *complete* schedules (terminal executions).
    /// The paper's evaluation uses 100,000.
    pub schedule_limit: usize,
    /// Abandon any single run longer than this many events. Guards against
    /// unbounded spin loops in guest programs.
    pub max_run_length: usize,
    /// CHESS-style preemption bound: maximum number of *preemptive* context
    /// switches per schedule (switching away from a thread that is still
    /// enabled). `None` means unbounded. Honoured by the DFS, caching and
    /// random strategies; ignored by DPOR (the classic algorithm's
    /// correctness argument assumes an unrestricted successor relation).
    pub preemption_bound: Option<u32>,
    /// Stop the whole exploration at the first bug (deadlock or fault).
    pub stop_on_bug: bool,
    /// Seed for randomized strategies.
    pub seed: u64,
    /// Record distinct terminal states (needed for the `#states` column).
    pub collect_states: bool,
    /// Record distinct terminal regular HBRs.
    pub collect_hbrs: bool,
    /// Record distinct terminal lazy HBRs.
    pub collect_lazy_hbrs: bool,
    /// Also record one witness schedule per distinct terminal state in
    /// [`ExploreStats::state_witnesses`](crate::ExploreStats) — handy for
    /// debugging missed interleavings, off by default (it allocates).
    pub collect_state_witnesses: bool,
    /// Run control: cancellation token, wall-clock deadline and observer
    /// fan-out. Inert by default; [`ExploreSession`](crate::ExploreSession)
    /// installs a live control for the duration of a run. Checked
    /// cooperatively by every strategy's main loop.
    pub control: ExploreControl,
    /// Metrics sink: counters, histograms and phase timers recorded by
    /// every strategy through per-worker shards. Disabled by default —
    /// each instrumentation point then costs a single branch.
    pub metrics: MetricsHandle,
    /// Exploration profiler: per-program-point attribution of races,
    /// backtracks, sleep-set blocks and cache prunes, plus per-HBR-class
    /// redundancy and subtree span accounting. Disabled by default —
    /// each instrumentation point then costs a single branch.
    pub profile: ProfileHandle,
    /// Snapshot the exploration frontier every this many complete
    /// schedules, delivered to observers through
    /// [`Observer::on_checkpoint`](crate::Observer::on_checkpoint).
    /// `0` (the default) disables checkpointing entirely — the hot loop
    /// then pays a single branch. Honoured by the sequential DPOR engine.
    pub checkpoint_every: usize,
    /// Resume an interrupted exploration from a previously captured
    /// frontier instead of starting at the root. The caller is
    /// responsible for pairing the checkpoint with the same program,
    /// strategy and seed it was taken from.
    pub resume_from: Option<Arc<CheckpointState>>,
    /// Capture one final frontier checkpoint when the run stops early
    /// (schedule budget exhausted or stop-on-bug), so a budget-bounded
    /// *slice* of a larger exploration always ends with a resumable
    /// frontier. Off by default: periodic checkpointing alone never
    /// snapshots at the stop point, which keeps the single-process
    /// `--checkpoint-dir` cadence exactly as documented. The distributed
    /// lease runner turns this on to chain slices.
    pub checkpoint_on_stop: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            schedule_limit: 100_000,
            max_run_length: 10_000,
            preemption_bound: None,
            stop_on_bug: false,
            seed: 0x1a2b_3c4d,
            collect_states: true,
            collect_hbrs: true,
            collect_lazy_hbrs: true,
            collect_state_witnesses: false,
            control: ExploreControl::default(),
            metrics: MetricsHandle::disabled(),
            profile: ProfileHandle::disabled(),
            checkpoint_every: 0,
            resume_from: None,
            checkpoint_on_stop: false,
        }
    }
}

impl ExploreConfig {
    /// Convenience: default configuration with a schedule limit.
    pub fn with_limit(schedule_limit: usize) -> Self {
        ExploreConfig {
            schedule_limit,
            ..ExploreConfig::default()
        }
    }

    /// Sets the preemption bound, returning `self` for chaining.
    pub fn preemptions(mut self, bound: u32) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Sets stop-on-bug, returning `self` for chaining.
    pub fn stopping_on_bug(mut self) -> Self {
        self.stop_on_bug = true;
        self
    }

    /// Sets the random seed, returning `self` for chaining.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a run control, returning `self` for chaining. Most users
    /// should go through [`ExploreSession`](crate::ExploreSession) instead.
    pub fn controlled(mut self, control: ExploreControl) -> Self {
        self.control = control;
        self
    }

    /// Installs a metrics sink, returning `self` for chaining.
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        self.metrics = metrics;
        self
    }

    /// Installs an exploration profiler, returning `self` for chaining.
    pub fn with_profile(mut self, profile: ProfileHandle) -> Self {
        self.profile = profile;
        self
    }

    /// Enables periodic frontier checkpointing every `every` schedules
    /// (`0` disables), returning `self` for chaining.
    pub fn checkpointing_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Resumes from a captured frontier, returning `self` for chaining.
    pub fn resuming_from(mut self, checkpoint: Arc<CheckpointState>) -> Self {
        self.resume_from = Some(checkpoint);
        self
    }

    /// Also captures one final frontier checkpoint when the run stops on
    /// its schedule budget, returning `self` for chaining.
    pub fn checkpointing_on_stop(mut self) -> Self {
        self.checkpoint_on_stop = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_budget() {
        let c = ExploreConfig::default();
        assert_eq!(c.schedule_limit, 100_000);
        assert!(c.preemption_bound.is_none());
        assert!(!c.stop_on_bug);
        assert!(c.collect_states && c.collect_hbrs && c.collect_lazy_hbrs);
    }

    #[test]
    fn builders_chain() {
        let c = ExploreConfig::with_limit(500)
            .preemptions(2)
            .stopping_on_bug()
            .seeded(42);
        assert_eq!(c.schedule_limit, 500);
        assert_eq!(c.preemption_bound, Some(2));
        assert!(c.stop_on_bug);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn checkpointing_is_inert_by_default() {
        let c = ExploreConfig::default();
        assert_eq!(c.checkpoint_every, 0);
        assert!(c.resume_from.is_none());
        let c = c.checkpointing_every(1000);
        assert_eq!(c.checkpoint_every, 1000);
    }
}
