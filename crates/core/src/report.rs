//! Tabular reports for the evaluation harness.
//!
//! The figure binaries produce one [`Row`] per benchmark and aggregate them
//! with the same statistics the paper reports: how many benchmarks fall off
//! the diagonal of a scatter plot, and the total/percentage reduction among
//! those.

use std::fmt::Write as _;

/// One benchmark's result in a two-metric comparison (a point of a scatter
/// plot like the paper's Figures 2 and 3).
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark id (1-based, as in the paper's figures).
    pub id: usize,
    /// Benchmark name.
    pub name: String,
    /// The x-axis metric (e.g. `#HBRs` for Figure 2).
    pub x: usize,
    /// The y-axis metric (e.g. `#lazy HBRs` for Figure 2).
    pub y: usize,
    /// Complete schedules explored while measuring.
    pub schedules: usize,
    /// `true` if the schedule limit stopped exploration (rendered
    /// underlined/starred, as in the paper).
    pub limit_hit: bool,
}

/// Aggregates in the style of the paper's §3 prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagonalSummary {
    /// Benchmarks with `y < x` (strictly better on the y metric).
    pub below_diagonal: usize,
    /// Benchmarks with `y == x`.
    pub on_diagonal: usize,
    /// Benchmarks with `y > x` (should not happen in Figure 2; happens in
    /// Figure 3 where y is the *better* technique).
    pub above_diagonal: usize,
    /// Σ(x − y) over benchmarks below the diagonal.
    pub reduction_total: usize,
    /// Σ(x) over benchmarks below the diagonal.
    pub reduction_base: usize,
    /// Σ(y − x) over benchmarks above the diagonal.
    pub gain_total: usize,
    /// Σ(x) over benchmarks above the diagonal.
    pub gain_base: usize,
}

impl DiagonalSummary {
    /// Computes the summary of a set of rows.
    pub fn of(rows: &[Row]) -> DiagonalSummary {
        let mut s = DiagonalSummary {
            below_diagonal: 0,
            on_diagonal: 0,
            above_diagonal: 0,
            reduction_total: 0,
            reduction_base: 0,
            gain_total: 0,
            gain_base: 0,
        };
        for r in rows {
            use std::cmp::Ordering::*;
            match r.y.cmp(&r.x) {
                Less => {
                    s.below_diagonal += 1;
                    s.reduction_total += r.x - r.y;
                    s.reduction_base += r.x;
                }
                Equal => s.on_diagonal += 1,
                Greater => {
                    s.above_diagonal += 1;
                    s.gain_total += r.y - r.x;
                    s.gain_base += r.x;
                }
            }
        }
        s
    }

    /// `reduction_total / reduction_base` as a percentage (the paper's
    /// "80% of the unique HBRs explored were found to be redundant").
    pub fn reduction_percent(&self) -> f64 {
        if self.reduction_base == 0 {
            0.0
        } else {
            100.0 * self.reduction_total as f64 / self.reduction_base as f64
        }
    }

    /// `gain_total / gain_base` as a percentage (the paper's "84% more
    /// terminal lazy HBRs").
    pub fn gain_percent(&self) -> f64 {
        if self.gain_base == 0 {
            0.0
        } else {
            100.0 * self.gain_total as f64 / self.gain_base as f64
        }
    }
}

/// Renders rows as tab-separated values with a header, suitable for
/// spreadsheet import or gnuplot.
pub fn rows_to_tsv(x_label: &str, y_label: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "id\tname\t{x_label}\t{y_label}\tschedules\tlimit_hit");
    for r in rows {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            r.id, r.name, r.x, r.y, r.schedules, r.limit_hit as u8
        );
    }
    out
}

/// Renders an aligned human-readable table.
pub fn rows_to_table(x_label: &str, y_label: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(
        out,
        "{:>3}  {:<name_w$}  {:>12}  {:>12}  {:>10}  limit",
        "id", "name", x_label, y_label, "schedules"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>3}  {:<name_w$}  {:>12}  {:>12}  {:>10}  {}",
            r.id,
            r.name,
            r.x,
            r.y,
            r.schedules,
            if r.limit_hit { "*" } else { "" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: usize, x: usize, y: usize) -> Row {
        Row {
            id,
            name: format!("b{id}"),
            x,
            y,
            schedules: x,
            limit_hit: false,
        }
    }

    #[test]
    fn summary_classifies_rows() {
        let rows = vec![row(1, 100, 20), row(2, 50, 50), row(3, 10, 30)];
        let s = DiagonalSummary::of(&rows);
        assert_eq!(s.below_diagonal, 1);
        assert_eq!(s.on_diagonal, 1);
        assert_eq!(s.above_diagonal, 1);
        assert_eq!(s.reduction_total, 80);
        assert_eq!(s.reduction_base, 100);
        assert_eq!(s.gain_total, 20);
        assert_eq!(s.gain_base, 10);
        assert!((s.reduction_percent() - 80.0).abs() < 1e-9);
        assert!((s.gain_percent() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_rows_give_zero_percentages() {
        let s = DiagonalSummary::of(&[]);
        assert_eq!(s.reduction_percent(), 0.0);
        assert_eq!(s.gain_percent(), 0.0);
    }

    #[test]
    fn tsv_has_header_and_one_line_per_row() {
        let tsv = rows_to_tsv("hbrs", "lazy", &[row(1, 5, 3), row(2, 4, 4)]);
        let lines: Vec<_> = tsv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "id\tname\thbrs\tlazy\tschedules\tlimit_hit");
        assert!(lines[1].starts_with("1\tb1\t5\t3"));
    }

    #[test]
    fn table_marks_limit_hits() {
        let mut r = row(1, 5, 3);
        r.limit_hit = true;
        let table = rows_to_table("x", "y", &[r]);
        assert!(table.contains('*'));
    }
}
