//! Serialisable DPOR exploration frontiers.
//!
//! A [`CheckpointState`] captures everything the sequential DPOR engine
//! needs to continue an interrupted exploration: the schedule prefix that
//! reaches the current frame stack, the backtrack/done/sleep sets of every
//! frame on that stack, the statistics accumulated so far, and the
//! explored-set fingerprints that deduplicate terminal states and
//! happens-before relations. Executors and vector clocks are *not*
//! serialised — they are deterministic functions of the program and the
//! schedule prefix, so resume re-executes the prefix to rebuild them and
//! then overlays the recorded sets. This keeps the format small, portable
//! across pointer widths, and reusable as the wire unit for distributed
//! subtree leases.
//!
//! Durability and on-disk encoding live in `lazylocks_trace::checkpoint`;
//! this module is plain data so the core crate stays I/O-free.

use crate::stats::ExploreStats;
use lazylocks_model::ThreadId;

/// The per-frame exploration sets, as raw [`ThreadSet`] bitmasks.
///
/// [`ThreadSet`]: lazylocks_model::ThreadSet
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameSets {
    /// Threads scheduled for exploration from this frame.
    pub backtrack: u64,
    /// Threads already explored from this frame.
    pub done: u64,
    /// Threads asleep at this frame (sleep-set pruning).
    pub sleep: u64,
}

/// A resumable snapshot of a sequential DPOR exploration.
///
/// Produced by the engine when [`ExploreConfig::checkpoint_every`] is set
/// (delivered through [`Observer::on_checkpoint`]) and consumed through
/// [`ExploreConfig::resume_from`]. A resumed run reaches the same final
/// statistics — including frame-pool hit counts, which [`pool_free`]
/// makes resumable — as the uninterrupted run; only wall-clock time
/// differs (it restarts on resume).
///
/// [`pool_free`]: CheckpointState::pool_free
///
/// [`ExploreConfig::checkpoint_every`]: crate::ExploreConfig::checkpoint_every
/// [`ExploreConfig::resume_from`]: crate::ExploreConfig::resume_from
/// [`Observer::on_checkpoint`]: crate::Observer::on_checkpoint
#[derive(Debug, Clone, Default)]
pub struct CheckpointState {
    /// The scheduling choices leading from the root to the deepest frame:
    /// `schedule[i]` is the thread stepped from frame `i`, so the frame
    /// stack has `schedule.len() + 1` entries.
    pub schedule: Vec<ThreadId>,
    /// Backtrack/done/sleep sets per frame, root first
    /// (`frames.len() == schedule.len() + 1`).
    pub frames: Vec<FrameSets>,
    /// Statistics accumulated before the checkpoint (wall time excluded —
    /// it restarts on resume).
    pub stats: ExploreStats,
    /// Distinct terminal-state fingerprints seen so far, ascending.
    pub states: Vec<u128>,
    /// Distinct terminal regular-HBR fingerprints seen so far, ascending.
    pub hbrs: Vec<u128>,
    /// Distinct terminal lazy-HBR fingerprints seen so far, ascending.
    pub lazy_hbrs: Vec<u128>,
    /// Retired frame bodies sitting in the engine's free list at capture
    /// time. A resume pre-warms its (cold) pool to this length so pool
    /// *hits* — an [`ExploreStats`] field — stay byte-identical to the
    /// uninterrupted run's.
    pub pool_free: u64,
}

impl CheckpointState {
    /// Internal consistency check: frame count matches the schedule
    /// prefix and no recorded thread exceeds the bitmask capacity.
    pub fn validate(&self) -> Result<(), String> {
        if self.frames.len() != self.schedule.len() + 1 {
            return Err(format!(
                "checkpoint has {} frames for a {}-choice schedule (want {})",
                self.frames.len(),
                self.schedule.len(),
                self.schedule.len() + 1
            ));
        }
        if let Some(t) = self
            .schedule
            .iter()
            .find(|t| t.index() >= lazylocks_model::ThreadSet::MAX_THREADS)
        {
            return Err(format!("checkpoint schedule names out-of-range thread {t}"));
        }
        Ok(())
    }

    /// Frames on the serialised stack.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_requires_one_more_frame_than_choices() {
        let mut cp = CheckpointState {
            schedule: vec![ThreadId(0), ThreadId(1)],
            frames: vec![FrameSets::default(); 3],
            ..CheckpointState::default()
        };
        assert!(cp.validate().is_ok());
        cp.frames.pop();
        let err = cp.validate().unwrap_err();
        assert!(err.contains("frames"), "{err}");
    }

    #[test]
    fn validate_rejects_out_of_range_threads() {
        let cp = CheckpointState {
            schedule: vec![ThreadId(64)],
            frames: vec![FrameSets::default(); 2],
            ..CheckpointState::default()
        };
        assert!(cp.validate().is_err());
    }
}
