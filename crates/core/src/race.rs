//! Happens-before data-race detection over execution traces.
//!
//! A *data race* is a pair of accesses to the same shared variable, at
//! least one a write, from different threads, unordered by the
//! synchronisation-only happens-before relation (program order plus mutex
//! edges — [`HbMode::SyncOnly`]). This is the classical dynamic race
//! detector (FastTrack-style, simplified to full vector clocks), applied to
//! the traces the exploration engines produce.

use lazylocks_clock::VectorClock;
use lazylocks_hbr::{ClockEngine, HbMode};
use lazylocks_model::{Program, VarId, VisibleKind};
use lazylocks_runtime::Event;
use std::collections::HashSet;
use std::fmt;

/// A data race: two conflicting, concurrent accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The variable raced on.
    pub var: VarId,
    /// The earlier access in the analysed trace.
    pub first: Event,
    /// The later access (always a conflicting one).
    pub second: Event,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race on {}: {} is concurrent with {}",
            self.var, self.first, self.second
        )
    }
}

/// Per-variable access history for the detector.
#[derive(Clone, Default)]
struct VarHistory {
    /// The last write and its clock.
    last_write: Option<(Event, VectorClock)>,
    /// Reads since the last write, with their clocks.
    reads: Vec<(Event, VectorClock)>,
}

/// Scans a trace for data races. Returns every racing pair, deduplicated
/// by `(variable, first pc, second pc)` so a loop does not report the same
/// source-level race repeatedly.
pub fn detect_races(program: &Program, trace: &[Event]) -> Vec<RaceReport> {
    let mut engine = ClockEngine::for_program(HbMode::SyncOnly, program);
    let mut history: Vec<VarHistory> = vec![VarHistory::default(); program.vars().len()];
    let mut seen: HashSet<(
        VarId,
        lazylocks_model::ThreadId,
        u32,
        lazylocks_model::ThreadId,
        u32,
    )> = HashSet::new();
    let mut races = Vec::new();

    for &event in trace {
        let clock = engine.apply(&event);
        let mut report = |first: &Event, races: &mut Vec<RaceReport>| {
            let var = first.kind.var().expect("race on variable access");
            if seen.insert((var, first.thread(), first.pc, event.thread(), event.pc)) {
                races.push(RaceReport {
                    var,
                    first: *first,
                    second: event,
                });
            }
        };
        // `old` happens-before `event` iff event's clock already covers
        // old's own component.
        let ordered = |old_event: &Event, old_clock: &VectorClock| {
            let _ = old_clock;
            clock.get(old_event.thread().index()) > old_event.id.ordinal
        };

        match event.kind {
            VisibleKind::Read(x) => {
                let h = &mut history[x.index()];
                if let Some((w, wc)) = &h.last_write {
                    if w.thread() != event.thread() && !ordered(w, wc) {
                        report(w, &mut races);
                    }
                }
                h.reads.push((event, clock.clone()));
            }
            VisibleKind::Write(x) => {
                let h = &mut history[x.index()];
                if let Some((w, wc)) = &h.last_write {
                    if w.thread() != event.thread() && !ordered(w, wc) {
                        report(w, &mut races);
                    }
                }
                for (r, rc) in &h.reads {
                    if r.thread() != event.thread() && !ordered(r, rc) {
                        report(r, &mut races);
                    }
                }
                h.last_write = Some((event, clock.clone()));
                h.reads.clear();
            }
            VisibleKind::Lock(_) | VisibleKind::Unlock(_) => {}
        }
    }
    races
}

/// `true` if the trace is race-free.
pub fn is_race_free(program: &Program, trace: &[Event]) -> bool {
    detect_races(program, trace).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{ProgramBuilder, Reg, ThreadId};
    use lazylocks_runtime::run_schedule;

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn unsynchronised_write_write_is_a_race() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |tb| tb.store(x, 1));
        b.thread("T2", |tb| tb.store(x, 2));
        let p = b.build();
        let run = run_schedule(&p, &[t(0), t(1)]).unwrap();
        let races = detect_races(&p, &run.trace);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].var, x);
        assert!(races[0].to_string().contains("data race on v0"));
    }

    #[test]
    fn lock_protected_accesses_are_not_races() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let m = b.mutex("m");
        b.thread("T1", |tb| tb.with_lock(m, |tb| tb.store(x, 1)));
        b.thread("T2", |tb| tb.with_lock(m, |tb| tb.store(x, 2)));
        let p = b.build();
        let run = run_schedule(&p, &[t(0), t(0), t(0), t(1), t(1), t(1)]).unwrap();
        assert!(is_race_free(&p, &run.trace));
    }

    #[test]
    fn read_write_race_detected_but_read_read_is_not() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("R1", |tb| {
            tb.load(Reg(0), x);
        });
        b.thread("R2", |tb| {
            tb.load(Reg(0), x);
        });
        b.thread("W", |tb| tb.store(x, 1));
        let p = b.build();
        let run = run_schedule(&p, &[t(0), t(1), t(2)]).unwrap();
        let races = detect_races(&p, &run.trace);
        // Both reads race with the write; the reads do not race each other.
        assert_eq!(races.len(), 2);
        assert!(races.iter().all(|r| r.second.thread() == t(2)));
    }

    #[test]
    fn program_order_is_never_a_race() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T", |tb| {
            tb.store(x, 1);
            tb.load(Reg(0), x);
            tb.store(x, 2);
        });
        let p = b.build();
        let run = run_schedule(&p, &[t(0), t(0), t(0)]).unwrap();
        assert!(is_race_free(&p, &run.trace));
    }

    #[test]
    fn release_acquire_chain_orders_accesses() {
        // T1 writes x under the lock; T2 locks afterwards and reads x:
        // ordered through the mutex, no race.
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let m = b.mutex("m");
        b.thread("T1", |tb| {
            tb.lock(m);
            tb.store(x, 1);
            tb.unlock(m);
        });
        b.thread("T2", |tb| {
            tb.lock(m);
            tb.load(Reg(0), x);
            tb.unlock(m);
        });
        let p = b.build();
        let run = run_schedule(&p, &[t(0), t(0), t(0), t(1), t(1), t(1)]).unwrap();
        assert!(is_race_free(&p, &run.trace));
    }

    #[test]
    fn partial_locking_still_races() {
        // T1 writes under the lock but T2 reads without it: race.
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let m = b.mutex("m");
        b.thread("T1", |tb| tb.with_lock(m, |tb| tb.store(x, 1)));
        b.thread("T2", |tb| {
            tb.load(Reg(0), x);
        });
        let p = b.build();
        let run = run_schedule(&p, &[t(0), t(0), t(0), t(1)]).unwrap();
        let races = detect_races(&p, &run.trace);
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn duplicate_source_races_are_deduplicated() {
        // The same racy pair executed in a loop reports once per pc pair.
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |tb| {
            tb.repeat(3, |tb, i| tb.store(x, i as i64));
        });
        b.thread("T2", |tb| tb.store(x, 99));
        let p = b.build();
        // Interleave so every loop iteration races with T2's write.
        let run = run_schedule(&p, &[t(0), t(1), t(0), t(0)]).unwrap();
        let races = detect_races(&p, &run.trace);
        // T2's write races with writes at 3 distinct pcs of T1, but each
        // (var, pc, pc) pair appears once.
        let mut keys: Vec<_> = races.iter().map(|r| (r.first.pc, r.second.pc)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), races.len());
    }
}
