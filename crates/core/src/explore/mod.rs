//! Exploration strategies for systematic concurrency testing.
//!
//! Every strategy explores the schedule tree of a program under a common
//! budget ([`ExploreConfig`]) and reports the same counters
//! ([`ExploreStats`]):
//!
//! | Strategy | Module | Reduction idea |
//! |----------|--------|----------------|
//! | [`DfsEnumeration`] | [`dfs`] | none (every schedule), optional preemption bound |
//! | [`Dpor`] | [`dpor`] | Flanagan–Godefroid dynamic partial-order reduction with clock vectors, optional sleep sets |
//! | [`HbrCaching`] | [`caching`] | Musuvathi–Qadeer prefix caching on the regular **or lazy** HBR fingerprint |
//! | [`LazyDpor`] | [`lazy_dpor`] | prototype of the paper's §4 future work: DPOR driven by lazy dependence |
//! | [`RandomWalk`] | [`random`] | uniform random schedules (no reduction; baseline) |
//! | [`ParallelDfs`] | [`parallel`] | DFS fanned out across OS threads |
//! | [`IterativeBounding`] | [`bounded`] | CHESS-style waves of increasing preemption budget over the caching explorer |

pub mod bounded;
pub mod caching;
pub mod dfs;
pub mod dpor;
pub mod lazy_dpor;
pub mod parallel;
pub mod random;

pub use bounded::{BoundedRun, IterativeBounding};
pub use caching::HbrCaching;
pub use dfs::DfsEnumeration;
pub use dpor::{DependenceMode, Dpor};
pub use lazy_dpor::{LazyDpor, LazyDporStyle};
pub use parallel::ParallelDfs;
pub use random::RandomWalk;

use crate::config::ExploreConfig;
use crate::stats::ExploreStats;
use lazylocks_model::Program;

/// A schedule-space exploration strategy.
pub trait Explorer {
    /// Short stable name for reports.
    fn name(&self) -> String;

    /// Explores `program` under `config`.
    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats;
}

/// Legacy closed strategy selection, superseded by the string-keyed
/// [`StrategyRegistry`](crate::StrategyRegistry) plus
/// [`ExploreSession`](crate::ExploreSession).
///
/// The enum remains as a thin shim: [`Strategy::parse`] still accepts all
/// historical names and [`Strategy::run`] delegates to the default
/// registry, so old callers keep working — but new strategies only appear
/// in the registry, never here.
#[deprecated(
    since = "0.2.0",
    note = "use StrategyRegistry spec strings with ExploreSession instead"
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Naive depth-first enumeration of every schedule.
    Dfs,
    /// Dynamic partial-order reduction (optionally with sleep sets).
    Dpor {
        /// Enable the sleep-set refinement.
        sleep_sets: bool,
    },
    /// HBR caching with the regular happens-before relation.
    HbrCaching,
    /// HBR caching with the lazy happens-before relation (the paper's
    /// contribution).
    LazyHbrCaching,
    /// Prototype lazy DPOR (paper §4).
    LazyDpor,
    /// Uniform random walks.
    Random,
    /// Parallel DFS across `workers` OS threads.
    ParallelDfs {
        /// Number of worker threads (0 = available parallelism).
        workers: usize,
    },
}

#[allow(deprecated)]
impl Strategy {
    /// Parses a legacy name: `dfs`, `dpor`, `dpor-sleep` / `dpor-nosleep`
    /// (both spellings accepted, as in the registry), `caching`,
    /// `lazy-caching`, `lazy-dpor`, `random`, `parallel`.
    pub fn parse(name: &str) -> Option<Strategy> {
        Some(match name {
            "dfs" => Strategy::Dfs,
            "dpor" | "dpor-nosleep" => Strategy::Dpor { sleep_sets: false },
            "dpor-sleep" => Strategy::Dpor { sleep_sets: true },
            "caching" => Strategy::HbrCaching,
            "lazy-caching" => Strategy::LazyHbrCaching,
            "lazy-dpor" => Strategy::LazyDpor,
            "random" => Strategy::Random,
            "parallel" => Strategy::ParallelDfs { workers: 0 },
            _ => return None,
        })
    }

    /// All canonical strategy names accepted by [`Strategy::parse`].
    pub const NAMES: [&'static str; 8] = [
        "dfs",
        "dpor",
        "dpor-sleep",
        "caching",
        "lazy-caching",
        "lazy-dpor",
        "random",
        "parallel",
    ];

    /// The registry spec string equivalent to this strategy.
    pub fn spec(&self) -> String {
        match self {
            Strategy::Dfs => "dfs".to_string(),
            Strategy::Dpor { sleep_sets } => format!("dpor(sleep={sleep_sets})"),
            Strategy::HbrCaching => "caching".to_string(),
            Strategy::LazyHbrCaching => "caching(mode=lazy)".to_string(),
            Strategy::LazyDpor => "lazy-dpor".to_string(),
            Strategy::Random => "random".to_string(),
            Strategy::ParallelDfs { workers } => format!("parallel(workers={workers})"),
        }
    }

    /// Runs the strategy by delegating to the default
    /// [`StrategyRegistry`](crate::StrategyRegistry).
    pub fn run(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        crate::registry::StrategyRegistry::default()
            .create(&self.spec())
            .expect("legacy strategy specs are always registered")
            .explore(program, config)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_parse_round_trip() {
        for name in Strategy::NAMES {
            assert!(Strategy::parse(name).is_some(), "{name} should parse");
        }
        assert!(
            Strategy::parse("dpor-nosleep").is_some(),
            "both spellings parse"
        );
        assert_eq!(Strategy::parse("nope"), None);
        assert_eq!(
            Strategy::parse("dpor"),
            Some(Strategy::Dpor { sleep_sets: false })
        );
    }

    #[test]
    fn shim_specs_resolve_in_the_default_registry() {
        let registry = crate::registry::StrategyRegistry::default();
        for name in Strategy::NAMES {
            let strategy = Strategy::parse(name).unwrap();
            assert!(
                registry.create(&strategy.spec()).is_ok(),
                "{name} → {} must resolve",
                strategy.spec()
            );
        }
    }

    #[test]
    fn shim_run_matches_direct_explorer() {
        use lazylocks_model::ProgramBuilder;
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let p = b.build();
        let config = ExploreConfig::with_limit(100);
        let via_shim = Strategy::Dpor { sleep_sets: false }.run(&p, &config);
        let direct = Dpor::default().explore(&p, &config);
        assert_eq!(via_shim.schedules, direct.schedules);
        assert_eq!(via_shim.unique_states, direct.unique_states);
    }
}
