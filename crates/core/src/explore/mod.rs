//! Exploration strategies for systematic concurrency testing.
//!
//! Every strategy explores the schedule tree of a program under a common
//! budget ([`ExploreConfig`]) and reports the same counters
//! ([`ExploreStats`]):
//!
//! | Strategy | Module | Reduction idea |
//! |----------|--------|----------------|
//! | [`DfsEnumeration`] | [`dfs`] | none (every schedule), optional preemption bound |
//! | [`Dpor`] | [`dpor`] | Flanagan–Godefroid dynamic partial-order reduction with clock vectors, optional sleep sets |
//! | [`HbrCaching`] | [`caching`] | Musuvathi–Qadeer prefix caching on the regular **or lazy** HBR fingerprint |
//! | [`LazyDpor`] | [`lazy_dpor`] | prototype of the paper's §4 future work: DPOR driven by lazy dependence |
//! | [`RandomWalk`] | [`random`] | uniform random schedules (no reduction; baseline) |
//! | [`ParallelDfs`] | [`parallel`] | DFS fanned out across OS threads |
//! | [`ParallelDpor`] | [`parallel_dpor`] | (lazy-)DPOR subtrees sharded across a work-stealing pool |
//! | [`IterativeBounding`] | [`bounded`] | CHESS-style waves of increasing preemption budget over the caching explorer |

pub mod bounded;
pub mod caching;
pub mod dfs;
pub mod dpor;
pub(crate) mod frame_pool;
pub mod lazy_dpor;
pub mod parallel;
pub mod parallel_dpor;
pub mod random;

pub use bounded::{BoundedRun, IterativeBounding};
pub use caching::HbrCaching;
pub use dfs::DfsEnumeration;
pub use dpor::{DependenceMode, Dpor};
pub use lazy_dpor::{LazyDpor, LazyDporStyle};
pub use parallel::ParallelDfs;
pub use parallel_dpor::ParallelDpor;
pub use random::RandomWalk;

use crate::config::ExploreConfig;
use crate::stats::ExploreStats;
use lazylocks_model::Program;

/// A schedule-space exploration strategy.
pub trait Explorer {
    /// Short stable name for reports.
    fn name(&self) -> String;

    /// Explores `program` under `config`.
    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats;
}

// The deprecated closed `Strategy` enum that used to live here was
// removed: all strategy selection goes through the string-keyed
// [`StrategyRegistry`](crate::StrategyRegistry) (which still accepts every
// historical name as an alias) plus
// [`ExploreSession`](crate::ExploreSession).
