//! Exploration strategies for systematic concurrency testing.
//!
//! Every strategy explores the schedule tree of a program under a common
//! budget ([`ExploreConfig`]) and reports the same counters
//! ([`ExploreStats`]):
//!
//! | Strategy | Module | Reduction idea |
//! |----------|--------|----------------|
//! | [`DfsEnumeration`] | [`dfs`] | none (every schedule), optional preemption bound |
//! | [`Dpor`] | [`dpor`] | Flanagan–Godefroid dynamic partial-order reduction with clock vectors, optional sleep sets |
//! | [`HbrCaching`] | [`caching`] | Musuvathi–Qadeer prefix caching on the regular **or lazy** HBR fingerprint |
//! | [`LazyDpor`] | [`lazy_dpor`] | prototype of the paper's §4 future work: DPOR driven by lazy dependence |
//! | [`RandomWalk`] | [`random`] | uniform random schedules (no reduction; baseline) |
//! | [`ParallelDfs`] | [`parallel`] | DFS fanned out across OS threads |
//! | [`IterativeBounding`] | [`bounded`] | CHESS-style waves of increasing preemption budget over the caching explorer |

pub mod bounded;
pub mod caching;
pub mod dfs;
pub mod dpor;
pub mod lazy_dpor;
pub mod parallel;
pub mod random;

pub use bounded::{BoundedRun, IterativeBounding};
pub use caching::HbrCaching;
pub use dfs::DfsEnumeration;
pub use dpor::{DependenceMode, Dpor};
pub use lazy_dpor::{LazyDpor, LazyDporStyle};
pub use parallel::ParallelDfs;
pub use random::RandomWalk;

use crate::config::ExploreConfig;
use crate::stats::ExploreStats;
use lazylocks_model::Program;

/// A schedule-space exploration strategy.
pub trait Explorer {
    /// Short stable name for reports.
    fn name(&self) -> String;

    /// Explores `program` under `config`.
    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats;
}

/// Dynamic strategy selection, mostly for the CLI and benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Naive depth-first enumeration of every schedule.
    Dfs,
    /// Dynamic partial-order reduction (optionally with sleep sets).
    Dpor {
        /// Enable the sleep-set refinement.
        sleep_sets: bool,
    },
    /// HBR caching with the regular happens-before relation.
    HbrCaching,
    /// HBR caching with the lazy happens-before relation (the paper's
    /// contribution).
    LazyHbrCaching,
    /// Prototype lazy DPOR (paper §4).
    LazyDpor,
    /// Uniform random walks.
    Random,
    /// Parallel DFS across `workers` OS threads.
    ParallelDfs {
        /// Number of worker threads (0 = available parallelism).
        workers: usize,
    },
}

impl Strategy {
    /// Parses a CLI name: `dfs`, `dpor`, `dpor-nosleep`, `caching`,
    /// `lazy-caching`, `lazy-dpor`, `random`, `parallel`.
    pub fn parse(name: &str) -> Option<Strategy> {
        Some(match name {
            "dfs" => Strategy::Dfs,
            "dpor" => Strategy::Dpor { sleep_sets: false },
            "dpor-sleep" => Strategy::Dpor { sleep_sets: true },
            "caching" => Strategy::HbrCaching,
            "lazy-caching" => Strategy::LazyHbrCaching,
            "lazy-dpor" => Strategy::LazyDpor,
            "random" => Strategy::Random,
            "parallel" => Strategy::ParallelDfs { workers: 0 },
            _ => return None,
        })
    }

    /// All strategy names accepted by [`Strategy::parse`].
    pub const NAMES: [&'static str; 8] = [
        "dfs",
        "dpor",
        "dpor-sleep",
        "caching",
        "lazy-caching",
        "lazy-dpor",
        "random",
        "parallel",
    ];

    /// Runs the strategy.
    pub fn run(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        match self {
            Strategy::Dfs => DfsEnumeration.explore(program, config),
            Strategy::Dpor { sleep_sets } => Dpor {
                sleep_sets: *sleep_sets,
                ..Dpor::default()
            }
            .explore(program, config),
            Strategy::HbrCaching => HbrCaching::regular().explore(program, config),
            Strategy::LazyHbrCaching => HbrCaching::lazy().explore(program, config),
            Strategy::LazyDpor => LazyDpor::default().explore(program, config),
            Strategy::Random => RandomWalk.explore(program, config),
            Strategy::ParallelDfs { workers } => ParallelDfs { workers: *workers }
                .explore(program, config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_parse_round_trip() {
        for name in Strategy::NAMES {
            assert!(Strategy::parse(name).is_some(), "{name} should parse");
        }
        assert_eq!(Strategy::parse("nope"), None);
        assert_eq!(Strategy::parse("dpor"), Some(Strategy::Dpor { sleep_sets: false }));
    }
}
