//! HBR caching (Musuvathi & Qadeer) and the paper's lazy HBR caching.
//!
//! A simple form of partial-order reduction: after every executed event the
//! happens-before relation of the *schedule prefix* is fingerprinted and
//! looked up in a cache. A hit means an equivalent prefix — one with the
//! same relation, hence (Theorem 2.1, or Theorem 2.2 for the lazy relation)
//! the same machine state — was already fully explored, so the subtree is
//! pruned.
//!
//! The lazy variant ([`HbrCaching::lazy`]) is the paper's contribution in
//! executable form: because the lazy relation identifies strictly more
//! prefixes (mutex-induced orderings are invisible), it prunes more and,
//! under the same schedule budget, reaches more distinct behaviours —
//! the effect Figure 3 measures.

use crate::config::ExploreConfig;
use crate::explore::Explorer;
use crate::stats::{profile_dims, Collector, Continue, ExploreStats};
use lazylocks_hbr::{event_record_hash, ClockEngine, HbMode, PrefixAccumulator};
use lazylocks_model::{Program, ThreadId, VisibleKind};
use lazylocks_obs::{ids, site, ProfileObj, ProfileSites};
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::collections::HashSet;
use std::time::Instant;

/// The prefix-caching explorer, parameterised by the happens-before
/// relation used for cache keys.
#[derive(Debug, Clone, Copy)]
pub struct HbrCaching {
    /// Relation used for prefix fingerprints. [`HbMode::Regular`] gives
    /// Musuvathi–Qadeer HBR caching; [`HbMode::Lazy`] gives the paper's
    /// lazy HBR caching.
    pub mode: HbMode,
}

impl HbrCaching {
    /// Regular HBR caching.
    pub fn regular() -> Self {
        HbrCaching {
            mode: HbMode::Regular,
        }
    }

    /// Lazy HBR caching (the paper's technique).
    pub fn lazy() -> Self {
        HbrCaching { mode: HbMode::Lazy }
    }
}

impl Explorer for HbrCaching {
    fn name(&self) -> String {
        match self.mode {
            HbMode::Regular => "caching".to_string(),
            HbMode::Lazy => "lazy-caching".to_string(),
            HbMode::SyncOnly => "sync-caching".to_string(),
        }
    }

    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let start = Instant::now();
        let mut ctx = CachingCtx {
            program,
            collector: Collector::new(config),
            cache: HashSet::new(),
            trace: Vec::new(),
            schedule: Vec::new(),
            sites: config.profile.sites(&profile_dims(program)),
        };
        let root = Executor::new(program);
        let clocks = ClockEngine::for_program(self.mode, program);
        ctx.visit(&root, clocks, PrefixAccumulator::new(), None, 0);
        let mut stats = ctx.collector.into_stats();
        stats.wall_time = start.elapsed();
        stats
    }
}

struct CachingCtx<'p> {
    program: &'p Program,
    collector: Collector,
    /// Fingerprints of every prefix relation explored so far.
    cache: HashSet<u128>,
    trace: Vec<Event>,
    schedule: Vec<ThreadId>,
    /// Per-program-point prune attribution (inert when the profiler is
    /// off).
    sites: ProfileSites,
}

impl<'p> CachingCtx<'p> {
    fn visit(
        &mut self,
        exec: &Executor<'p>,
        clocks: ClockEngine,
        acc: PrefixAccumulator,
        last: Option<ThreadId>,
        preemptions: u32,
    ) -> Continue {
        if self.collector.cancel_requested() {
            return Continue::Stop;
        }
        if !matches!(exec.phase(), ExecPhase::Running) {
            return self
                .collector
                .record_terminal(self.program, exec, &self.trace, &self.schedule);
        }
        if self.trace.len() >= self.collector.config().max_run_length {
            self.collector.record_truncated();
            return Continue::Yes;
        }

        for t in exec.enabled_iter() {
            let preempt = last.is_some_and(|l| l != t && exec.is_enabled(l));
            let p = preemptions + u32::from(preempt);
            if let Some(bound) = self.collector.config().preemption_bound {
                if p > bound {
                    self.collector.stats.bound_prunes += 1;
                    continue;
                }
            }

            let mut child = exec.clone();
            let step_timer = self.collector.shard().timer_start(ids::PHASE_EXECUTOR_STEP);
            let out = child.step(t);
            self.collector
                .shard()
                .timer_stop(ids::PHASE_EXECUTOR_STEP, step_timer);
            let mut child_clocks = clocks.clone();
            let mut child_acc = acc;
            if let Some(event) = out.event {
                let hbr_timer = self.collector.shard().timer_start(ids::PHASE_HBR_APPLY);
                let clock = child_clocks.apply(&event);
                self.collector
                    .shard()
                    .timer_stop(ids::PHASE_HBR_APPLY, hbr_timer);
                child_acc.absorb(event_record_hash(&event, clock));
                // Prefix cache: an equivalent prefix reaches the same state
                // (Theorems 2.1/2.2) and was already fully explored.
                if !self.cache.insert(child_acc.fingerprint()) {
                    self.collector.stats.cache_prunes += 1;
                    // Attribute the prune to the event whose execution
                    // completed the already-seen prefix.
                    let obj = match event.kind {
                        VisibleKind::Read(x) | VisibleKind::Write(x) => {
                            Some(ProfileObj::Var(x.index() as u32))
                        }
                        VisibleKind::Lock(m) | VisibleKind::Unlock(m) => {
                            Some(ProfileObj::Mutex(m.index() as u32))
                        }
                    };
                    self.sites.add(
                        event.thread().index() as u32,
                        event.pc,
                        obj,
                        site::CACHE_PRUNES,
                        1,
                    );
                    continue;
                }
            }

            self.schedule.push(t);
            let pushed_event = out.event.is_some();
            if let Some(e) = out.event {
                self.trace.push(e);
            }
            let cont = self.visit(&child, child_clocks, child_acc, Some(t), p);
            if pushed_event {
                self.trace.pop();
            }
            self.schedule.pop();
            if cont == Continue::Stop {
                return Continue::Stop;
            }
        }
        Continue::Yes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::dfs::DfsEnumeration;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn config(limit: usize) -> ExploreConfig {
        ExploreConfig::with_limit(limit)
    }

    /// Under an exhaustive budget, both caching variants must preserve the
    /// set of distinct terminal states that plain DFS finds.
    fn assert_state_coverage(p: &Program, limit: usize) {
        let dfs = DfsEnumeration.explore(p, &config(limit));
        assert!(!dfs.limit_hit);
        for explorer in [HbrCaching::regular(), HbrCaching::lazy()] {
            let stats = explorer.explore(p, &config(limit));
            assert!(!stats.limit_hit, "{} hit the limit", explorer.name());
            assert_eq!(
                stats.unique_states,
                dfs.unique_states,
                "{} missed states",
                explorer.name()
            );
            assert!(stats.schedules <= dfs.schedules);
            stats.check_inequality().unwrap();
        }
    }

    #[test]
    fn caching_preserves_states_on_racy_counter() {
        let mut b = ProgramBuilder::new("racy");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        assert_state_coverage(&p, 100_000);
    }

    #[test]
    fn caching_preserves_states_with_locks() {
        let mut b = ProgramBuilder::new("locked");
        let x = b.var("x", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
            })
        });
        b.thread("T2", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.mul(Reg(0), Reg(0), 10);
                t.store(x, Reg(0));
            })
        });
        let p = b.build();
        assert_state_coverage(&p, 100_000);
    }

    #[test]
    fn lazy_caching_explores_fewer_schedules_on_disjoint_critical_sections() {
        // The motivating pattern: one global lock, disjoint data. Regular
        // caching distinguishes every lock order; lazy caching identifies
        // them all.
        let mut b = ProgramBuilder::new("coarse-disjoint");
        let m = b.mutex("m");
        let vars: Vec<_> = (0..3).map(|i| b.var(format!("v{i}"), 0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| {
                t.with_lock(m, |t| {
                    t.load(Reg(0), v);
                    t.add(Reg(0), Reg(0), 1);
                    t.store(v, Reg(0));
                });
            });
        }
        let p = b.build();
        let regular = HbrCaching::regular().explore(&p, &config(100_000));
        let lazy = HbrCaching::lazy().explore(&p, &config(100_000));
        assert!(!regular.limit_hit && !lazy.limit_hit);
        assert_eq!(regular.unique_states, 1);
        assert_eq!(lazy.unique_states, 1);
        assert_eq!(lazy.unique_lazy_hbrs, 1);
        assert!(
            lazy.schedules < regular.schedules,
            "lazy caching must prune lock-order permutations: lazy={} regular={}",
            lazy.schedules,
            regular.schedules
        );
    }

    #[test]
    fn identical_work_is_pruned_to_one_schedule_by_lazy_caching() {
        // Both threads read the same variable under the lock: only one
        // lazy class exists at every prefix, so lazy caching explores a
        // single schedule.
        let mut b = ProgramBuilder::new("readonly");
        let m = b.mutex("m");
        let x = b.var("x", 7);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.with_lock(m, |t| {
                    t.load(Reg(0), x);
                });
            });
        }
        let p = b.build();
        let lazy = HbrCaching::lazy().explore(&p, &config(100_000));
        assert_eq!(lazy.unique_lazy_hbrs, 1);
        assert!(lazy.cache_prunes > 0);
        let regular = HbrCaching::regular().explore(&p, &config(100_000));
        assert_eq!(regular.unique_hbrs, 2, "two lock orders remain distinct");
        assert!(lazy.schedules < regular.schedules);
    }

    #[test]
    fn budgeted_lazy_caching_reaches_at_least_as_many_lazy_classes() {
        // The Figure 3 property on a schedule-limited exploration: the lazy
        // variant never reaches fewer distinct lazy HBRs.
        let mut b = ProgramBuilder::new("mixed");
        let m = b.mutex("m");
        let shared = b.var("s", 0);
        let vars: Vec<_> = (0..2).map(|i| b.var(format!("v{i}"), 0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| {
                t.with_lock(m, |t| {
                    t.load(Reg(0), v);
                    t.add(Reg(0), Reg(0), 1);
                    t.store(v, Reg(0));
                });
                t.fetch_add_racy(shared, 1);
            });
        }
        let p = b.build();
        for limit in [2usize, 4, 8, 1000] {
            let regular = HbrCaching::regular().explore(&p, &config(limit));
            let lazy = HbrCaching::lazy().explore(&p, &config(limit));
            assert!(
                lazy.unique_lazy_hbrs >= regular.unique_lazy_hbrs,
                "limit {limit}: lazy caching reached fewer lazy classes \
                 ({} < {})",
                lazy.unique_lazy_hbrs,
                regular.unique_lazy_hbrs
            );
        }
    }

    #[test]
    fn cache_prunes_are_counted() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(y, 1));
        let p = b.build();
        let stats = HbrCaching::regular().explore(&p, &config(1000));
        // The two interleavings share the same relation after both events;
        // at least one prefix is pruned.
        assert_eq!(stats.schedules, 1);
        assert!(stats.cache_prunes >= 1);
    }

    #[test]
    fn preemption_bound_composes_with_caching() {
        // Musuvathi–Qadeer's setting: context-bounded search + caching.
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let stats = HbrCaching::regular().explore(&p, &config(10_000).preemptions(0));
        assert_eq!(stats.unique_states, 1, "no preemption → no lost update");
        let stats = HbrCaching::regular().explore(&p, &config(10_000).preemptions(1));
        assert_eq!(stats.unique_states, 2, "one preemption exposes the race");
    }
}
