//! Uniform random schedule sampling — the unreduced baseline.
//!
//! Runs `schedule_limit` independent random walks: at every scheduling
//! point a uniformly random enabled thread takes a step. No reduction, no
//! completeness guarantee; useful as a coverage baseline and for quick
//! smoke-testing large programs.

use crate::config::ExploreConfig;
use crate::explore::Explorer;
use crate::rng::SplitMix64;
use crate::stats::{Collector, Continue, ExploreStats};
use lazylocks_model::{Program, ThreadId, ThreadSet};
use lazylocks_obs::ids;
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::time::Instant;

/// The random-walk explorer.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomWalk;

impl Explorer for RandomWalk {
    fn name(&self) -> String {
        "random".to_string()
    }

    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let start = Instant::now();
        let mut collector = Collector::new(config);
        let mut rng = SplitMix64::new(config.seed);

        'walks: while !collector.budget_exhausted() && !collector.cancel_requested() {
            let mut exec = Executor::new(program);
            let mut trace: Vec<Event> = Vec::new();
            let mut schedule: Vec<ThreadId> = Vec::new();
            let mut last: Option<ThreadId> = None;
            let mut preemptions = 0u32;

            loop {
                match exec.phase() {
                    ExecPhase::Running => {}
                    _ => {
                        if collector.record_terminal(program, &exec, &trace, &schedule)
                            == Continue::Stop
                        {
                            break 'walks;
                        }
                        break;
                    }
                }
                if trace.len() >= config.max_run_length {
                    collector.record_truncated();
                    break;
                }

                let enabled = exec.enabled_set();
                // Respect the preemption bound by restricting the choice
                // set once the budget is spent.
                let choices: ThreadSet = match config.preemption_bound {
                    Some(bound) if preemptions >= bound => enabled
                        .iter()
                        .filter(|&t| !last.is_some_and(|l| l != t && exec.is_enabled(l)))
                        .collect(),
                    _ => enabled,
                };
                debug_assert!(
                    !choices.is_empty(),
                    "continuing the running thread is never a preemption"
                );
                let t = choices
                    .nth(rng.gen_range(choices.len()))
                    .expect("choice index in range");
                if last.is_some_and(|l| l != t && exec.is_enabled(l)) {
                    preemptions += 1;
                }
                let step_timer = collector.shard().timer_start(ids::PHASE_EXECUTOR_STEP);
                let out = exec.step(t);
                collector
                    .shard()
                    .timer_stop(ids::PHASE_EXECUTOR_STEP, step_timer);
                schedule.push(t);
                if let Some(e) = out.event {
                    trace.push(e);
                }
                last = Some(t);
            }
        }

        let mut stats = collector.into_stats();
        // Random walks run to their budget by construction; "limit hit"
        // would be noise, so it only reports early stop-on-bug.
        stats.limit_hit = false;
        stats.wall_time = start.elapsed();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{ProgramBuilder, Reg};

    #[test]
    fn runs_exactly_the_budgeted_walks() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let p = b.build();
        let stats = RandomWalk.explore(&p, &ExploreConfig::with_limit(64));
        assert_eq!(stats.schedules, 64);
        // Both final values show up with overwhelming probability.
        assert_eq!(stats.unique_states, 2);
        stats.check_inequality().unwrap();
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        for name in ["T1", "T2", "T3"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let a = RandomWalk.explore(&p, &ExploreConfig::with_limit(50).seeded(7));
        let b2 = RandomWalk.explore(&p, &ExploreConfig::with_limit(50).seeded(7));
        assert_eq!(a.unique_states, b2.unique_states);
        assert_eq!(a.unique_hbrs, b2.unique_hbrs);
        assert_eq!(a.events, b2.events);
        let c = RandomWalk.explore(&p, &ExploreConfig::with_limit(50).seeded(8));
        // Different seeds may of course coincide, but events usually differ;
        // only check that the run completes.
        assert_eq!(c.schedules, 50);
    }

    #[test]
    fn stop_on_bug_halts_walks() {
        let mut b = ProgramBuilder::new("abba");
        let l1 = b.mutex("a");
        let l2 = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(l1);
            t.lock(l2);
            t.unlock(l2);
            t.unlock(l1);
        });
        b.thread("T2", |t| {
            t.lock(l2);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l2);
        });
        let p = b.build();
        let stats = RandomWalk.explore(
            &p,
            &ExploreConfig::with_limit(10_000)
                .stopping_on_bug()
                .seeded(3),
        );
        assert!(stats.found_bug());
        assert!(stats.schedules < 10_000, "stops well before the budget");
        // The bug replays deterministically.
        let rerun = stats.first_bug.unwrap().reproduce(&p).unwrap();
        assert!(rerun.status.is_deadlock());
    }

    #[test]
    fn preemption_bound_zero_only_runs_threads_to_completion() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let stats = RandomWalk.explore(&p, &ExploreConfig::with_limit(200).preemptions(0));
        assert_eq!(
            stats.unique_states, 1,
            "without preemption the increments never interleave"
        );
    }
}
