//! Dynamic partial-order reduction (Flanagan & Godefroid, POPL 2005).
//!
//! Stateless-model-checking DPOR with clock vectors, implemented over
//! snapshot cloning (the executor and the happens-before clock state are
//! cloned at each stack level, so backtracking restores state without
//! re-execution). Optionally refined with **sleep sets**.
//!
//! The algorithm walks one schedule at a time. After appending an event `e`
//! by thread `p` at depth `d`, it looks up the *latest* earlier event `f`
//! that is dependent with `e` (per object: last write / latest read for
//! variables, last operation for mutexes). If `f` is not already ordered
//! before `p`'s next transition by the happens-before relation built so far
//! (checked with `p`'s clock), the pair is a *race*: the exploration must
//! also try schedules in which the race is reversed, so `p` (or, if `p` was
//! not enabled there, every enabled thread) is added to the *backtrack set*
//! of the stack frame from which `f` was executed.
//!
//! The *dependence* notion is a parameter ([`DependenceMode`]): the classic
//! algorithm uses the regular happens-before dependence; the lazy-DPOR
//! prototype of the paper's §4 plugs in lazy variants (see
//! [`lazy_dpor`](crate::explore::lazy_dpor)).

use crate::config::ExploreConfig;
use crate::explore::Explorer;
use crate::stats::{Collector, Continue, ExploreStats};
use lazylocks_clock::VectorClock;
use lazylocks_hbr::{ClockEngine, HbMode};
use lazylocks_model::{Program, ThreadId, ThreadSet, VisibleKind};
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::time::Instant;

/// Which dependence relation drives race detection and backtracking.
///
/// Backtrack candidates are restricted to pairs that *may be co-enabled*
/// (Flanagan–Godefroid): for mutexes that means `lock`/`lock` pairs only —
/// an `unlock` is never co-enabled with another operation on its mutex
/// (whoever could unlock holds the lock), so unlock-induced serialisation
/// edges order events but never create backtrack points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependenceMode {
    /// Classic DPOR: variable conflicts plus lock-acquisition conflicts.
    Regular,
    /// Variable conflicts only; no mutex-induced backtracking at all.
    /// When a variable race cannot be reversed directly because the racing
    /// thread is blocked on a lock, the backtrack point is *redirected* to
    /// the acquisition of the blocking mutex. Misses deadlocks by
    /// construction (no acquisition reversals without data conflicts);
    /// kept for measurement.
    LazyVarsOnly,
    /// [`DependenceMode::LazyVarsOnly`] plus lock-acquisition conflicts
    /// for *nested* acquisitions (a thread locking while already holding a
    /// mutex) — the deadlock-relevant reversals. Disjoint flat critical
    /// sections generate no backtracking, which is exactly the reduction
    /// the lazy HBR promises. The lazy-DPOR prototype default.
    LazyLockAcquisitions,
}

impl DependenceMode {
    /// The clock mode used for the "already ordered" check.
    fn hb_mode(self) -> HbMode {
        match self {
            DependenceMode::Regular => HbMode::Regular,
            // Lazy modes must treat fewer pairs as ordered, never more, so
            // they use the lazy relation for the ordering check too.
            DependenceMode::LazyVarsOnly | DependenceMode::LazyLockAcquisitions => HbMode::Lazy,
        }
    }

    /// Whether two visible operations are dependent — used by the sleep-set
    /// independence filter (conservative: full dependence, not restricted
    /// to co-enabled pairs).
    pub fn dependent(self, a: VisibleKind, b: VisibleKind) -> bool {
        match self {
            DependenceMode::Regular => a.dependent_regular(b),
            DependenceMode::LazyVarsOnly => a.dependent_lazy(b),
            DependenceMode::LazyLockAcquisitions => {
                a.dependent_lazy(b)
                    || matches!(
                        (a, b),
                        (VisibleKind::Lock(m1), VisibleKind::Lock(m2)) if m1 == m2
                    )
            }
        }
    }
}

/// The DPOR explorer.
///
/// The default configuration (no sleep sets, regular dependence) is
/// *class-exact*: it explores at least one schedule per happens-before
/// equivalence class, validated against exhaustive enumeration across the
/// corpus and on randomly generated programs.
///
/// `sleep_sets: true` enables the classic sleep-set refinement, which
/// prunes substantially more but interacts with lazily-computed backtrack
/// sets (the "sleep-set blocking" problem: a race may add a backtrack
/// thread that is asleep in that frame and is then never scheduled —
/// solving this exactly requires the wakeup trees of optimal DPOR). On
/// the test corpus the sleep-set mode preserves every deadlock and
/// assertion failure, making it the fast *bug-finding* mode; it can
/// however miss terminal states and happens-before classes that reach
/// already-seen outcomes. Use the default for counting and coverage.
#[derive(Debug, Clone, Copy)]
pub struct Dpor {
    /// Refine with sleep sets (aggressive; see the type-level caveat).
    pub sleep_sets: bool,
    /// Dependence notion for race detection.
    pub dependence: DependenceMode,
}

impl Default for Dpor {
    fn default() -> Self {
        Dpor {
            sleep_sets: false,
            dependence: DependenceMode::Regular,
        }
    }
}

impl Explorer for Dpor {
    fn name(&self) -> String {
        match (self.dependence, self.sleep_sets) {
            (DependenceMode::Regular, false) => "dpor".to_string(),
            (DependenceMode::Regular, true) => "dpor-sleep".to_string(),
            (DependenceMode::LazyVarsOnly, _) => "lazy-dpor-vars".to_string(),
            (DependenceMode::LazyLockAcquisitions, _) => "lazy-dpor".to_string(),
        }
    }

    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let start = Instant::now();
        let mut engine = DporEngine {
            program,
            collector: Collector::new(config),
            sleep_sets: self.sleep_sets,
            dependence: self.dependence,
            stack: Vec::new(),
            trace: Vec::new(),
            schedule: Vec::new(),
            var_writes: vec![Vec::new(); program.vars().len()],
            var_reads: vec![Vec::new(); program.vars().len()],
            mutex_locks: vec![Vec::new(); program.mutexes().len()],
            race_buf: Vec::new(),
        };
        engine.run();
        let mut stats = engine.collector.into_stats();
        stats.wall_time = start.elapsed();
        stats
    }
}

/// One frame of the DPOR stack: the state *before* the transition recorded
/// at the same depth in `trace`.
///
/// The three thread sets are `u64` bitmasks ([`ThreadSet`]): frames are
/// pushed and popped on every step, and `BTreeSet`s here used to be the
/// dominant allocation churn of the hot loop.
struct Frame<'p> {
    exec: Executor<'p>,
    clocks: ClockEngine,
    backtrack: ThreadSet,
    done: ThreadSet,
    sleep: ThreadSet,
    /// Trace/schedule lengths when the frame was pushed (for unwinding).
    trace_mark: usize,
    sched_mark: usize,
}

struct DporEngine<'p> {
    program: &'p Program,
    collector: Collector,
    sleep_sets: bool,
    dependence: DependenceMode,
    stack: Vec<Frame<'p>>,
    trace: Vec<Event>,
    schedule: Vec<ThreadId>,
    /// Per-variable trace indices of writes, in trace order. Maintained
    /// incrementally: pushed when an event is appended, popped when the
    /// trace is truncated on unwind — so race detection enumerates only
    /// the accesses of the conflicting object instead of scanning the
    /// whole trace (O(depth)) per step.
    var_writes: Vec<Vec<usize>>,
    /// Per-variable trace indices of reads, in trace order.
    var_reads: Vec<Vec<usize>>,
    /// Per-mutex trace indices of acquisitions, in trace order. Doubles as
    /// the O(1) "owner's live acquisition" lookup (its last entry) that
    /// previously required a reverse scan of the trace per blocked thread.
    mutex_locks: Vec<Vec<usize>>,
    /// Scratch buffer for uncovered race-partner indices, reused across
    /// steps so the common no-race path performs no allocation.
    race_buf: Vec<usize>,
}

/// `clock` summarises (at least) event `f`'s causal past.
fn covers(clock: &VectorClock, f: &Event) -> bool {
    clock.get(f.thread().index()) > f.id.ordinal
}

impl<'p> DporEngine<'p> {
    fn run(&mut self) {
        assert!(
            self.program.thread_count() <= ThreadSet::MAX_THREADS,
            "DPOR supports at most {} threads",
            ThreadSet::MAX_THREADS
        );
        let root_exec = Executor::new(self.program);
        if !matches!(root_exec.phase(), ExecPhase::Running) {
            self.collector
                .record_terminal(self.program, &root_exec, &[], &[]);
            return;
        }
        let clocks = ClockEngine::for_program(self.dependence.hb_mode(), self.program);
        self.push_frame(root_exec, clocks, ThreadSet::new(), 0, 0);

        while let Some(top) = self.stack.len().checked_sub(1) {
            if self.collector.cancel_requested() {
                return;
            }
            let pick = {
                let frame = &self.stack[top];
                (frame.backtrack - frame.done - frame.sleep).first()
            };
            let Some(p) = pick else {
                // Frame exhausted: unwind.
                let frame = self.stack.pop().unwrap();
                self.unindex_tail(frame.trace_mark);
                self.trace.truncate(frame.trace_mark);
                self.schedule.truncate(frame.sched_mark);
                continue;
            };
            self.stack[top].done.insert(p);
            if self.take_step(top, p) == Continue::Stop {
                return;
            }
        }
    }

    /// Appends `event` (about to sit at trace position `i`) to its
    /// per-object access index.
    fn index_event(&mut self, i: usize, event: &Event) {
        match event.kind {
            VisibleKind::Read(x) => self.var_reads[x.index()].push(i),
            VisibleKind::Write(x) => self.var_writes[x.index()].push(i),
            VisibleKind::Lock(m) => self.mutex_locks[m.index()].push(i),
            VisibleKind::Unlock(_) => {}
        }
    }

    /// Removes every trace event at position `mark` or later from the
    /// per-object access indices (the inverse of [`Self::index_event`],
    /// called before the trace itself is truncated to `mark`). Amortised
    /// O(1) per popped event.
    fn unindex_tail(&mut self, mark: usize) {
        for i in (mark..self.trace.len()).rev() {
            let popped = match self.trace[i].kind {
                VisibleKind::Read(x) => self.var_reads[x.index()].pop(),
                VisibleKind::Write(x) => self.var_writes[x.index()].pop(),
                VisibleKind::Lock(m) => self.mutex_locks[m.index()].pop(),
                VisibleKind::Unlock(_) => continue,
            };
            debug_assert_eq!(popped, Some(i), "access index out of sync");
        }
    }

    /// `trace_mark`/`sched_mark` are the lengths to restore when the frame
    /// is popped — i.e. the lengths from *before* the step that entered
    /// this frame.
    fn push_frame(
        &mut self,
        exec: Executor<'p>,
        clocks: ClockEngine,
        sleep: ThreadSet,
        trace_mark: usize,
        sched_mark: usize,
    ) {
        // Initial backtrack point: the first enabled thread outside the
        // sleep set (one representative; races add the rest on demand).
        let init = exec.enabled_iter().find(|&t| !sleep.contains(t));
        let mut backtrack = ThreadSet::new();
        match init {
            Some(t) => {
                backtrack.insert(t);
            }
            None => {
                // Everything enabled is asleep: this subtree is redundant.
                self.collector.stats.sleep_prunes += 1;
            }
        }
        self.stack.push(Frame {
            exec,
            clocks,
            backtrack,
            done: ThreadSet::new(),
            sleep,
            trace_mark,
            sched_mark,
        });
    }

    /// Executes `p` from the frame at `top`, performs race detection, and
    /// pushes the child frame (or records a terminal).
    fn take_step(&mut self, top: usize, p: ThreadId) -> Continue {
        let entry_trace_mark = self.trace.len();
        let entry_sched_mark = self.schedule.len();
        let mut child_exec = self.stack[top].exec.clone();
        let out = child_exec.step(p);
        let mut child_clocks = self.stack[top].clocks.clone();

        if let Some(event) = out.event {
            // --- race detection (source-DPOR style, Abdulla et al. 2014) ---
            // A *reversible race* partner of `event` is an earlier event f
            // that is dependent-and-may-be-co-enabled with it, not already
            // ordered before p's pending transition (f outside p's clock),
            // and adjacent in the happens-before relation (no intermediate
            // g with f <HB g <HB event). Every reversible race is processed
            // — handling only the latest one interacts unsoundly with sleep
            // sets (the "sleep-set blocking" problem).
            //
            // Candidates come from the per-object access indices, not a
            // trace scan: only accesses of the conflicting variable (all
            // writes for a read; writes and reads for a write) or
            // acquisitions of the conflicting mutex can be dependent.
            let p_nested = self.stack[top].exec.holds_any_mutex(p);
            let mut race_buf = std::mem::take(&mut self.race_buf);
            debug_assert!(race_buf.is_empty());
            let mut compared = 0u64;
            {
                let cp = self.stack[top].clocks.thread_clock(p);
                match event.kind {
                    VisibleKind::Read(x) => {
                        compared += self.collect_partners(
                            &self.var_writes[x.index()],
                            event.kind,
                            p,
                            cp,
                            p_nested,
                            &mut race_buf,
                        );
                    }
                    VisibleKind::Write(x) => {
                        compared += self.collect_partners(
                            &self.var_writes[x.index()],
                            event.kind,
                            p,
                            cp,
                            p_nested,
                            &mut race_buf,
                        );
                        compared += self.collect_partners(
                            &self.var_reads[x.index()],
                            event.kind,
                            p,
                            cp,
                            p_nested,
                            &mut race_buf,
                        );
                    }
                    VisibleKind::Lock(m) => {
                        compared += self.collect_partners(
                            &self.mutex_locks[m.index()],
                            event.kind,
                            p,
                            cp,
                            p_nested,
                            &mut race_buf,
                        );
                    }
                    // An unlock is never co-enabled with another operation
                    // on its mutex: no candidates at all.
                    VisibleKind::Unlock(_) => {}
                }
            }
            self.collector.stats.events_compared += compared;
            child_clocks.apply(&event);
            self.index_event(self.trace.len(), &event);
            self.trace.push(event);
            for &i in &race_buf {
                self.handle_race(i, p);
            }
            race_buf.clear();
            self.race_buf = race_buf;
        }
        self.schedule.push(p);

        // --- blocked-acquisition races ---
        // A thread whose pending `lock(m)` is blocked races with the
        // owner's acquisition of `m`. That lock never *executes* in this
        // subtree (it may stay blocked all the way into a deadlock leaf),
        // so the append-based detection above cannot see the race; this is
        // the per-state pending-transition check of the original algorithm,
        // specialised to the only transitions that can pend: acquisitions.
        // Skipped outright for mutex-free programs, where nothing can ever
        // block.
        if !self.program.mutexes().is_empty() {
            for q in self.program.thread_ids() {
                let Some(VisibleKind::Lock(m)) = child_exec.next_visible(q) else {
                    continue;
                };
                let Some(owner) = child_exec.mutex_owner(m) else {
                    continue; // free: not blocked
                };
                if owner == q {
                    continue; // self-relock: no reversal exists
                }
                // The owner's live acquisition is the last of its indexed
                // Lock(m) events (no trace scan).
                let Some(&j) = self.mutex_locks[m.index()]
                    .iter()
                    .rev()
                    .find(|&&j| self.trace[j].thread() == owner)
                else {
                    continue;
                };
                self.collector.stats.events_compared += 1;
                let q_nested = child_exec.holds_any_mutex(q);
                let cq = child_clocks.thread_clock(q);
                if !self.is_race_partner(VisibleKind::Lock(m), q, cq, j, q_nested) {
                    continue;
                }
                if j < self.stack.len() {
                    self.handle_race(j, q);
                }
            }
        }

        // --- sleep set for the child ---
        let child_sleep = if self.sleep_sets {
            let frame = &self.stack[top];
            let mut sleep = ThreadSet::new();
            for r in frame.sleep.union(frame.done).iter() {
                if r == p {
                    continue;
                }
                // r stays asleep only if its pending transition is
                // independent of the one just executed.
                // Independence must be judged with the sound (regular)
                // dependence even in the lazy modes: waking a sleeping
                // thread too rarely would prune real behaviours.
                let keep = match (out.event, frame.exec.next_visible(r)) {
                    (Some(e), Some(rk)) => !e.kind.dependent_regular(rk),
                    // Fault step (no event): it only changed p's own
                    // status, independent of everything.
                    (None, Some(_)) => true,
                    (_, None) => false,
                };
                if keep {
                    sleep.insert(r);
                }
            }
            sleep
        } else {
            ThreadSet::new()
        };

        match child_exec.phase() {
            ExecPhase::Running => {
                if self.trace.len() >= self.collector.config().max_run_length {
                    self.collector.record_truncated();
                    self.unwind_step(out.event.is_some());
                    Continue::Yes
                } else {
                    self.push_frame(
                        child_exec,
                        child_clocks,
                        child_sleep,
                        entry_trace_mark,
                        entry_sched_mark,
                    );
                    Continue::Yes
                }
            }
            _ => {
                let cont = self.collector.record_terminal(
                    self.program,
                    &child_exec,
                    &self.trace,
                    &self.schedule,
                );
                self.unwind_step(out.event.is_some());
                cont
            }
        }
    }

    /// Is the earlier event `f` (executed at depth `d`) a backtracking
    /// dependence for a new event of kind `kind`?
    ///
    /// Variable conflicts count in every mode. Mutex conflicts are
    /// restricted to may-be-co-enabled pairs — `lock`/`lock` on the same
    /// mutex (an `unlock` is never co-enabled with another operation on its
    /// mutex). The lazy lock-acquisition mode further restricts lock pairs
    /// to the deadlock-relevant ones, where at least one side acquired
    /// while holding another mutex.
    fn backtrack_dependent(&self, kind: VisibleKind, f: &Event, d: usize, p_nested: bool) -> bool {
        if kind.dependent_lazy(f.kind) {
            return true;
        }
        match (kind, f.kind) {
            (VisibleKind::Lock(m1), VisibleKind::Lock(m2)) if m1 == m2 => match self.dependence {
                DependenceMode::Regular => true,
                DependenceMode::LazyVarsOnly => false,
                DependenceMode::LazyLockAcquisitions => {
                    p_nested || self.stack[d].exec.holds_any_mutex(f.thread())
                }
            },
            _ => false,
        }
    }

    /// The shared candidate filter of both race passes: is the earlier
    /// event at trace position `i` a reversible-race partner for a
    /// transition of `actor` (kind `kind`, causal past `actor_clock`,
    /// nested-lock status `nested`)?
    fn is_race_partner(
        &self,
        kind: VisibleKind,
        actor: ThreadId,
        actor_clock: &VectorClock,
        i: usize,
        nested: bool,
    ) -> bool {
        let f = &self.trace[i];
        f.thread() != actor // program order: never a race
            && self.backtrack_dependent(kind, f, i, nested)
            && !covers(actor_clock, f) // not already ordered before actor
    }

    /// Filters one per-object candidate list through
    /// [`Self::is_race_partner`], appending the survivors to `buf`.
    /// Returns the number of candidates examined (the `events_compared`
    /// contribution).
    fn collect_partners(
        &self,
        candidates: &[usize],
        kind: VisibleKind,
        actor: ThreadId,
        actor_clock: &VectorClock,
        nested: bool,
        buf: &mut Vec<usize>,
    ) -> u64 {
        for &i in candidates {
            if self.is_race_partner(kind, actor, actor_clock, i, nested) {
                buf.push(i);
            }
        }
        candidates.len() as u64
    }

    /// Registers a backtrack point for the race between the event at depth
    /// `i` and the pending transition of thread `p`.
    ///
    /// Conservative insertion: schedule `p` at the pre-state of depth `i`
    /// when it is runnable there; when it is not — or when it is parked in
    /// that frame's sleep set, which would silently skip it (the
    /// "sleep-set blocking" problem) — wake the frame up by adding every
    /// runnable thread. The lazy modes additionally *redirect* a `p`
    /// blocked on a mutex to the acquisition of the blocking mutex, where
    /// reversing the race is actually possible.
    fn handle_race(&mut self, i: usize, p: ThreadId) {
        let mut target = i;
        if self.dependence != DependenceMode::Regular && !self.stack[i].exec.is_enabled(p) {
            if let Some(VisibleKind::Lock(mb)) = self.stack[i].exec.next_visible(p) {
                if let Some(owner) = self.stack[i].exec.mutex_owner(mb) {
                    // The owner's most recent acquisition of `mb` at or
                    // before depth i is the blocking one (held ever since):
                    // the last indexed Lock(mb) below i, no trace scan.
                    let locks = &self.mutex_locks[mb.index()];
                    let below = locks.partition_point(|&j| j < i);
                    if let Some(&j) = locks[..below]
                        .iter()
                        .rev()
                        .find(|&&j| self.trace[j].thread() == owner)
                    {
                        target = j;
                    }
                }
            }
        }
        let pre = &mut self.stack[target];
        if pre.exec.is_enabled(p) {
            // A sleeping p is inserted too: the pick loop skips it, which
            // is exactly the sleep-set guarantee — p's continuations from
            // this state were already explored in an equivalent context.
            pre.backtrack.insert(p);
        } else {
            pre.backtrack |= pre.exec.enabled_set();
        }
    }

    /// Pops the trace/schedule entries pushed by a step that did not create
    /// a frame.
    fn unwind_step(&mut self, pushed_event: bool) {
        if pushed_event {
            self.unindex_tail(self.trace.len() - 1);
            self.trace.pop();
        }
        self.schedule.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::dfs::DfsEnumeration;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn config(limit: usize) -> ExploreConfig {
        ExploreConfig::with_limit(limit)
    }

    /// The default DPOR must match exhaustive DFS exactly on states and
    /// HBR classes, with at most as many schedules. The sleep-set mode is
    /// held to its weaker bug-parity contract.
    fn assert_agrees_with_dfs(p: &Program, limit: usize) -> (ExploreStats, ExploreStats) {
        let dfs = DfsEnumeration.explore(p, &config(limit));
        assert!(!dfs.limit_hit, "ground truth must be exhaustive");
        for sleep in [false, true] {
            let dpor = Dpor {
                sleep_sets: sleep,
                dependence: DependenceMode::Regular,
            }
            .explore(p, &config(limit));
            assert!(!dpor.limit_hit);
            if sleep {
                assert_eq!(
                    dpor.deadlocks > 0,
                    dfs.deadlocks > 0,
                    "sleep-set DPOR lost deadlock parity"
                );
                assert_eq!(
                    dpor.faulted_schedules > 0,
                    dfs.faulted_schedules > 0,
                    "sleep-set DPOR lost fault parity"
                );
            } else {
                assert_eq!(
                    dpor.unique_states, dfs.unique_states,
                    "default DPOR missed states"
                );
                assert_eq!(
                    dpor.unique_hbrs, dfs.unique_hbrs,
                    "default DPOR missed HBR classes"
                );
            }
            assert!(
                dpor.schedules <= dfs.schedules,
                "DPOR(sleep={sleep}) must not explore more than DFS"
            );
            dpor.check_inequality().unwrap();
        }
        let dpor = Dpor::default().explore(p, &config(limit));
        (dpor, dfs)
    }

    #[test]
    fn independent_writes_need_one_schedule() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(y, 1));
        let p = b.build();
        let (dpor, dfs) = assert_agrees_with_dfs(&p, 10_000);
        assert_eq!(dfs.schedules, 2);
        assert_eq!(dpor.schedules, 1, "independent events need no backtracking");
    }

    #[test]
    fn conflicting_writes_need_both_orders() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let p = b.build();
        let (dpor, _) = assert_agrees_with_dfs(&p, 10_000);
        assert_eq!(dpor.schedules, 2);
        assert_eq!(dpor.unique_states, 2);
    }

    #[test]
    fn racy_increments_fully_covered() {
        let mut b = ProgramBuilder::new("racy");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let (dpor, dfs) = assert_agrees_with_dfs(&p, 10_000);
        assert_eq!(dfs.unique_states, 2);
        assert_eq!(dpor.unique_states, 2);
    }

    #[test]
    fn three_thread_mixed_conflicts_covered() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T1", |t| {
            t.store(x, 1);
            t.load(Reg(0), y);
            t.store(x, Reg(0));
        });
        b.thread("T2", |t| {
            t.store(y, 5);
            t.load(Reg(0), x);
        });
        b.thread("T3", |t| {
            t.store(y, 9);
        });
        let p = b.build();
        assert_agrees_with_dfs(&p, 100_000);
    }

    #[test]
    fn mutex_protected_sections_covered() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
            })
        });
        b.thread("T2", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.mul(Reg(0), Reg(0), 10);
                t.store(x, Reg(0));
            })
        });
        let p = b.build();
        // (0+1)*10 = 10 vs 0*10+1 = 1 → two states, two lock orders.
        let (dpor, dfs) = assert_agrees_with_dfs(&p, 10_000);
        assert_eq!(dfs.unique_states, 2);
        assert_eq!(dpor.unique_states, 2);
    }

    #[test]
    fn deadlocks_are_found_by_dpor() {
        let mut b = ProgramBuilder::new("abba");
        let a = b.mutex("a");
        let c = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(a);
            t.lock(c);
            t.unlock(c);
            t.unlock(a);
        });
        b.thread("T2", |t| {
            t.lock(c);
            t.lock(a);
            t.unlock(a);
            t.unlock(c);
        });
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(10_000));
        assert!(stats.deadlocks > 0, "DPOR must reverse the lock order");
        assert!(stats.first_bug.as_ref().unwrap().is_deadlock());
    }

    #[test]
    fn sleep_sets_reduce_schedules() {
        // A program with enough independence for sleep sets to matter.
        let mut b = ProgramBuilder::new("p");
        let vars: Vec<_> = (0..3).map(|i| b.var(format!("v{i}"), 0)).collect();
        let shared = b.var("s", 0);
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| {
                t.store(v, 1);
                t.load(Reg(0), shared);
                t.store(v, Reg(0));
            });
        }
        let p = b.build();
        let with = Dpor {
            sleep_sets: true,
            dependence: DependenceMode::Regular,
        }
        .explore(&p, &config(100_000));
        let without = Dpor {
            sleep_sets: false,
            dependence: DependenceMode::Regular,
        }
        .explore(&p, &config(100_000));
        // Bug parity holds; states may legitimately be merged by sleep
        // sets (see the Dpor docs), so only the direction is asserted.
        assert!(with.unique_states <= without.unique_states);
        assert!(
            with.schedules <= without.schedules,
            "sleep sets must not increase schedules"
        );
    }

    #[test]
    fn figure1_program_needs_two_schedules_regular_dpor() {
        // The paper's Figure 1: DPOR with the regular HBR needs one
        // schedule per lock order (2 classes), even though both reach the
        // same state.
        let mut b = ProgramBuilder::new("figure1");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        let z = b.var("z", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| {
            t.lock(m);
            t.load(Reg(0), x);
            t.unlock(m);
            t.store(y, Reg(0));
        });
        b.thread("T2", |t| {
            t.store(z, 1);
            t.lock(m);
            t.load(Reg(0), x);
            t.unlock(m);
        });
        let p = b.build();
        let dpor = Dpor::default().explore(&p, &config(10_000));
        assert_eq!(dpor.unique_hbrs, 2, "two lock orders, two HBRs");
        assert_eq!(dpor.unique_lazy_hbrs, 1, "one lazy class (paper §2)");
        assert_eq!(dpor.unique_states, 1);
        assert!(dpor.schedules >= 2);
        dpor.check_inequality().unwrap();
    }

    #[test]
    fn blocked_acquisition_race_is_detected() {
        // Regression: AB-BA locking with NON-commuting critical sections.
        // The T1-first class is reachable only by reversing the lk0
        // acquisition, and the only trace exhibiting that race has T1
        // *blocked* on lk0 (the deadlock leaf). Append-only race detection
        // misses it; the pending-acquisition check must find it.
        let mut b = ProgramBuilder::new("abba-noncommute");
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        let x = b.var("x", 1);
        b.thread("T0", |t| {
            t.lock(l0);
            t.lock(l1);
            t.load(Reg(0), x);
            t.add(Reg(0), Reg(0), 1);
            t.store(x, Reg(0));
            t.unlock(l1);
            t.unlock(l0);
            t.set(Reg(0), 0);
        });
        b.thread("T1", |t| {
            t.lock(l1);
            t.lock(l0);
            t.load(Reg(0), x);
            t.mul(Reg(0), Reg(0), 10);
            t.store(x, Reg(0));
            t.unlock(l0);
            t.unlock(l1);
            t.set(Reg(0), 0);
        });
        let p = b.build();
        let (dpor, dfs) = assert_agrees_with_dfs(&p, 100_000);
        // x ∈ {20, 11} plus the deadlock state.
        assert_eq!(dfs.unique_states, 3);
        assert_eq!(dpor.unique_states, 3);
        assert!(dpor.deadlocks > 0);
    }

    #[test]
    fn race_detection_examines_only_dependence_candidates() {
        // Four threads, each writing its private variable twice. A
        // full-trace race scan would compare every new event against every
        // earlier one — 0+1+…+7 = 28 candidate pairs over the single
        // schedule. The indexed detector only consults the per-variable
        // access lists: one candidate per second write (the thread's own
        // first write, then discarded by the program-order check), four in
        // total. The program is mutex-free, so the blocked-acquisition
        // pass contributes nothing (it is skipped outright).
        let mut b = ProgramBuilder::new("disjoint");
        let vars: Vec<_> = (0..4).map(|i| b.var(format!("v{i}"), 0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| {
                t.store(v, 1);
                t.store(v, 2);
            });
        }
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(10_000));
        assert_eq!(stats.schedules, 1, "independent writes need no reversal");
        assert_eq!(stats.events, 8);
        assert_eq!(
            stats.events_compared, 4,
            "only per-variable candidates may be examined (full scan: 28)"
        );

        // With genuine conflicts the counter must be live.
        let mut b = ProgramBuilder::new("shared");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let stats = Dpor::default().explore(&b.build(), &config(10_000));
        assert!(stats.events_compared > 0);
    }

    #[test]
    fn schedule_limit_respected() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        for i in 0..4 {
            b.thread(format!("T{i}"), |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(7));
        assert_eq!(stats.schedules, 7);
        assert!(stats.limit_hit);
    }

    #[test]
    fn empty_program_has_one_schedule() {
        let mut b = ProgramBuilder::new("p");
        b.thread("T", |_| {});
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(10));
        assert_eq!(stats.schedules, 1);
        assert_eq!(stats.unique_states, 1);
    }
}
