//! Dynamic partial-order reduction (Flanagan & Godefroid, POPL 2005).
//!
//! Stateless-model-checking DPOR with clock vectors, implemented over
//! snapshot cloning (the executor and the happens-before clock state are
//! cloned at each stack level, so backtracking restores state without
//! re-execution). Optionally refined with **sleep sets**.
//!
//! The algorithm walks one schedule at a time. After appending an event `e`
//! by thread `p` at depth `d`, it looks up the *latest* earlier event `f`
//! that is dependent with `e` (per object: last write / latest read for
//! variables, last operation for mutexes). If `f` is not already ordered
//! before `p`'s next transition by the happens-before relation built so far
//! (checked with `p`'s clock), the pair is a *race*: the exploration must
//! also try schedules in which the race is reversed, so `p` (or, if `p` was
//! not enabled there, every enabled thread) is added to the *backtrack set*
//! of the stack frame from which `f` was executed.
//!
//! The *dependence* notion is a parameter ([`DependenceMode`]): the classic
//! algorithm uses the regular happens-before dependence; the lazy-DPOR
//! prototype of the paper's §4 plugs in lazy variants (see
//! [`lazy_dpor`](crate::explore::lazy_dpor)).
//!
//! ## Engine structure
//!
//! The stepping engine is split from the frame storage so one hot loop
//! serves two drivers:
//!
//! * [`DporCore`] owns everything that is *per-worker* — the current trace
//!   and schedule, the per-object access indices driving race detection,
//!   the scratch buffers, and a [`FramePool`] of recycled frame bodies —
//!   and implements one generic [`DporCore::take_step`].
//! * The [`FrameStack`] trait abstracts the *frame sets* (backtrack / done
//!   / sleep plus the per-frame snapshots). The sequential driver below
//!   stores plain frames in a `Vec`; the work-stealing driver in
//!   [`parallel_dpor`](crate::explore::parallel_dpor) stores
//!   reference-counted frames whose sets live behind a lock so idle
//!   workers can steal sibling backtrack choices.
//!
//! Frame creation is allocation-free in the steady state: popped frames
//! retire their `Executor`/`ClockEngine` bodies into the pool and the next
//! push clones *into* a recycled body instead of cloning afresh.

use crate::checkpoint::{CheckpointState, FrameSets};
use crate::config::ExploreConfig;
use crate::explore::frame_pool::{FrameBody, FramePool};
use crate::explore::Explorer;
use crate::stats::{profile_dims, Collector, Continue, ExploreStats};
use lazylocks_clock::VectorClock;
use lazylocks_hbr::{ClockEngine, HbMode};
use lazylocks_model::{Program, ThreadId, ThreadSet, VisibleKind};
use lazylocks_obs::{ids, site, MetricsShard, ProfileObj, ProfileSites};
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::time::Instant;

/// Which dependence relation drives race detection and backtracking.
///
/// Backtrack candidates are restricted to pairs that *may be co-enabled*
/// (Flanagan–Godefroid): for mutexes that means `lock`/`lock` pairs only —
/// an `unlock` is never co-enabled with another operation on its mutex
/// (whoever could unlock holds the lock), so unlock-induced serialisation
/// edges order events but never create backtrack points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependenceMode {
    /// Classic DPOR: variable conflicts plus lock-acquisition conflicts.
    Regular,
    /// Variable conflicts only; no mutex-induced backtracking at all.
    /// When a variable race cannot be reversed directly because the racing
    /// thread is blocked on a lock, the backtrack point is *redirected* to
    /// the acquisition of the blocking mutex. Misses deadlocks by
    /// construction (no acquisition reversals without data conflicts);
    /// kept for measurement.
    LazyVarsOnly,
    /// [`DependenceMode::LazyVarsOnly`] plus lock-acquisition conflicts
    /// for *nested* acquisitions (a thread locking while already holding a
    /// mutex) — the deadlock-relevant reversals. Disjoint flat critical
    /// sections generate no backtracking, which is exactly the reduction
    /// the lazy HBR promises. The lazy-DPOR prototype default.
    LazyLockAcquisitions,
}

impl DependenceMode {
    /// The clock mode used for the "already ordered" check.
    pub(crate) fn hb_mode(self) -> HbMode {
        match self {
            DependenceMode::Regular => HbMode::Regular,
            // Lazy modes must treat fewer pairs as ordered, never more, so
            // they use the lazy relation for the ordering check too.
            DependenceMode::LazyVarsOnly | DependenceMode::LazyLockAcquisitions => HbMode::Lazy,
        }
    }

    /// Whether two visible operations are dependent — used by the sleep-set
    /// independence filter (conservative: full dependence, not restricted
    /// to co-enabled pairs).
    pub fn dependent(self, a: VisibleKind, b: VisibleKind) -> bool {
        match self {
            DependenceMode::Regular => a.dependent_regular(b),
            DependenceMode::LazyVarsOnly => a.dependent_lazy(b),
            DependenceMode::LazyLockAcquisitions => {
                a.dependent_lazy(b)
                    || matches!(
                        (a, b),
                        (VisibleKind::Lock(m1), VisibleKind::Lock(m2)) if m1 == m2
                    )
            }
        }
    }
}

/// The DPOR explorer.
///
/// The default configuration (no sleep sets, regular dependence) is
/// *class-exact*: it explores at least one schedule per happens-before
/// equivalence class, validated against exhaustive enumeration across the
/// corpus and on randomly generated programs.
///
/// `sleep_sets: true` enables the classic sleep-set refinement, which
/// prunes substantially more but interacts with lazily-computed backtrack
/// sets (the "sleep-set blocking" problem: a race may add a backtrack
/// thread that is asleep in that frame and is then never scheduled —
/// solving this exactly requires the wakeup trees of optimal DPOR). On
/// the test corpus the sleep-set mode preserves every deadlock and
/// assertion failure, making it the fast *bug-finding* mode; it can
/// however miss terminal states and happens-before classes that reach
/// already-seen outcomes. Use the default for counting and coverage.
#[derive(Debug, Clone, Copy)]
pub struct Dpor {
    /// Refine with sleep sets (aggressive; see the type-level caveat).
    pub sleep_sets: bool,
    /// Dependence notion for race detection.
    pub dependence: DependenceMode,
}

impl Default for Dpor {
    fn default() -> Self {
        Dpor {
            sleep_sets: false,
            dependence: DependenceMode::Regular,
        }
    }
}

impl Explorer for Dpor {
    fn name(&self) -> String {
        match (self.dependence, self.sleep_sets) {
            (DependenceMode::Regular, false) => "dpor".to_string(),
            (DependenceMode::Regular, true) => "dpor-sleep".to_string(),
            (DependenceMode::LazyVarsOnly, _) => "lazy-dpor-vars".to_string(),
            (DependenceMode::LazyLockAcquisitions, _) => "lazy-dpor".to_string(),
        }
    }

    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let start = Instant::now();
        let mut collector = Collector::new(config);
        let mut core = DporCore::new(
            program,
            self.sleep_sets,
            self.dependence,
            collector.shard().clone(),
            config.profile.sites(&profile_dims(program)),
        );
        // The sequential driver is the only one that can attribute
        // re-executed schedules to the backtrack point that caused them
        // (the parallel driver's claim order is timing-dependent).
        core.track_resched = core.sites.is_enabled();
        run_sequential(&mut core, &mut collector);
        core.profile_flush(collector.stats.schedules as u64);
        core.flush_counters(&mut collector);
        let mut stats = collector.into_stats();
        stats.wall_time = start.elapsed();
        stats
    }
}

/// How a frame's backtrack set is extended for a race.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BacktrackInsert {
    /// Schedule this thread at the frame (it is runnable there).
    Thread(ThreadId),
    /// The racing thread is not runnable (or would be silently skipped by
    /// the frame's sleep set): wake the frame up by adding every enabled
    /// thread.
    WakeAll,
}

/// The frame-set storage a [`DporCore`] steps over.
///
/// A frame at depth `d` holds the machine/clock snapshot *before* the
/// transition recorded at the same depth of the trace, plus the three
/// DPOR thread sets. The sequential driver implements this with a plain
/// `Vec`; the parallel driver with shared, lock-guarded frames.
pub(crate) trait FrameStack<'p> {
    /// Number of frames on the (current worker's) stack.
    fn depth(&self) -> usize;

    /// The pre-state executor of the frame at depth `d`.
    fn exec_at(&self, d: usize) -> &Executor<'p>;

    /// The snapshot pair of the top frame.
    fn top_body(&self) -> &FrameBody<'p>;

    /// `(done, sleep)` of the top frame — consulted only by the sleep-set
    /// child computation, *after* the current pick was marked done.
    fn top_done_sleep(&self) -> (ThreadSet, ThreadSet);

    /// Extends the backtrack set of the frame at depth `d`, returning
    /// how many threads were *newly* added (the profiler's backtrack
    /// attribution; re-insertions of already-pending threads count 0).
    fn insert_backtrack(&mut self, d: usize, ins: BacktrackInsert) -> u64;

    /// Pushes a child frame. `entry` is the `(thread, event)` of the step
    /// that created it; `trace_mark`/`sched_mark` are the trace/schedule
    /// lengths to restore when the frame is popped.
    fn push_frame(
        &mut self,
        body: FrameBody<'p>,
        backtrack: ThreadSet,
        sleep: ThreadSet,
        entry: (ThreadId, Option<Event>),
        trace_mark: usize,
        sched_mark: usize,
    );
}

/// What one [`DporCore::take_step`] produced.
///
/// The leaf variant intentionally carries the full [`FrameBody`] by value
/// (not boxed): the body must flow back into the frame pool without an
/// extra heap round-trip, and the enum never outlives the step that
/// produced it.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Stepped<'p> {
    /// The child state is running and was pushed as a new frame.
    Pushed,
    /// The child state is a leaf: a terminal execution, or a running state
    /// truncated by the run-length cap. The driver records it and then
    /// hands the body back via [`DporCore::finish_leaf`].
    Leaf {
        body: FrameBody<'p>,
        truncated: bool,
        pushed_event: bool,
    },
}

/// The per-worker DPOR stepping engine: current trace/schedule, the
/// per-object access indices, race-detection scratch, and the frame pool.
///
/// All methods are exact refactorings of the original single-driver
/// engine; `tests/golden_stats.rs` pins the sequential exploration results
/// byte-for-byte across the split.
pub(crate) struct DporCore<'p> {
    pub program: &'p Program,
    pub sleep_sets: bool,
    pub dependence: DependenceMode,
    pub trace: Vec<Event>,
    pub schedule: Vec<ThreadId>,
    /// For each trace position, the depth of the frame the event was
    /// executed from. Identical to the position itself while every step
    /// appends an event; a no-event step (an unlock-without-hold fault)
    /// pushes a frame without a trace entry and shifts every later event
    /// one frame past its index. Race handling must target *frames*, so
    /// every trace index crossing into frame space maps through here.
    pub trace_depths: Vec<usize>,
    /// Per-variable trace indices of writes, in trace order. Maintained
    /// incrementally: pushed when an event is appended, popped when the
    /// trace is truncated on unwind — so race detection enumerates only
    /// the accesses of the conflicting object instead of scanning the
    /// whole trace (O(depth)) per step.
    var_writes: Vec<Vec<usize>>,
    /// Per-variable trace indices of reads, in trace order.
    var_reads: Vec<Vec<usize>>,
    /// Per-mutex trace indices of acquisitions, in trace order. Doubles as
    /// the O(1) "owner's live acquisition" lookup (its last entry) that
    /// previously required a reverse scan of the trace per blocked thread.
    mutex_locks: Vec<Vec<usize>>,
    /// Scratch buffer for uncovered race-partner indices, reused across
    /// steps so the common no-race path performs no allocation.
    race_buf: Vec<usize>,
    /// Recycled frame bodies: steady-state pushes allocate nothing.
    pub pool: FramePool<'p>,
    /// Race-partner candidates examined (flushed into the collector).
    pub events_compared: u64,
    /// Subtrees pruned because every enabled thread was asleep.
    pub sleep_prunes: usize,
    /// Phase-timer sink for the hot loop (inert when metrics are off:
    /// each timed phase then costs one branch per step).
    pub shard: MetricsShard,
    /// Per-program-point attribution slab (inert when the profiler is
    /// off: each attribution point then costs one branch).
    pub sites: ProfileSites,
    /// Attribute re-executed schedules to the backtrack points that
    /// caused them. Sequential driver only — the bookkeeping assumes
    /// the depth-first claim discipline of [`run_sequential`].
    pub track_resched: bool,
    /// Backtrack insertions awaiting their first claim, indexed by the
    /// frame depth they were inserted at. Entries are dropped wholesale
    /// when the frame unwinds.
    resched_pending: Vec<Vec<PendingResched>>,
    /// Claimed backtrack choices whose subtrees are still being
    /// explored, innermost last (their depths are strictly increasing).
    open_spans: Vec<OpenSpan>,
}

/// A backtrack thread inserted by a race, waiting to be claimed by the
/// sequential pick loop — carries the site that caused the insertion.
#[derive(Debug, Clone, Copy)]
struct PendingResched {
    choice: ThreadId,
    thread: u32,
    pc: u32,
    obj: Option<ProfileObj>,
}

/// A claimed backtrack choice whose subtree is in progress; closed (and
/// its schedule delta charged to the causing site) when the driver
/// returns to its depth.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    depth: usize,
    thread: u32,
    pc: u32,
    obj: Option<ProfileObj>,
    schedules_at_open: u64,
}

/// The profiler object an event touches.
fn profile_obj(kind: VisibleKind) -> Option<ProfileObj> {
    match kind {
        VisibleKind::Read(x) | VisibleKind::Write(x) => Some(ProfileObj::Var(x.index() as u32)),
        VisibleKind::Lock(m) | VisibleKind::Unlock(m) => Some(ProfileObj::Mutex(m.index() as u32)),
    }
}

/// `clock` summarises (at least) event `f`'s causal past.
fn covers(clock: &VectorClock, f: &Event) -> bool {
    clock.get(f.thread().index()) > f.id.ordinal
}

impl<'p> DporCore<'p> {
    pub fn new(
        program: &'p Program,
        sleep_sets: bool,
        dependence: DependenceMode,
        shard: MetricsShard,
        sites: ProfileSites,
    ) -> Self {
        DporCore {
            program,
            sleep_sets,
            dependence,
            trace: Vec::new(),
            schedule: Vec::new(),
            trace_depths: Vec::new(),
            var_writes: vec![Vec::new(); program.vars().len()],
            var_reads: vec![Vec::new(); program.vars().len()],
            mutex_locks: vec![Vec::new(); program.mutexes().len()],
            race_buf: Vec::new(),
            pool: FramePool::new(),
            events_compared: 0,
            sleep_prunes: 0,
            shard,
            sites,
            track_resched: false,
            resched_pending: Vec::new(),
            open_spans: Vec::new(),
        }
    }

    /// Adds the core's private counters to the collector's stats. Call
    /// once, after the run.
    pub fn flush_counters(&self, collector: &mut Collector) {
        collector.stats.events_compared += self.events_compared;
        collector.stats.sleep_prunes += self.sleep_prunes;
        collector.stats.frames_pooled += self.pool.hits();
    }

    /// Drops the whole trace/schedule context (the parallel driver rebuilds
    /// a fresh prefix per stolen subtree).
    pub fn reset_context(&mut self) {
        self.unindex_tail(0);
        self.trace.clear();
        self.schedule.clear();
        self.trace_depths.clear();
    }

    /// Appends `event` (about to sit at trace position `i`) to its
    /// per-object access index.
    pub fn index_event(&mut self, i: usize, event: &Event) {
        match event.kind {
            VisibleKind::Read(x) => self.var_reads[x.index()].push(i),
            VisibleKind::Write(x) => self.var_writes[x.index()].push(i),
            VisibleKind::Lock(m) => self.mutex_locks[m.index()].push(i),
            VisibleKind::Unlock(_) => {}
        }
    }

    /// Removes every trace event at position `mark` or later from the
    /// per-object access indices (the inverse of [`Self::index_event`],
    /// called before the trace itself is truncated to `mark`). Amortised
    /// O(1) per popped event.
    pub fn unindex_tail(&mut self, mark: usize) {
        for i in (mark..self.trace.len()).rev() {
            let popped = match self.trace[i].kind {
                VisibleKind::Read(x) => self.var_reads[x.index()].pop(),
                VisibleKind::Write(x) => self.var_writes[x.index()].pop(),
                VisibleKind::Lock(m) => self.mutex_locks[m.index()].pop(),
                VisibleKind::Unlock(_) => continue,
            };
            debug_assert_eq!(popped, Some(i), "access index out of sync");
        }
    }

    /// Pops the trace/schedule entries of a frame being unwound.
    pub fn truncate_to(&mut self, trace_mark: usize, sched_mark: usize) {
        self.unindex_tail(trace_mark);
        self.trace.truncate(trace_mark);
        self.trace_depths.truncate(trace_mark);
        self.schedule.truncate(sched_mark);
    }

    /// The initial backtrack set of a fresh frame: the first enabled
    /// thread outside the sleep set (one representative; races add the
    /// rest on demand). Counts a sleep prune when everything enabled is
    /// asleep (the subtree is redundant).
    pub fn initial_backtrack(&mut self, exec: &Executor<'p>, sleep: ThreadSet) -> ThreadSet {
        let init = exec.enabled_iter().find(|&t| !sleep.contains(t));
        let mut backtrack = ThreadSet::new();
        match init {
            Some(t) => {
                backtrack.insert(t);
            }
            None => {
                self.sleep_prunes += 1;
                // The subtree below the event just executed is entirely
                // asleep: charge the prune to that event's site.
                if let Some(e) = self.trace.last() {
                    self.sites.add(
                        e.thread().index() as u32,
                        e.pc,
                        profile_obj(e.kind),
                        site::SLEEP_BLOCKS,
                        1,
                    );
                }
            }
        }
        backtrack
    }

    /// Executes `p` from the top frame, performs race detection, and
    /// pushes the child frame — or returns the leaf for the driver to
    /// record. `run_cap` is [`ExploreConfig::max_run_length`].
    pub fn take_step<S: FrameStack<'p>>(
        &mut self,
        frames: &mut S,
        p: ThreadId,
        run_cap: usize,
    ) -> Stepped<'p> {
        let top = frames.depth() - 1;
        let entry_trace_mark = self.trace.len();
        let entry_sched_mark = self.schedule.len();
        let mut child = {
            let timer = self.shard.timer_start(ids::PHASE_FRAME_CHECKPOINT);
            let parent = frames.top_body();
            let child = self.pool.take_from(&parent.exec, &parent.clocks);
            self.shard.timer_stop(ids::PHASE_FRAME_CHECKPOINT, timer);
            child
        };
        let timer = self.shard.timer_start(ids::PHASE_EXECUTOR_STEP);
        let out = child.exec.step(p);
        self.shard.timer_stop(ids::PHASE_EXECUTOR_STEP, timer);

        if let Some(event) = out.event {
            let race_timer = self.shard.timer_start(ids::PHASE_RACE_DETECTION);
            // --- race detection (source-DPOR style, Abdulla et al. 2014) ---
            // A *reversible race* partner of `event` is an earlier event f
            // that is dependent-and-may-be-co-enabled with it, not already
            // ordered before p's pending transition (f outside p's clock),
            // and adjacent in the happens-before relation (no intermediate
            // g with f <HB g <HB event). Every reversible race is processed
            // — handling only the latest one interacts unsoundly with sleep
            // sets (the "sleep-set blocking" problem).
            //
            // Candidates come from the per-object access indices, not a
            // trace scan: only accesses of the conflicting variable (all
            // writes for a read; writes and reads for a write) or
            // acquisitions of the conflicting mutex can be dependent.
            //
            // Partner indices are *trace* positions; everything that
            // touches a frame maps them through `trace_depths`, so
            // no-event fault steps (which push a frame without a trace
            // entry) cannot shift backtrack insertions one frame early.
            // `tests/hostile_input.rs` pins DFS parity on exactly those
            // programs.
            let p_nested = frames.exec_at(top).holds_any_mutex(p);
            let mut race_buf = std::mem::take(&mut self.race_buf);
            debug_assert!(race_buf.is_empty());
            let mut compared = 0u64;
            {
                let cp = frames.top_body().clocks.thread_clock(p);
                match event.kind {
                    VisibleKind::Read(x) => {
                        compared += self.collect_partners(
                            frames,
                            &self.var_writes[x.index()],
                            event.kind,
                            p,
                            cp,
                            p_nested,
                            &mut race_buf,
                        );
                    }
                    VisibleKind::Write(x) => {
                        compared += self.collect_partners(
                            frames,
                            &self.var_writes[x.index()],
                            event.kind,
                            p,
                            cp,
                            p_nested,
                            &mut race_buf,
                        );
                        compared += self.collect_partners(
                            frames,
                            &self.var_reads[x.index()],
                            event.kind,
                            p,
                            cp,
                            p_nested,
                            &mut race_buf,
                        );
                    }
                    VisibleKind::Lock(m) => {
                        compared += self.collect_partners(
                            frames,
                            &self.mutex_locks[m.index()],
                            event.kind,
                            p,
                            cp,
                            p_nested,
                            &mut race_buf,
                        );
                    }
                    // An unlock is never co-enabled with another operation
                    // on its mutex: no candidates at all.
                    VisibleKind::Unlock(_) => {}
                }
            }
            self.events_compared += compared;
            self.shard.timer_stop(ids::PHASE_RACE_DETECTION, race_timer);
            let timer = self.shard.timer_start(ids::PHASE_HBR_APPLY);
            child.clocks.apply(&event);
            self.shard.timer_stop(ids::PHASE_HBR_APPLY, timer);
            self.index_event(self.trace.len(), &event);
            self.trace.push(event);
            self.trace_depths.push(top);
            for &i in &race_buf {
                self.handle_race(frames, i, p);
            }
            race_buf.clear();
            self.race_buf = race_buf;
        }
        self.schedule.push(p);

        // --- blocked-acquisition races ---
        // A thread whose pending `lock(m)` is blocked races with the
        // owner's acquisition of `m`. That lock never *executes* in this
        // subtree (it may stay blocked all the way into a deadlock leaf),
        // so the append-based detection above cannot see the race; this is
        // the per-state pending-transition check of the original algorithm,
        // specialised to the only transitions that can pend: acquisitions.
        // Skipped outright for mutex-free programs, where nothing can ever
        // block.
        if !self.program.mutexes().is_empty() {
            let mut compared = 0u64;
            for q in self.program.thread_ids() {
                let Some(VisibleKind::Lock(m)) = child.exec.next_visible(q) else {
                    continue;
                };
                let Some(owner) = child.exec.mutex_owner(m) else {
                    continue; // free: not blocked
                };
                if owner == q {
                    continue; // self-relock: no reversal exists
                }
                // The owner's live acquisition is the last of its indexed
                // Lock(m) events (no trace scan).
                let Some(&j) = self.mutex_locks[m.index()]
                    .iter()
                    .rev()
                    .find(|&&j| self.trace[j].thread() == owner)
                else {
                    continue;
                };
                compared += 1;
                let q_nested = child.exec.holds_any_mutex(q);
                let cq = child.clocks.thread_clock(q);
                if !self.is_race_partner(frames, VisibleKind::Lock(m), q, cq, j, q_nested) {
                    continue;
                }
                self.handle_race(frames, j, q);
            }
            self.events_compared += compared;
        }

        // --- sleep set for the child ---
        let child_sleep = if self.sleep_sets {
            let (done, sleep) = frames.top_done_sleep();
            let parent_exec = frames.exec_at(top);
            let mut child_sleep = ThreadSet::new();
            for r in sleep.union(done).iter() {
                if r == p {
                    continue;
                }
                // r stays asleep only if its pending transition is
                // independent of the one just executed.
                // Independence must be judged with the sound (regular)
                // dependence even in the lazy modes: waking a sleeping
                // thread too rarely would prune real behaviours.
                let keep = match (out.event, parent_exec.next_visible(r)) {
                    (Some(e), Some(rk)) => !e.kind.dependent_regular(rk),
                    // Fault step (no event): it only changed p's own
                    // status, independent of everything.
                    (None, Some(_)) => true,
                    (_, None) => false,
                };
                if keep {
                    child_sleep.insert(r);
                }
            }
            child_sleep
        } else {
            ThreadSet::new()
        };

        match child.exec.phase() {
            ExecPhase::Running => {
                if self.trace.len() >= run_cap {
                    Stepped::Leaf {
                        body: child,
                        truncated: true,
                        pushed_event: out.event.is_some(),
                    }
                } else {
                    let backtrack = self.initial_backtrack(&child.exec, child_sleep);
                    frames.push_frame(
                        child,
                        backtrack,
                        child_sleep,
                        (p, out.event),
                        entry_trace_mark,
                        entry_sched_mark,
                    );
                    Stepped::Pushed
                }
            }
            _ => Stepped::Leaf {
                body: child,
                truncated: false,
                pushed_event: out.event.is_some(),
            },
        }
    }

    /// Retires a leaf body and pops the trace/schedule entries its step
    /// pushed. Call after recording the leaf.
    pub fn finish_leaf(&mut self, body: FrameBody<'p>, pushed_event: bool) {
        if pushed_event {
            self.unindex_tail(self.trace.len() - 1);
            self.trace.pop();
            self.trace_depths.pop();
        }
        self.schedule.pop();
        self.pool.retire(body);
    }

    /// Is the earlier event `f` (at trace position `i`) a backtracking
    /// dependence for a new event of kind `kind`?
    ///
    /// Variable conflicts count in every mode. Mutex conflicts are
    /// restricted to may-be-co-enabled pairs — `lock`/`lock` on the same
    /// mutex (an `unlock` is never co-enabled with another operation on its
    /// mutex). The lazy lock-acquisition mode further restricts lock pairs
    /// to the deadlock-relevant ones, where at least one side acquired
    /// while holding another mutex.
    fn backtrack_dependent<S: FrameStack<'p>>(
        &self,
        frames: &S,
        kind: VisibleKind,
        f: &Event,
        i: usize,
        p_nested: bool,
    ) -> bool {
        if kind.dependent_lazy(f.kind) {
            return true;
        }
        match (kind, f.kind) {
            (VisibleKind::Lock(m1), VisibleKind::Lock(m2)) if m1 == m2 => match self.dependence {
                DependenceMode::Regular => true,
                DependenceMode::LazyVarsOnly => false,
                DependenceMode::LazyLockAcquisitions => {
                    p_nested
                        || frames
                            .exec_at(self.trace_depths[i])
                            .holds_any_mutex(f.thread())
                }
            },
            _ => false,
        }
    }

    /// The shared candidate filter of both race passes: is the earlier
    /// event at trace position `i` a reversible-race partner for a
    /// transition of `actor` (kind `kind`, causal past `actor_clock`,
    /// nested-lock status `nested`)?
    fn is_race_partner<S: FrameStack<'p>>(
        &self,
        frames: &S,
        kind: VisibleKind,
        actor: ThreadId,
        actor_clock: &VectorClock,
        i: usize,
        nested: bool,
    ) -> bool {
        let f = &self.trace[i];
        f.thread() != actor // program order: never a race
            && self.backtrack_dependent(frames, kind, f, i, nested)
            && !covers(actor_clock, f) // not already ordered before actor
    }

    /// Filters one per-object candidate list through
    /// [`Self::is_race_partner`], appending the survivors to `buf`.
    /// Returns the number of candidates examined (the `events_compared`
    /// contribution).
    #[allow(clippy::too_many_arguments)]
    fn collect_partners<S: FrameStack<'p>>(
        &self,
        frames: &S,
        candidates: &[usize],
        kind: VisibleKind,
        actor: ThreadId,
        actor_clock: &VectorClock,
        nested: bool,
        buf: &mut Vec<usize>,
    ) -> u64 {
        for &i in candidates {
            if self.is_race_partner(frames, kind, actor, actor_clock, i, nested) {
                buf.push(i);
            }
        }
        candidates.len() as u64
    }

    /// Registers a backtrack point for the race between the event at trace
    /// position `i` and the pending transition of thread `p`.
    ///
    /// Conservative insertion: schedule `p` at the event's pre-state frame
    /// (`trace_depths[i]`) when it is runnable there; when it is not — or
    /// when it is parked in that frame's sleep set, which would silently
    /// skip it (the "sleep-set blocking" problem) — wake the frame up by
    /// adding every runnable thread. The lazy modes additionally
    /// *redirect* a `p` blocked on a mutex to the acquisition of the
    /// blocking mutex, where reversing the race is actually possible.
    fn handle_race<S: FrameStack<'p>>(&mut self, frames: &mut S, i: usize, p: ThreadId) {
        let mut target = self.trace_depths[i];
        // Attribute the race to its earlier partner — the program point
        // whose reversal the backtracking will attempt.
        let (site_thread, site_pc, site_obj) = {
            let f = &self.trace[i];
            (f.thread().index() as u32, f.pc, profile_obj(f.kind))
        };
        self.sites
            .add(site_thread, site_pc, site_obj, site::RACES, 1);
        if self.dependence != DependenceMode::Regular && !frames.exec_at(target).is_enabled(p) {
            if let Some(VisibleKind::Lock(mb)) = frames.exec_at(target).next_visible(p) {
                if let Some(owner) = frames.exec_at(target).mutex_owner(mb) {
                    // The owner's most recent acquisition of `mb` at or
                    // before position i is the blocking one (held ever
                    // since): the last indexed Lock(mb) below i, no trace
                    // scan.
                    let locks = &self.mutex_locks[mb.index()];
                    let below = locks.partition_point(|&j| j < i);
                    if let Some(&j) = locks[..below]
                        .iter()
                        .rev()
                        .find(|&&j| self.trace[j].thread() == owner)
                    {
                        target = self.trace_depths[j];
                    }
                }
            }
        }
        let inserted = if frames.exec_at(target).is_enabled(p) {
            // A sleeping p is inserted too: the pick loop skips it, which
            // is exactly the sleep-set guarantee — p's continuations from
            // this state were already explored in an equivalent context.
            let inserted = frames.insert_backtrack(target, BacktrackInsert::Thread(p));
            if inserted > 0 && self.track_resched {
                // Remember who caused this insertion: when the pick loop
                // claims `p` at `target`, the whole re-explored subtree
                // is charged back to this site as RESCHEDULES.
                if self.resched_pending.len() <= target {
                    self.resched_pending.resize_with(target + 1, Vec::new);
                }
                self.resched_pending[target].push(PendingResched {
                    choice: p,
                    thread: site_thread,
                    pc: site_pc,
                    obj: site_obj,
                });
            }
            inserted
        } else {
            frames.insert_backtrack(target, BacktrackInsert::WakeAll)
        };
        if inserted > 0 {
            self.sites
                .add(site_thread, site_pc, site_obj, site::BACKTRACKS, inserted);
        }
    }

    /// Closes every open re-exploration span rooted at `depth` or deeper,
    /// charging the schedules completed since it opened to the causing
    /// site.
    fn close_spans_at(&mut self, depth: usize, schedules: u64) {
        while let Some(span) = self.open_spans.last() {
            if span.depth < depth {
                break;
            }
            let span = self.open_spans.pop().unwrap();
            let delta = schedules - span.schedules_at_open;
            if delta > 0 {
                self.sites
                    .add(span.thread, span.pc, span.obj, site::RESCHEDULES, delta);
            }
        }
    }

    /// Sequential-driver hook: the pick loop is about to run `p` from the
    /// frame at depth `top` (with `schedules` complete schedules so far).
    /// Closes spans of sibling subtrees and, when `p` was inserted by a
    /// race, opens a span charging the coming subtree to that race's site.
    pub fn profile_claim(&mut self, top: usize, p: ThreadId, schedules: u64) {
        if !self.track_resched {
            return;
        }
        self.close_spans_at(top, schedules);
        let Some(pending) = self.resched_pending.get_mut(top) else {
            return;
        };
        let Some(pos) = pending.iter().position(|e| e.choice == p) else {
            return;
        };
        let entry = pending.swap_remove(pos);
        self.open_spans.push(OpenSpan {
            depth: top,
            thread: entry.thread,
            pc: entry.pc,
            obj: entry.obj,
            schedules_at_open: schedules,
        });
    }

    /// Sequential-driver hook: the frame at depth `depth` is being
    /// popped. Closes its spans and drops its unclaimed insertions.
    pub fn profile_unwind(&mut self, depth: usize, schedules: u64) {
        if !self.track_resched {
            return;
        }
        self.close_spans_at(depth, schedules);
        if let Some(pending) = self.resched_pending.get_mut(depth) {
            pending.clear();
        }
    }

    /// Closes every span still open at the end of a run.
    pub fn profile_flush(&mut self, schedules: u64) {
        self.close_spans_at(0, schedules);
    }
}

/// One frame of the sequential DPOR stack.
///
/// The three thread sets are `u64` bitmasks ([`ThreadSet`]): frames are
/// pushed and popped on every step, and `BTreeSet`s here used to be the
/// dominant allocation churn of the hot loop.
struct SeqFrame<'p> {
    body: FrameBody<'p>,
    backtrack: ThreadSet,
    done: ThreadSet,
    sleep: ThreadSet,
    /// Trace/schedule lengths when the frame was pushed (for unwinding).
    trace_mark: usize,
    sched_mark: usize,
}

/// Plain `Vec`-backed frames: the sequential driver's storage.
struct SeqFrames<'p> {
    stack: Vec<SeqFrame<'p>>,
}

impl<'p> FrameStack<'p> for SeqFrames<'p> {
    fn depth(&self) -> usize {
        self.stack.len()
    }

    fn exec_at(&self, d: usize) -> &Executor<'p> {
        &self.stack[d].body.exec
    }

    fn top_body(&self) -> &FrameBody<'p> {
        &self.stack.last().expect("empty stack").body
    }

    fn top_done_sleep(&self) -> (ThreadSet, ThreadSet) {
        let f = self.stack.last().expect("empty stack");
        (f.done, f.sleep)
    }

    fn insert_backtrack(&mut self, d: usize, ins: BacktrackInsert) -> u64 {
        let f = &mut self.stack[d];
        match ins {
            BacktrackInsert::Thread(t) => f.backtrack.insert(t) as u64,
            BacktrackInsert::WakeAll => {
                let added = f.body.exec.enabled_set() - f.backtrack;
                f.backtrack |= added;
                added.len() as u64
            }
        }
    }

    fn push_frame(
        &mut self,
        body: FrameBody<'p>,
        backtrack: ThreadSet,
        sleep: ThreadSet,
        _entry: (ThreadId, Option<Event>),
        trace_mark: usize,
        sched_mark: usize,
    ) {
        self.stack.push(SeqFrame {
            body,
            backtrack,
            done: ThreadSet::new(),
            sleep,
            trace_mark,
            sched_mark,
        });
    }
}

/// Snapshots the current frontier — schedule prefix, per-frame sets, and
/// accumulated statistics (including the core's private counters, which
/// only flush into the collector at the end of the run).
fn capture_checkpoint(
    core: &DporCore<'_>,
    frames: &SeqFrames<'_>,
    collector: &Collector,
) -> CheckpointState {
    let mut cp = CheckpointState {
        schedule: core.schedule.clone(),
        frames: frames
            .stack
            .iter()
            .map(|f| FrameSets {
                backtrack: f.backtrack.bits(),
                done: f.done.bits(),
                sleep: f.sleep.bits(),
            })
            .collect(),
        ..CheckpointState::default()
    };
    collector.export_checkpoint(&mut cp);
    cp.stats.events_compared += core.events_compared;
    cp.stats.sleep_prunes += core.sleep_prunes;
    cp.stats.frames_pooled += core.pool.hits();
    cp.pool_free = core.pool.free_len() as u64;
    cp
}

/// Rebuilds the frame stack of a checkpointed frontier by re-executing
/// its schedule prefix, then overlays the recorded backtrack/done/sleep
/// sets. The rebuild's own race detection and sleep prunes re-count work
/// the checkpointed stats already include, so the core counters are
/// zeroed afterwards — the seeded collector plus post-resume deltas then
/// reproduce the uninterrupted totals exactly.
fn resume_frontier<'p>(
    core: &mut DporCore<'p>,
    frames: &mut SeqFrames<'p>,
    cp: &CheckpointState,
    run_cap: usize,
) {
    if let Err(e) = cp.validate() {
        panic!("cannot resume: {e}");
    }
    for (i, &choice) in cp.schedule.iter().enumerate() {
        match core.take_step(frames, choice, run_cap) {
            Stepped::Pushed => {}
            Stepped::Leaf { .. } => panic!(
                "cannot resume: checkpoint schedule step {i} ({choice}) left the program \
                 in a non-running state — the checkpoint was taken from a different \
                 program, strategy or configuration"
            ),
        }
    }
    debug_assert_eq!(frames.stack.len(), cp.frames.len());
    for (frame, sets) in frames.stack.iter_mut().zip(&cp.frames) {
        frame.backtrack = ThreadSet::from_bits(sets.backtrack);
        frame.done = ThreadSet::from_bits(sets.done);
        frame.sleep = ThreadSet::from_bits(sets.sleep);
    }
    core.shard
        .add(ids::RESUME_FRAMES_RESTORED, frames.stack.len() as u64);
    core.events_compared = 0;
    core.sleep_prunes = 0;
    // Re-warm the frame pool to the captured free-list length: the
    // replay above only pushes (no retires), so the pool is cold here,
    // while the uninterrupted engine still held the bodies it retired
    // unwinding to this frontier. Without this, every retired-at-capture
    // body becomes a miss instead of a hit and `frames_pooled` drifts
    // below the uninterrupted run's count.
    let root = &frames.stack[0].body;
    core.pool
        .warm(&root.exec, &root.clocks, cp.pool_free as usize);
}

/// The sequential driver: a depth-first pick/step/unwind loop over
/// [`SeqFrames`].
fn run_sequential<'p>(core: &mut DporCore<'p>, collector: &mut Collector) {
    assert!(
        core.program.thread_count() <= ThreadSet::MAX_THREADS,
        "DPOR supports at most {} threads",
        ThreadSet::MAX_THREADS
    );
    let root_exec = Executor::new(core.program);
    if !matches!(root_exec.phase(), ExecPhase::Running) {
        collector.record_terminal(core.program, &root_exec, &[], &[]);
        return;
    }
    let clocks = ClockEngine::for_program(core.dependence.hb_mode(), core.program);
    let mut frames = SeqFrames { stack: Vec::new() };
    let backtrack = core.initial_backtrack(&root_exec, ThreadSet::new());
    frames.stack.push(SeqFrame {
        body: FrameBody {
            exec: root_exec,
            clocks,
        },
        backtrack,
        done: ThreadSet::new(),
        sleep: ThreadSet::new(),
        trace_mark: 0,
        sched_mark: 0,
    });
    let run_cap = collector.config().max_run_length;
    let checkpoint_every = collector.config().checkpoint_every;
    if let Some(cp) = collector.config().resume_from.clone() {
        resume_frontier(core, &mut frames, &cp, run_cap);
        collector.seed_from_checkpoint(&cp);
    }

    while let Some(top) = frames.stack.len().checked_sub(1) {
        if collector.cancel_requested() {
            return;
        }
        let pick = {
            let frame = &frames.stack[top];
            (frame.backtrack - frame.done - frame.sleep).first()
        };
        let Some(p) = pick else {
            // Frame exhausted: unwind, recycling the body.
            core.profile_unwind(top, collector.stats.schedules as u64);
            let frame = frames.stack.pop().unwrap();
            core.truncate_to(frame.trace_mark, frame.sched_mark);
            core.pool.retire(frame.body);
            continue;
        };
        core.profile_claim(top, p, collector.stats.schedules as u64);
        frames.stack[top].done.insert(p);
        match core.take_step(&mut frames, p, run_cap) {
            Stepped::Pushed => {}
            Stepped::Leaf {
                body,
                truncated,
                pushed_event,
            } => {
                let cont = if truncated {
                    collector.record_truncated();
                    Continue::Yes
                } else {
                    collector.record_terminal(core.program, &body.exec, &core.trace, &core.schedule)
                };
                core.finish_leaf(body, pushed_event);
                if cont == Continue::Stop {
                    // A budget- or bug-stopped run still has a live
                    // frontier; slice-chained explorations (the
                    // distributed lease runner) need it captured so the
                    // next slice resumes exactly where this one stopped.
                    if collector.config().checkpoint_on_stop {
                        let cp = capture_checkpoint(core, &frames, collector);
                        collector.config().control.note_checkpoint(&cp);
                    }
                    return;
                }
                // `finish_leaf` restored the trace/schedule to the frame
                // stack, so the frontier is in its resumable between-leaves
                // state — exactly what a checkpoint must capture.
                if checkpoint_every > 0
                    && !truncated
                    && collector.stats.schedules.is_multiple_of(checkpoint_every)
                {
                    let cp = capture_checkpoint(core, &frames, collector);
                    collector.config().control.note_checkpoint(&cp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::dfs::DfsEnumeration;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn config(limit: usize) -> ExploreConfig {
        ExploreConfig::with_limit(limit)
    }

    /// The default DPOR must match exhaustive DFS exactly on states and
    /// HBR classes, with at most as many schedules. The sleep-set mode is
    /// held to its weaker bug-parity contract.
    fn assert_agrees_with_dfs(p: &Program, limit: usize) -> (ExploreStats, ExploreStats) {
        let dfs = DfsEnumeration.explore(p, &config(limit));
        assert!(!dfs.limit_hit, "ground truth must be exhaustive");
        for sleep in [false, true] {
            let dpor = Dpor {
                sleep_sets: sleep,
                dependence: DependenceMode::Regular,
            }
            .explore(p, &config(limit));
            assert!(!dpor.limit_hit);
            if sleep {
                assert_eq!(
                    dpor.deadlocks > 0,
                    dfs.deadlocks > 0,
                    "sleep-set DPOR lost deadlock parity"
                );
                assert_eq!(
                    dpor.faulted_schedules > 0,
                    dfs.faulted_schedules > 0,
                    "sleep-set DPOR lost fault parity"
                );
            } else {
                assert_eq!(
                    dpor.unique_states, dfs.unique_states,
                    "default DPOR missed states"
                );
                assert_eq!(
                    dpor.unique_hbrs, dfs.unique_hbrs,
                    "default DPOR missed HBR classes"
                );
            }
            assert!(
                dpor.schedules <= dfs.schedules,
                "DPOR(sleep={sleep}) must not explore more than DFS"
            );
            dpor.check_inequality().unwrap();
        }
        let dpor = Dpor::default().explore(p, &config(limit));
        (dpor, dfs)
    }

    #[test]
    fn independent_writes_need_one_schedule() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(y, 1));
        let p = b.build();
        let (dpor, dfs) = assert_agrees_with_dfs(&p, 10_000);
        assert_eq!(dfs.schedules, 2);
        assert_eq!(dpor.schedules, 1, "independent events need no backtracking");
    }

    #[test]
    fn conflicting_writes_need_both_orders() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let p = b.build();
        let (dpor, _) = assert_agrees_with_dfs(&p, 10_000);
        assert_eq!(dpor.schedules, 2);
        assert_eq!(dpor.unique_states, 2);
    }

    #[test]
    fn racy_increments_fully_covered() {
        let mut b = ProgramBuilder::new("racy");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let (dpor, dfs) = assert_agrees_with_dfs(&p, 10_000);
        assert_eq!(dfs.unique_states, 2);
        assert_eq!(dpor.unique_states, 2);
    }

    #[test]
    fn three_thread_mixed_conflicts_covered() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T1", |t| {
            t.store(x, 1);
            t.load(Reg(0), y);
            t.store(x, Reg(0));
        });
        b.thread("T2", |t| {
            t.store(y, 5);
            t.load(Reg(0), x);
        });
        b.thread("T3", |t| {
            t.store(y, 9);
        });
        let p = b.build();
        assert_agrees_with_dfs(&p, 100_000);
    }

    #[test]
    fn mutex_protected_sections_covered() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
            })
        });
        b.thread("T2", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.mul(Reg(0), Reg(0), 10);
                t.store(x, Reg(0));
            })
        });
        let p = b.build();
        // (0+1)*10 = 10 vs 0*10+1 = 1 → two states, two lock orders.
        let (dpor, dfs) = assert_agrees_with_dfs(&p, 10_000);
        assert_eq!(dfs.unique_states, 2);
        assert_eq!(dpor.unique_states, 2);
    }

    #[test]
    fn deadlocks_are_found_by_dpor() {
        let mut b = ProgramBuilder::new("abba");
        let a = b.mutex("a");
        let c = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(a);
            t.lock(c);
            t.unlock(c);
            t.unlock(a);
        });
        b.thread("T2", |t| {
            t.lock(c);
            t.lock(a);
            t.unlock(a);
            t.unlock(c);
        });
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(10_000));
        assert!(stats.deadlocks > 0, "DPOR must reverse the lock order");
        assert!(stats.first_bug.as_ref().unwrap().is_deadlock());
    }

    #[test]
    fn sleep_sets_reduce_schedules() {
        // A program with enough independence for sleep sets to matter.
        let mut b = ProgramBuilder::new("p");
        let vars: Vec<_> = (0..3).map(|i| b.var(format!("v{i}"), 0)).collect();
        let shared = b.var("s", 0);
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| {
                t.store(v, 1);
                t.load(Reg(0), shared);
                t.store(v, Reg(0));
            });
        }
        let p = b.build();
        let with = Dpor {
            sleep_sets: true,
            dependence: DependenceMode::Regular,
        }
        .explore(&p, &config(100_000));
        let without = Dpor {
            sleep_sets: false,
            dependence: DependenceMode::Regular,
        }
        .explore(&p, &config(100_000));
        // Bug parity holds; states may legitimately be merged by sleep
        // sets (see the Dpor docs), so only the direction is asserted.
        assert!(with.unique_states <= without.unique_states);
        assert!(
            with.schedules <= without.schedules,
            "sleep sets must not increase schedules"
        );
    }

    #[test]
    fn figure1_program_needs_two_schedules_regular_dpor() {
        // The paper's Figure 1: DPOR with the regular HBR needs one
        // schedule per lock order (2 classes), even though both reach the
        // same state.
        let mut b = ProgramBuilder::new("figure1");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        let z = b.var("z", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| {
            t.lock(m);
            t.load(Reg(0), x);
            t.unlock(m);
            t.store(y, Reg(0));
        });
        b.thread("T2", |t| {
            t.store(z, 1);
            t.lock(m);
            t.load(Reg(0), x);
            t.unlock(m);
        });
        let p = b.build();
        let dpor = Dpor::default().explore(&p, &config(10_000));
        assert_eq!(dpor.unique_hbrs, 2, "two lock orders, two HBRs");
        assert_eq!(dpor.unique_lazy_hbrs, 1, "one lazy class (paper §2)");
        assert_eq!(dpor.unique_states, 1);
        assert!(dpor.schedules >= 2);
        dpor.check_inequality().unwrap();
    }

    #[test]
    fn blocked_acquisition_race_is_detected() {
        // Regression: AB-BA locking with NON-commuting critical sections.
        // The T1-first class is reachable only by reversing the lk0
        // acquisition, and the only trace exhibiting that race has T1
        // *blocked* on lk0 (the deadlock leaf). Append-only race detection
        // misses it; the pending-acquisition check must find it.
        let mut b = ProgramBuilder::new("abba-noncommute");
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        let x = b.var("x", 1);
        b.thread("T0", |t| {
            t.lock(l0);
            t.lock(l1);
            t.load(Reg(0), x);
            t.add(Reg(0), Reg(0), 1);
            t.store(x, Reg(0));
            t.unlock(l1);
            t.unlock(l0);
            t.set(Reg(0), 0);
        });
        b.thread("T1", |t| {
            t.lock(l1);
            t.lock(l0);
            t.load(Reg(0), x);
            t.mul(Reg(0), Reg(0), 10);
            t.store(x, Reg(0));
            t.unlock(l0);
            t.unlock(l1);
            t.set(Reg(0), 0);
        });
        let p = b.build();
        let (dpor, dfs) = assert_agrees_with_dfs(&p, 100_000);
        // x ∈ {20, 11} plus the deadlock state.
        assert_eq!(dfs.unique_states, 3);
        assert_eq!(dpor.unique_states, 3);
        assert!(dpor.deadlocks > 0);
    }

    #[test]
    fn race_detection_examines_only_dependence_candidates() {
        // Four threads, each writing its private variable twice. A
        // full-trace race scan would compare every new event against every
        // earlier one — 0+1+…+7 = 28 candidate pairs over the single
        // schedule. The indexed detector only consults the per-variable
        // access lists: one candidate per second write (the thread's own
        // first write, then discarded by the program-order check), four in
        // total. The program is mutex-free, so the blocked-acquisition
        // pass contributes nothing (it is skipped outright).
        let mut b = ProgramBuilder::new("disjoint");
        let vars: Vec<_> = (0..4).map(|i| b.var(format!("v{i}"), 0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| {
                t.store(v, 1);
                t.store(v, 2);
            });
        }
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(10_000));
        assert_eq!(stats.schedules, 1, "independent writes need no reversal");
        assert_eq!(stats.events, 8);
        assert_eq!(
            stats.events_compared, 4,
            "only per-variable candidates may be examined (full scan: 28)"
        );

        // With genuine conflicts the counter must be live.
        let mut b = ProgramBuilder::new("shared");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let stats = Dpor::default().explore(&b.build(), &config(10_000));
        assert!(stats.events_compared > 0);
    }

    #[test]
    fn frame_pool_reuses_bodies_in_steady_state() {
        // Every schedule beyond the first pushes frames whose bodies come
        // off the free list: pool hits grow with the exploration, and the
        // pool never holds more bodies than the deepest stack.
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        for i in 0..3 {
            b.thread(format!("T{i}"), |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0);
            });
        }
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(100_000));
        assert!(stats.schedules > 10);
        // One body is taken per tree *edge* (shared prefixes step once, so
        // edges are fewer than `stats.events`, which re-counts prefixes per
        // schedule); misses happen only while the free list warms up along
        // the first full-depth descent. Each schedule contributes at least
        // its leaf edge plus an unshared suffix, so pool hits must
        // comfortably dominate the schedule count.
        assert!(
            stats.frames_pooled >= 2 * stats.schedules as u64,
            "steady-state frames must be pool hits: {} pooled, {} schedules",
            stats.frames_pooled,
            stats.schedules
        );
    }

    #[test]
    fn schedule_limit_respected() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        for i in 0..4 {
            b.thread(format!("T{i}"), |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(7));
        assert_eq!(stats.schedules, 7);
        assert!(stats.limit_hit);
    }

    #[test]
    fn checkpoint_resume_reaches_identical_stats() {
        use crate::session::{CancelToken, ExploreControl, Observer};
        use std::sync::{Arc, Mutex};

        /// Captures checkpoints and cancels the run after `after` of them —
        /// the in-process stand-in for a crash.
        struct Capture {
            cancel: CancelToken,
            after: usize,
            seen: Mutex<Vec<CheckpointState>>,
        }
        impl Observer for Capture {
            fn on_checkpoint(&self, cp: &CheckpointState) {
                let mut seen = self.seen.lock().unwrap();
                seen.push(cp.clone());
                if seen.len() >= self.after {
                    self.cancel.cancel();
                }
            }
        }

        let mut b = ProgramBuilder::new("deep");
        let x = b.var("x", 0);
        for i in 0..4 {
            b.thread(format!("T{i}"), |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0);
            });
        }
        let p = b.build();

        for sleep in [false, true] {
            let dpor = Dpor {
                sleep_sets: sleep,
                dependence: DependenceMode::Regular,
            };
            let full = dpor.explore(&p, &config(100_000));
            assert!(full.schedules > 40, "program too shallow for the test");

            let cancel = CancelToken::new();
            let capture = Arc::new(Capture {
                cancel: cancel.clone(),
                after: 3,
                seen: Mutex::new(Vec::new()),
            });
            let interrupted = dpor.explore(
                &p,
                &config(100_000)
                    .checkpointing_every(5)
                    .controlled(ExploreControl::new(cancel, None, vec![capture.clone()], 0)),
            );
            assert!(interrupted.cancelled, "capture observer must cancel");
            let cp = Arc::new(capture.seen.lock().unwrap().last().unwrap().clone());
            assert!(cp.stats.schedules < full.schedules);
            cp.validate().unwrap();

            let resumed = dpor.explore(&p, &config(100_000).resuming_from(cp));
            assert_eq!(resumed.schedules, full.schedules, "sleep={sleep}");
            assert_eq!(resumed.events, full.events, "sleep={sleep}");
            assert_eq!(resumed.unique_states, full.unique_states);
            assert_eq!(resumed.unique_hbrs, full.unique_hbrs);
            assert_eq!(resumed.unique_lazy_hbrs, full.unique_lazy_hbrs);
            assert_eq!(resumed.max_depth, full.max_depth);
            assert_eq!(resumed.deadlocks, full.deadlocks);
            assert_eq!(resumed.faulted_schedules, full.faulted_schedules);
            assert_eq!(resumed.sleep_prunes, full.sleep_prunes, "sleep={sleep}");
            assert_eq!(
                resumed.events_compared, full.events_compared,
                "sleep={sleep}"
            );
            // Exact, not approximate: the checkpoint's `pool_free`
            // warm-up makes even the pool-hit count resumable.
            assert_eq!(resumed.frames_pooled, full.frames_pooled, "sleep={sleep}");
            assert!(!resumed.limit_hit && !resumed.cancelled);
        }
    }

    #[test]
    fn checkpointing_disabled_produces_no_callbacks() {
        use crate::session::{CancelToken, ExploreControl, Observer};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct Count(AtomicUsize);
        impl Observer for Count {
            fn on_checkpoint(&self, _: &CheckpointState) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let p = b.build();
        let count = Arc::new(Count(AtomicUsize::new(0)));
        let cfg = config(10_000).controlled(ExploreControl::new(
            CancelToken::new(),
            None,
            vec![count.clone()],
            0,
        ));
        Dpor::default().explore(&p, &cfg);
        assert_eq!(count.0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn empty_program_has_one_schedule() {
        let mut b = ProgramBuilder::new("p");
        b.thread("T", |_| {});
        let p = b.build();
        let stats = Dpor::default().explore(&p, &config(10));
        assert_eq!(stats.schedules, 1);
        assert_eq!(stats.unique_states, 1);
    }
}
