//! Pooled frame checkpoints for snapshot-based exploration.
//!
//! Snapshot-cloning DPOR pays for its O(1) backtracking with two heap
//! clones per step: the child frame's [`Executor`] and [`ClockEngine`].
//! Both have a size that depends only on the program shape, so a frame
//! body retired on unwind is a perfect allocation for the next frame
//! pushed — the [`FramePool`] keeps a free list of retired bodies and
//! *clones into* them ([`Executor::assign_from`],
//! [`ClockEngine::assign_from`]) instead of cloning afresh. In the steady
//! state (pool warmed to the maximum stack depth) a DPOR step performs
//! **zero** frame-body allocations; the pool is shared by the sequential
//! engines and, via `Arc::try_unwrap` reclamation, by the parallel
//! work-stealing engine.

use lazylocks_hbr::ClockEngine;
use lazylocks_runtime::Executor;

/// The heap-backed parts of one exploration stack frame: the machine
/// snapshot and the happens-before clock state *before* the frame's
/// transition.
#[derive(Clone)]
pub(crate) struct FrameBody<'p> {
    /// The executor snapshot (pre-state of the frame).
    pub exec: Executor<'p>,
    /// The clock-engine snapshot (pre-state of the frame).
    pub clocks: ClockEngine,
}

/// A free list of retired [`FrameBody`]s.
///
/// The pool never shrinks and never caps: frames are pushed and popped in
/// stack discipline, so the live + pooled body count is bounded by the
/// maximum exploration depth reached, not by the number of schedules.
pub(crate) struct FramePool<'p> {
    free: Vec<FrameBody<'p>>,
    hits: u64,
}

impl<'p> FramePool<'p> {
    /// An empty pool.
    pub fn new() -> Self {
        FramePool {
            free: Vec::new(),
            hits: 0,
        }
    }

    /// A frame body equal to `(exec, clocks)` — recycled from the free
    /// list when possible (no allocation), cloned afresh otherwise.
    pub fn take_from(&mut self, exec: &Executor<'p>, clocks: &ClockEngine) -> FrameBody<'p> {
        match self.free.pop() {
            Some(mut body) => {
                body.exec.assign_from(exec);
                body.clocks.assign_from(clocks);
                self.hits += 1;
                body
            }
            None => FrameBody {
                exec: exec.clone(),
                clocks: clocks.clone(),
            },
        }
    }

    /// Returns a no-longer-needed body to the free list.
    pub fn retire(&mut self, body: FrameBody<'p>) {
        self.free.push(body);
    }

    /// How many takes were served from the free list (the
    /// [`ExploreStats::frames_pooled`](crate::ExploreStats::frames_pooled)
    /// contribution).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Retired bodies currently on the free list — recorded in a
    /// checkpoint so a resume can [`warm`](FramePool::warm) its cold
    /// pool back to the same length.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Pre-fills the free list with `count` bodies shaped like
    /// `(exec, clocks)` without counting hits. A checkpoint resume uses
    /// this to match the uninterrupted engine's free-list length, so
    /// every later take hits or misses exactly as it would have — the
    /// bodies' contents are irrelevant ([`take_from`](FramePool::take_from)
    /// overwrites them).
    pub fn warm(&mut self, exec: &Executor<'p>, clocks: &ClockEngine, count: usize) {
        for _ in 0..count {
            self.free.push(FrameBody {
                exec: exec.clone(),
                clocks: clocks.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_hbr::HbMode;
    use lazylocks_model::{ProgramBuilder, ThreadId};

    #[test]
    fn pool_recycles_and_counts_hits() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let p = b.build();

        let exec = Executor::new(&p);
        let clocks = ClockEngine::for_program(HbMode::Regular, &p);
        let mut pool = FramePool::new();

        let first = pool.take_from(&exec, &clocks);
        assert_eq!(pool.hits(), 0, "empty pool must clone afresh");

        // Mutate a copy, retire it, and take again: the recycled body must
        // be reset to the requested state.
        let mut advanced = first;
        advanced.exec.step(ThreadId(0));
        pool.retire(advanced);
        let second = pool.take_from(&exec, &clocks);
        assert_eq!(pool.hits(), 1, "retired body must be reused");
        assert_eq!(second.exec.state_fingerprint(), exec.state_fingerprint());
    }
}
