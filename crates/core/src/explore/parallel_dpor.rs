//! Parallel (lazy-)DPOR: DPOR subtrees sharded across a worker pool.
//!
//! The sequential DPOR engines ([`Dpor`](crate::explore::Dpor),
//! [`LazyDpor`](crate::explore::LazyDpor)) walk the reduced schedule tree
//! depth-first; when a frame accumulates several unexplored backtrack
//! choices, the siblings wait for the owning worker's pass. This driver
//! lets idle workers *steal* those siblings: every frame is a
//! reference-counted node whose backtrack/done sets live behind a lock,
//! and a frame with claimable choices left over is published on a shared
//! deque. A worker popping a published frame rebuilds the trace prefix
//! from the frame's parent chain — executor snapshot, clock engine and
//! sleep set travel with the node — claims one choice under the frame's
//! lock, and explores that subtree depth-first with the same
//! [`DporCore`] hot loop the sequential engines use (including the shared
//! [frame pool](crate::explore::frame_pool), reclaimed here via
//! `Arc::try_unwrap` when a popped frame has no other holders).
//!
//! ## Soundness
//!
//! DPOR's race detection adds backtrack points to *ancestor* frames of the
//! node where a race is discovered. In a sharded exploration the ancestor
//! may currently be "owned" by another worker (the victim a subtree was
//! stolen from), so backtrack insertions act as a **pending-backtrack
//! mailbox**: the insertion is merged into the frame's shared backtrack
//! set under the frame's lock, and — because a worker only ever targets
//! frames on its own spine, all of which it unwinds through before going
//! idle — every late-arriving choice is re-examined by at least one
//! worker holding that frame on its stack. Claims (moving a thread from
//! `backtrack − done − sleep` into `done`) are atomic under the same
//! lock, so each `(frame, choice)` pair is explored exactly once. The
//! explored set is therefore the least fixpoint of the same deterministic
//! closure the sequential engine computes — schedule-for-schedule the same
//! tree for the sleep-set-free modes, regardless of worker count or
//! interleaving (pinned by `tests/parallel_dpor.rs` and the fuzz oracle).
//!
//! A stolen subtree's sleep set travels with the stolen frame. With
//! `sleep_sets: true` the *content* of a child sleep set depends on claim
//! order (a sibling claimed concurrently counts as "done"), which is
//! sound for bug finding by the usual sleep-set argument but makes the
//! explored set run-to-run nondeterministic — the parallel sleep mode
//! therefore promises bug parity only, mirroring the sequential caveat.

use crate::config::ExploreConfig;
use crate::explore::dpor::{BacktrackInsert, DependenceMode, DporCore, FrameStack, Stepped};
use crate::explore::frame_pool::FrameBody;
use crate::explore::Explorer;
use crate::stats::{Collector, Continue, ExploreStats};
use lazylocks_hbr::ClockEngine;
use lazylocks_model::{Program, ThreadId, ThreadSet};
use lazylocks_obs::{ids, MetricsShard};
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The work-stealing DPOR explorer — registered as
/// `parallel(reduction=dpor)` / `parallel(reduction=lazy)`.
#[derive(Debug, Clone, Copy)]
pub struct ParallelDpor {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub workers: usize,
    /// Sleep-set refinement (bug-parity only; see the module docs).
    pub sleep_sets: bool,
    /// Dependence notion for race detection.
    pub dependence: DependenceMode,
}

impl Default for ParallelDpor {
    fn default() -> Self {
        ParallelDpor {
            workers: 0,
            sleep_sets: false,
            dependence: DependenceMode::Regular,
        }
    }
}

impl Explorer for ParallelDpor {
    fn name(&self) -> String {
        match (self.dependence, self.sleep_sets) {
            (DependenceMode::Regular, false) => "parallel-dpor".to_string(),
            (DependenceMode::Regular, true) => "parallel-dpor-sleep".to_string(),
            (DependenceMode::LazyVarsOnly, _) => "parallel-lazy-dpor-vars".to_string(),
            (DependenceMode::LazyLockAcquisitions, _) => "parallel-lazy-dpor".to_string(),
        }
    }

    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let start = Instant::now();
        assert!(
            program.thread_count() <= ThreadSet::MAX_THREADS,
            "DPOR supports at most {} threads",
            ThreadSet::MAX_THREADS
        );
        let workers = if self.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.workers
        };

        let mut root_collector = Collector::new(config);
        let root_exec = Executor::new(program);
        if !matches!(root_exec.phase(), ExecPhase::Running) {
            root_collector.record_terminal(program, &root_exec, &[], &[]);
            let mut stats = root_collector.into_stats();
            stats.workers = workers as u32;
            stats.wall_time = start.elapsed();
            return stats;
        }

        let clocks = ClockEngine::for_program(self.dependence.hb_mode(), program);
        let mut backtrack = ThreadSet::new();
        if let Some(t) = root_exec.enabled_iter().next() {
            backtrack.insert(t);
        }
        let root = Arc::new(ParFrame {
            parent: None,
            entry: None,
            body: FrameBody {
                exec: root_exec,
                clocks,
            },
            sleep: ThreadSet::new(),
            sets: Mutex::new(ParSets {
                backtrack,
                done: ThreadSet::new(),
                queued: true,
            }),
        });

        let shared = Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::from([root]),
                active: 0,
            }),
            cv: Condvar::new(),
            budget: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            stolen: AtomicU64::new(0),
            limit: config.schedule_limit,
        };

        config.metrics.shard().set(ids::WORKERS, workers as u64);
        let sleep_sets = self.sleep_sets;
        let dependence = self.dependence;
        let worker_results: Vec<Collector> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let shared = &shared;
                    scope.spawn(move || {
                        worker_loop(shared, program, config, sleep_sets, dependence, w as u32)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        for w in worker_results {
            root_collector.merge(w);
        }
        let mut stats = root_collector.into_stats();
        stats.subtrees_stolen = shared.stolen.load(Ordering::Relaxed);
        stats.workers = workers as u32;
        if shared.budget.load(Ordering::Relaxed) >= config.schedule_limit {
            stats.limit_hit = true;
        }
        stats.wall_time = start.elapsed();
        stats
    }
}

/// One shared frame of the DPOR tree: the pre-state snapshot plus the
/// lock-guarded thread sets.
struct ParFrame<'p> {
    /// The frame this one was stepped from (`None` for the root). The
    /// chain of parents is the trace-prefix spine a thief rebuilds.
    parent: Option<Arc<ParFrame<'p>>>,
    /// `(thread, event)` of the step that entered this frame (`None` for
    /// the root) — enough to replay the schedule/trace prefix.
    entry: Option<(ThreadId, Option<Event>)>,
    /// Pre-state executor + clock engine. Immutable after creation, so
    /// thieves read it without locking.
    body: FrameBody<'p>,
    /// The sleep set the frame was created with (fixed at creation; it
    /// travels with every subtree stolen from here).
    sleep: ThreadSet,
    /// The mutable sets — the per-frame "pending-backtrack mailbox".
    sets: Mutex<ParSets>,
}

struct ParSets {
    backtrack: ThreadSet,
    done: ThreadSet,
    /// `true` while the frame sits on the shared deque (dedupes
    /// publications; cleared by the popping worker).
    queued: bool,
}

struct QueueState<'p> {
    queue: VecDeque<Arc<ParFrame<'p>>>,
    /// Workers currently processing a popped item. Quiescence — an empty
    /// queue with no active worker — is the termination condition: every
    /// claimable choice is either on the deque or on an active worker's
    /// spine (see the module docs).
    active: usize,
}

struct Shared<'p> {
    state: Mutex<QueueState<'p>>,
    cv: Condvar,
    /// Global schedule budget, claimed before each terminal is recorded.
    budget: AtomicUsize,
    stop: AtomicBool,
    /// Productive deque pops: pops whose walk claimed at least one
    /// choice (counted at the first claim, not at pop time).
    stolen: AtomicU64,
    limit: usize,
}

impl<'p> Shared<'p> {
    fn enqueue(&self, node: Arc<ParFrame<'p>>) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.queue.push_back(node);
        drop(st);
        self.cv.notify_one();
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.cv.notify_all();
    }
}

/// One worker's view of its current spine: `Arc` frames plus the
/// trace/schedule marks to restore on unwind.
struct ParEntry<'p> {
    node: Arc<ParFrame<'p>>,
    trace_mark: usize,
    sched_mark: usize,
}

struct ParFrames<'p, 'a> {
    stack: Vec<ParEntry<'p>>,
    shared: &'a Shared<'p>,
    /// This worker's metrics shard (publish/mailbox counters).
    shard: MetricsShard,
}

impl<'p> ParFrames<'p, '_> {
    /// Claims the next unexplored choice of the top frame (atomically
    /// moving it into `done`), publishing the frame for stealing when
    /// claimable siblings remain.
    fn claim_top(&self) -> Option<ThreadId> {
        let top = self.stack.last()?;
        let node = &top.node;
        let mut publish = false;
        let p = {
            let mut s = node.sets.lock().expect("frame poisoned");
            let avail = s.backtrack - s.done - node.sleep;
            let p = avail.first()?;
            s.done.insert(p);
            if !(s.backtrack - s.done - node.sleep).is_empty() && !s.queued {
                s.queued = true;
                publish = true;
            }
            p
        };
        if publish {
            self.shard.inc(ids::FRAMES_PUBLISHED);
            self.shared.enqueue(node.clone());
        }
        Some(p)
    }
}

impl<'p> FrameStack<'p> for ParFrames<'p, '_> {
    fn depth(&self) -> usize {
        self.stack.len()
    }

    fn exec_at(&self, d: usize) -> &Executor<'p> {
        &self.stack[d].node.body.exec
    }

    fn top_body(&self) -> &FrameBody<'p> {
        &self.stack.last().expect("empty stack").node.body
    }

    fn top_done_sleep(&self) -> (ThreadSet, ThreadSet) {
        let node = &self.stack.last().expect("empty stack").node;
        let done = node.sets.lock().expect("frame poisoned").done;
        (done, node.sleep)
    }

    fn insert_backtrack(&mut self, d: usize, ins: BacktrackInsert) -> u64 {
        let node = &self.stack[d].node;
        let mut publish = false;
        let inserted;
        {
            let mut s = node.sets.lock().expect("frame poisoned");
            match ins {
                BacktrackInsert::Thread(t) => {
                    inserted = s.backtrack.insert(t) as u64;
                }
                BacktrackInsert::WakeAll => {
                    let added = node.body.exec.enabled_set() - s.backtrack;
                    s.backtrack |= added;
                    inserted = added.len() as u64;
                }
            }
            // A choice landing in a frame another worker may already have
            // drained: republish so it cannot go idle unexplored. (Our own
            // unwind re-checks the frame too; the flag dedupes.)
            if !(s.backtrack - s.done - node.sleep).is_empty() && !s.queued {
                s.queued = true;
                publish = true;
            }
        }
        if publish {
            self.shard.inc(ids::BACKTRACK_MAILBOX);
            self.shared.enqueue(node.clone());
        }
        inserted
    }

    fn push_frame(
        &mut self,
        body: FrameBody<'p>,
        backtrack: ThreadSet,
        sleep: ThreadSet,
        entry: (ThreadId, Option<Event>),
        trace_mark: usize,
        sched_mark: usize,
    ) {
        let parent = self.stack.last().map(|e| e.node.clone());
        self.stack.push(ParEntry {
            node: Arc::new(ParFrame {
                parent,
                entry: Some(entry),
                body,
                sleep,
                sets: Mutex::new(ParSets {
                    backtrack,
                    done: ThreadSet::new(),
                    queued: false,
                }),
            }),
            trace_mark,
            sched_mark,
        });
    }
}

fn worker_loop<'p>(
    shared: &Shared<'p>,
    program: &'p Program,
    config: &ExploreConfig,
    sleep_sets: bool,
    dependence: DependenceMode,
    worker: u32,
) -> Collector {
    let mut collector = Collector::new_for_worker(config, worker);
    let shard = collector.shard().clone();
    // Per-worker site slab, merged into the registry snapshot like the
    // metrics shards. Reschedule attribution stays off: the parallel
    // claim order is timing-dependent, so only the order-independent
    // counters (races, backtracks, sleep blocks) are recorded here.
    let mut core = DporCore::new(
        program,
        sleep_sets,
        dependence,
        shard.clone(),
        config.profile.sites(&crate::stats::profile_dims(program)),
    );
    let mut frames = ParFrames {
        stack: Vec::new(),
        shared,
        shard: shard.clone(),
    };
    loop {
        let node = {
            let mut st = shared.state.lock().expect("queue poisoned");
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    break None;
                }
                if let Some(n) = st.queue.pop_front() {
                    st.active += 1;
                    break Some(n);
                }
                if st.active == 0 {
                    break None;
                }
                // The timeout is belt-and-braces against a lost wakeup;
                // stop/cancel arrive via notify from active workers.
                let wait = shard.timer_start(ids::PHASE_STEAL_WAIT);
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("queue poisoned");
                shard.timer_stop(ids::PHASE_STEAL_WAIT, wait);
                st = guard;
            }
        };
        let Some(node) = node else {
            break;
        };
        process(node, shared, &mut core, &mut collector, &mut frames);
        // A stop mid-subtree leaves spine references behind; release them
        // so sibling workers can reclaim the frames.
        frames.stack.clear();
        let mut st = shared.state.lock().expect("queue poisoned");
        st.active -= 1;
        if st.active == 0 && st.queue.is_empty() {
            drop(st);
            shared.cv.notify_all();
        }
    }
    core.flush_counters(&mut collector);
    collector
}

/// Explores everything reachable from a popped frame: rebuilds the trace
/// prefix off the parent chain, then runs the sequential pick/step/unwind
/// loop over the shared spine — claims are atomic, so concurrent workers
/// partition the choices between them.
fn process<'p>(
    node: Arc<ParFrame<'p>>,
    shared: &Shared<'p>,
    core: &mut DporCore<'p>,
    collector: &mut Collector,
    frames: &mut ParFrames<'p, '_>,
) {
    {
        // One lock scope for both: clearing `queued` and the drained
        // check must not be separated, or a concurrent insert in the gap
        // would re-enqueue a node this worker is about to explore anyway.
        let mut s = node.sets.lock().expect("frame poisoned");
        s.queued = false;
        if (s.backtrack - s.done - node.sleep).is_empty() {
            return; // drained while it sat on the deque
        }
    }

    // --- rebuild the spine and its trace/schedule prefix ---
    let mut chain = Vec::new();
    let mut cur = Some(node);
    while let Some(n) = cur {
        cur = n.parent.clone();
        chain.push(n);
    }
    chain.reverse();
    core.reset_context();
    frames.stack.clear();
    for n in chain {
        let (trace_mark, sched_mark) = (core.trace.len(), core.schedule.len());
        if let Some((choice, event)) = n.entry {
            if let Some(e) = event {
                let i = core.trace.len();
                core.index_event(i, &e);
                core.trace.push(e);
                // The event was executed from this node's parent — the
                // current top of the rebuilt stack (fault entries carry no
                // event, so frame depth can run ahead of trace position).
                core.trace_depths.push(frames.stack.len() - 1);
            }
            core.schedule.push(choice);
        }
        frames.stack.push(ParEntry {
            node: n,
            trace_mark,
            sched_mark,
        });
    }

    // --- depth-first exploration over the shared spine ---
    let run_cap = collector.config().max_run_length;
    let mut claimed_any = false;
    while !frames.stack.is_empty() {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if collector.cancel_requested() {
            shared.request_stop();
            return;
        }
        let Some(p) = frames.claim_top() else {
            // Frame exhausted (for now): unwind. The body is recycled
            // into the pool only when no thief still references the frame.
            let entry = frames.stack.pop().unwrap();
            core.truncate_to(entry.trace_mark, entry.sched_mark);
            if let Ok(frame) = Arc::try_unwrap(entry.node) {
                core.pool.retire(frame.body);
            }
            continue;
        };
        if !claimed_any {
            // Counted on the first *actual* claim, not at pop time: a
            // spine owner can drain the node between our drained check
            // and the first claim, and such pops stole no work.
            claimed_any = true;
            shared.stolen.fetch_add(1, Ordering::Relaxed);
            core.shard.inc(ids::SUBTREES_STOLEN);
        }
        match core.take_step(frames, p, run_cap) {
            Stepped::Pushed => {}
            Stepped::Leaf {
                body,
                truncated,
                pushed_event,
            } => {
                let cont = if truncated {
                    collector.record_truncated();
                    Continue::Yes
                } else {
                    let claimed = shared.budget.fetch_add(1, Ordering::Relaxed);
                    if claimed >= shared.limit {
                        Continue::Stop
                    } else {
                        collector.record_terminal(
                            core.program,
                            &body.exec,
                            &core.trace,
                            &core.schedule,
                        )
                    }
                };
                core.finish_leaf(body, pushed_event);
                if cont == Continue::Stop {
                    shared.request_stop();
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::dpor::Dpor;
    use crate::explore::lazy_dpor::LazyDpor;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn counter_program(threads: usize) -> Program {
        let mut b = ProgramBuilder::new("counters");
        let x = b.var("x", 0);
        for i in 0..threads {
            b.thread(format!("T{i}"), |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        b.build()
    }

    fn abba() -> Program {
        let mut b = ProgramBuilder::new("abba");
        let l1 = b.mutex("a");
        let l2 = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(l1);
            t.lock(l2);
            t.unlock(l2);
            t.unlock(l1);
        });
        b.thread("T2", |t| {
            t.lock(l2);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l2);
        });
        b.build()
    }

    #[test]
    fn matches_sequential_dpor_exactly() {
        let p = counter_program(4);
        let cfg = ExploreConfig::with_limit(1_000_000);
        let seq = Dpor::default().explore(&p, &cfg);
        assert!(!seq.limit_hit);
        for workers in [1, 2, 4] {
            let par = ParallelDpor {
                workers,
                ..ParallelDpor::default()
            }
            .explore(&p, &cfg);
            assert_eq!(par.schedules, seq.schedules, "workers={workers}");
            assert_eq!(par.events, seq.events, "workers={workers}");
            assert_eq!(par.unique_states, seq.unique_states);
            assert_eq!(par.unique_hbrs, seq.unique_hbrs);
            assert_eq!(par.unique_lazy_hbrs, seq.unique_lazy_hbrs);
            assert_eq!(par.events_compared, seq.events_compared);
            assert_eq!(par.workers, workers as u32);
            assert!(par.subtrees_stolen >= 1);
            par.check_inequality().unwrap();
        }
    }

    #[test]
    fn lazy_reduction_matches_sequential_lazy_dpor() {
        let p = abba();
        let cfg = ExploreConfig::with_limit(100_000);
        let seq = LazyDpor::default().explore(&p, &cfg);
        for workers in [1, 3] {
            let par = ParallelDpor {
                workers,
                dependence: DependenceMode::LazyLockAcquisitions,
                ..ParallelDpor::default()
            }
            .explore(&p, &cfg);
            assert_eq!(par.schedules, seq.schedules, "workers={workers}");
            assert_eq!(par.unique_states, seq.unique_states);
            assert_eq!(par.deadlocks, seq.deadlocks);
            assert!(par.deadlocks > 0, "the lock-order reversal must be found");
        }
    }

    #[test]
    fn budget_is_respected_globally() {
        let p = counter_program(4);
        let par = ParallelDpor {
            workers: 4,
            ..ParallelDpor::default()
        }
        .explore(&p, &ExploreConfig::with_limit(5));
        assert!(par.schedules <= 5);
        assert!(par.limit_hit);
    }

    #[test]
    fn stop_on_bug_stops_all_workers() {
        let p = abba();
        let par = ParallelDpor {
            workers: 4,
            ..ParallelDpor::default()
        }
        .explore(&p, &ExploreConfig::with_limit(100_000).stopping_on_bug());
        assert!(par.found_bug());
        assert!(par.first_bug.as_ref().unwrap().is_deadlock());
    }

    #[test]
    fn tiny_programs_terminate_without_work() {
        let mut b = ProgramBuilder::new("tiny");
        b.thread("T", |_| {});
        let p = b.build();
        let stats = ParallelDpor {
            workers: 8,
            ..ParallelDpor::default()
        }
        .explore(&p, &ExploreConfig::with_limit(10));
        assert_eq!(stats.schedules, 1);
        assert_eq!(stats.unique_states, 1);
        assert_eq!(stats.workers, 8);
    }

    #[test]
    fn sleep_mode_keeps_bug_parity() {
        let p = abba();
        let cfg = ExploreConfig::with_limit(100_000);
        let par = ParallelDpor {
            workers: 2,
            sleep_sets: true,
            ..ParallelDpor::default()
        }
        .explore(&p, &cfg);
        assert!(par.deadlocks > 0, "sleep mode must keep deadlock parity");
    }
}
