//! Naive depth-first enumeration of every schedule.
//!
//! The baseline every reduction is measured against: visits the entire
//! schedule tree (bounded by the budget), optionally restricted by a
//! CHESS-style preemption bound. Exhaustive and therefore exact — on small
//! programs it defines the ground-truth sets of terminal states and
//! happens-before classes that the partial-order techniques must preserve.

use crate::config::ExploreConfig;
use crate::explore::Explorer;
use crate::stats::{Collector, Continue, ExploreStats};
use lazylocks_model::{Program, ThreadId};
use lazylocks_obs::ids;
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::time::Instant;

/// Exhaustive DFS over all schedules.
#[derive(Debug, Clone, Copy, Default)]
pub struct DfsEnumeration;

impl Explorer for DfsEnumeration {
    fn name(&self) -> String {
        "dfs".to_string()
    }

    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let start = Instant::now();
        let mut ctx = DfsCtx {
            program,
            collector: Collector::new(config),
            trace: Vec::new(),
            schedule: Vec::new(),
        };
        let root = Executor::new(program);
        ctx.visit(&root, None, 0);
        let mut stats = ctx.collector.into_stats();
        stats.wall_time = start.elapsed();
        stats
    }
}

pub(crate) struct DfsCtx<'p> {
    pub(crate) program: &'p Program,
    pub(crate) collector: Collector,
    pub(crate) trace: Vec<Event>,
    pub(crate) schedule: Vec<ThreadId>,
}

impl<'p> DfsCtx<'p> {
    /// Explores the subtree rooted at `exec`. `last` is the thread that
    /// took the previous step; `preemptions` counts preemptive switches on
    /// the path so far.
    pub(crate) fn visit(
        &mut self,
        exec: &Executor<'p>,
        last: Option<ThreadId>,
        preemptions: u32,
    ) -> Continue {
        if self.collector.cancel_requested() {
            return Continue::Stop;
        }
        if !matches!(exec.phase(), ExecPhase::Running) {
            return self
                .collector
                .record_terminal(self.program, exec, &self.trace, &self.schedule);
        }
        if self.trace.len() >= self.collector.config().max_run_length {
            self.collector.record_truncated();
            return Continue::Yes;
        }

        for t in exec.enabled_iter() {
            // A preemption switches away from a thread that could have
            // continued.
            let preempt = last.is_some_and(|l| l != t && exec.is_enabled(l));
            let p = preemptions + u32::from(preempt);
            if let Some(bound) = self.collector.config().preemption_bound {
                if p > bound {
                    self.collector.stats.bound_prunes += 1;
                    continue;
                }
            }
            let mut child = exec.clone();
            let step_timer = self.collector.shard().timer_start(ids::PHASE_EXECUTOR_STEP);
            let out = child.step(t);
            self.collector
                .shard()
                .timer_stop(ids::PHASE_EXECUTOR_STEP, step_timer);
            self.schedule.push(t);
            let pushed_event = out.event.is_some();
            if let Some(e) = out.event {
                self.trace.push(e);
            }
            let cont = self.visit(&child, Some(t), p);
            if pushed_event {
                self.trace.pop();
            }
            self.schedule.pop();
            if cont == Continue::Stop {
                return Continue::Stop;
            }
        }
        Continue::Yes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn config(limit: usize) -> ExploreConfig {
        ExploreConfig::with_limit(limit)
    }

    #[test]
    fn counts_all_interleavings_of_independent_writes() {
        // 2 threads × 1 event each → 2 schedules; every terminal state
        // equal, one lazy HBR, one regular HBR.
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(y, 1));
        let p = b.build();
        let stats = DfsEnumeration.explore(&p, &config(1000));
        assert_eq!(stats.schedules, 2);
        assert_eq!(stats.unique_states, 1);
        assert_eq!(stats.unique_hbrs, 1);
        assert_eq!(stats.unique_lazy_hbrs, 1);
        assert!(!stats.limit_hit);
        stats.check_inequality().unwrap();
    }

    #[test]
    fn interleaving_count_matches_formula() {
        // Two threads with 2 independent events each: C(4,2) = 6 schedules.
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T1", |t| {
            t.store(x, 1);
            t.store(x, 2);
        });
        b.thread("T2", |t| {
            t.store(y, 1);
            t.store(y, 2);
        });
        let p = b.build();
        let stats = DfsEnumeration.explore(&p, &config(1000));
        assert_eq!(stats.schedules, 6);
        assert_eq!(stats.unique_states, 1);
        stats.check_inequality().unwrap();
    }

    #[test]
    fn racy_counter_loses_updates() {
        // Two unsynchronised increments: load/load/store/store loses one.
        let mut b = ProgramBuilder::new("racy");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let stats = DfsEnumeration.explore(&p, &config(10_000));
        assert_eq!(stats.schedules, 6, "C(4,2) interleavings of 2+2 events");
        // Final x ∈ {1, 2}: the lost-update bug shows as two states.
        assert_eq!(stats.unique_states, 2);
        stats.check_inequality().unwrap();
    }

    #[test]
    fn schedule_limit_stops_exploration() {
        let mut b = ProgramBuilder::new("p");
        let vars: Vec<_> = (0..5).map(|i| b.var(format!("v{i}"), 0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| {
                t.store(v, 1);
                t.store(v, 2);
            });
        }
        let p = b.build();
        let stats = DfsEnumeration.explore(&p, &config(50));
        assert_eq!(stats.schedules, 50);
        assert!(stats.limit_hit);
    }

    #[test]
    fn deadlock_counted_and_reported() {
        let mut b = ProgramBuilder::new("abba");
        let a = b.mutex("a");
        let c = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(a);
            t.lock(c);
            t.unlock(c);
            t.unlock(a);
        });
        b.thread("T2", |t| {
            t.lock(c);
            t.lock(a);
            t.unlock(a);
            t.unlock(c);
        });
        let p = b.build();
        let stats = DfsEnumeration.explore(&p, &config(10_000));
        assert!(stats.deadlocks > 0);
        let bug = stats.first_bug.as_ref().expect("deadlock bug reported");
        assert!(bug.is_deadlock());
        // The recorded schedule reproduces the deadlock.
        let rerun = bug.reproduce(&p).unwrap();
        assert!(rerun.status.is_deadlock());
    }

    #[test]
    fn stop_on_bug_halts_early() {
        let mut b = ProgramBuilder::new("buggy");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| {
            t.load(Reg(0), x);
            t.assert_true(Reg(0), "x must be set"); // fails if T2 runs first
        });
        let p = b.build();
        let mut cfg = config(10_000);
        cfg.stop_on_bug = true;
        let stats = DfsEnumeration.explore(&p, &cfg);
        assert!(stats.found_bug());
        assert!(stats.schedules < 3, "stops at the first buggy schedule");
    }

    #[test]
    fn preemption_bound_zero_explores_non_preemptive_schedules() {
        // With bound 0 each thread runs to completion once scheduled:
        // the number of schedules equals the number of thread orderings
        // that are feasible without preemption (2 here).
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let stats = DfsEnumeration.explore(&p, &config(10_000).preemptions(0));
        assert_eq!(stats.schedules, 2);
        assert!(stats.bound_prunes > 0);
        // Non-preemptive schedules see only the correct final value.
        assert_eq!(stats.unique_states, 1);
    }

    #[test]
    fn preemption_bound_one_finds_the_lost_update() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        let p = b.build();
        let stats = DfsEnumeration.explore(&p, &config(10_000).preemptions(1));
        assert!(stats.schedules > 2);
        assert_eq!(stats.unique_states, 2, "one preemption exposes the race");
    }

    #[test]
    fn run_length_cap_truncates() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T", |t| {
            t.repeat(50, |t, i| t.store(x, i as i64));
        });
        let p = b.build();
        let mut cfg = config(10);
        cfg.max_run_length = 5;
        let stats = DfsEnumeration.explore(&p, &cfg);
        assert_eq!(stats.schedules, 0);
        assert_eq!(stats.truncated_runs, 1);
    }

    #[test]
    fn blocked_lock_branches_are_not_schedulable() {
        // Two lock/unlock pairs: only the two serializations exist.
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex("m");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.with_lock(m, |t| t.store(x, 1)));
        b.thread("T2", |t| t.with_lock(m, |t| t.store(x, 2)));
        let p = b.build();
        let stats = DfsEnumeration.explore(&p, &config(10_000));
        // Schedules: choose the lock order; inside a critical section the
        // other thread is blocked, so 2 × 1 = 2 × (interleavings of the
        // trailing unlock-free suffix) — T2 can only start after unlock.
        // Trace: l1 w1 u1 l2 w2 u2 and the swap: exactly 2 schedules.
        assert_eq!(stats.schedules, 2);
        assert_eq!(stats.unique_hbrs, 2);
        assert_eq!(
            stats.unique_lazy_hbrs, 2,
            "different writes → different states"
        );
        assert_eq!(stats.unique_states, 2);
        stats.check_inequality().unwrap();
    }
}
