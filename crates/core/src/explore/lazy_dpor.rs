//! Prototype **lazy DPOR** — the paper's §4 future work.
//!
//! The paper observes that the lazy HBR "cannot be immediately used in
//! place of the regular HBR during DPOR" because not every linearization of
//! a lazy HBR is feasible, and leaves a lazy DPOR algorithm to future work.
//! This module provides an executable prototype to measure what such an
//! algorithm could gain, in two styles:
//!
//! * [`LazyDporStyle::LockAcquisitions`] (default): race detection uses
//!   lazy (variable-only) dependence **plus** lock-acquisition conflicts
//!   (`lock`/`lock` on the same mutex). Reversing lock acquisitions keeps
//!   deadlock detection and covers conflicting critical sections, while the
//!   unlock-induced serialisation chains — exactly the edges the lazy HBR
//!   deletes — generate no backtracking.
//! * [`LazyDporStyle::VarsOnly`]: pure lazy dependence. Maximally
//!   aggressive; misses deadlocks by construction and can miss states.
//!
//! **Caveat (by design):** neither style carries a completeness proof —
//! that is the open problem the paper states. The integration test suite
//! measures empirically how often each style loses terminal states against
//! exhaustive enumeration, and the ablation benchmark
//! (`lazy_dpor_ablation`) reports the schedule reduction it buys.

use crate::config::ExploreConfig;
use crate::explore::dpor::{DependenceMode, Dpor};
use crate::explore::Explorer;
use crate::stats::ExploreStats;
use lazylocks_model::Program;

/// Aggressiveness of the lazy-DPOR prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LazyDporStyle {
    /// Lazy dependence + lock-acquisition conflicts (default).
    #[default]
    LockAcquisitions,
    /// Pure lazy dependence (measurement only).
    VarsOnly,
}

/// The lazy DPOR explorer.
#[derive(Debug, Clone, Copy, Default)]
pub struct LazyDpor {
    /// How aggressive the dependence relaxation is.
    pub style: LazyDporStyle,
}

impl Explorer for LazyDpor {
    fn name(&self) -> String {
        match self.style {
            LazyDporStyle::LockAcquisitions => "lazy-dpor".to_string(),
            LazyDporStyle::VarsOnly => "lazy-dpor-vars".to_string(),
        }
    }

    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let dependence = match self.style {
            LazyDporStyle::LockAcquisitions => DependenceMode::LazyLockAcquisitions,
            LazyDporStyle::VarsOnly => DependenceMode::LazyVarsOnly,
        };
        // Sleep sets are deliberately disabled: their classic correctness
        // argument leans on the backtrack sets covering every reversible
        // race, which the lazily-thinned dependence no longer guarantees
        // (a lazily-added backtrack thread can be asleep and never get
        // scheduled). Making sleep sets and lazy backtracking compose is
        // part of the open problem the paper's §4 states.
        Dpor {
            sleep_sets: false,
            dependence,
        }
        .explore(program, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::dfs::DfsEnumeration;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn config(limit: usize) -> ExploreConfig {
        ExploreConfig::with_limit(limit)
    }

    /// One coarse lock over disjoint data: the pattern lazy DPOR targets.
    fn coarse_disjoint(n: usize) -> Program {
        let mut b = ProgramBuilder::new("coarse-disjoint");
        let m = b.mutex("m");
        let vars: Vec<_> = (0..n).map(|i| b.var(format!("v{i}"), 0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| {
                t.with_lock(m, |t| {
                    t.load(Reg(0), v);
                    t.add(Reg(0), Reg(0), 1);
                    t.store(v, Reg(0));
                });
            });
        }
        b.build()
    }

    #[test]
    fn lazy_dpor_beats_regular_dpor_on_disjoint_critical_sections() {
        let p = coarse_disjoint(3);
        let regular = Dpor::default().explore(&p, &config(100_000));
        let lazy = LazyDpor::default().explore(&p, &config(100_000));
        assert!(!regular.limit_hit && !lazy.limit_hit);
        // Same single terminal state...
        assert_eq!(regular.unique_states, 1);
        assert_eq!(lazy.unique_states, 1);
        // ...with strictly fewer schedules for the lazy prototype.
        assert!(
            lazy.schedules < regular.schedules,
            "lazy {} vs regular {}",
            lazy.schedules,
            regular.schedules
        );
    }

    #[test]
    fn lock_acquisition_style_still_finds_deadlocks() {
        let mut b = ProgramBuilder::new("abba");
        let l1 = b.mutex("a");
        let l2 = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(l1);
            t.lock(l2);
            t.unlock(l2);
            t.unlock(l1);
        });
        b.thread("T2", |t| {
            t.lock(l2);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l2);
        });
        let p = b.build();
        let stats = LazyDpor::default().explore(&p, &config(10_000));
        assert!(
            stats.deadlocks > 0,
            "lock-acquisition conflicts must reverse the lock order"
        );
    }

    #[test]
    fn lock_acquisition_style_preserves_states_on_conflicting_sections() {
        // Critical sections that actually conflict on data: the var
        // conflicts plus lock-lock reversals must still reach both final
        // states.
        let mut b = ProgramBuilder::new("conflict");
        let m = b.mutex("m");
        let x = b.var("x", 0);
        b.thread("T1", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
            })
        });
        b.thread("T2", |t| {
            t.with_lock(m, |t| {
                t.load(Reg(0), x);
                t.mul(Reg(0), Reg(0), 10);
                t.store(x, Reg(0));
            })
        });
        let p = b.build();
        let dfs = DfsEnumeration.explore(&p, &config(100_000));
        let lazy = LazyDpor::default().explore(&p, &config(100_000));
        assert_eq!(lazy.unique_states, dfs.unique_states);
    }

    #[test]
    fn vars_only_style_misses_deadlocks_as_documented() {
        let mut b = ProgramBuilder::new("abba");
        let l1 = b.mutex("a");
        let l2 = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(l1);
            t.lock(l2);
            t.unlock(l2);
            t.unlock(l1);
        });
        b.thread("T2", |t| {
            t.lock(l2);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l2);
        });
        let p = b.build();
        let stats = LazyDpor {
            style: LazyDporStyle::VarsOnly,
        }
        .explore(&p, &config(10_000));
        // The pure-lazy prototype explores a single schedule and never
        // reverses the lock acquisition: the documented unsoundness.
        assert_eq!(stats.deadlocks, 0);
        assert_eq!(stats.schedules, 1);
    }

    #[test]
    fn schedule_counts_ordered_lazy_leq_regular() {
        for n in 2..=4 {
            let p = coarse_disjoint(n);
            let regular = Dpor::default().explore(&p, &config(100_000));
            let lazy = LazyDpor::default().explore(&p, &config(100_000));
            let vars_only = LazyDpor {
                style: LazyDporStyle::VarsOnly,
            }
            .explore(&p, &config(100_000));
            assert!(vars_only.schedules <= lazy.schedules);
            assert!(lazy.schedules <= regular.schedules);
        }
    }
}
