//! Parallel depth-first enumeration across OS threads.
//!
//! The schedule tree is split near the root: a breadth-first expansion
//! produces a frontier of independent subtree roots (executor snapshots
//! plus their trace prefixes), which a mutex-guarded work queue feeds to
//! worker threads. Each worker explores its subtrees depth-first with a
//! local collector; a shared atomic counter enforces the global schedule
//! budget; per-worker results are merged exactly (set unions) at the end.
//!
//! Parallel enumeration has no reduction — it is the scale-out version of
//! [`DfsEnumeration`](crate::explore::DfsEnumeration) for hunting bugs in
//! larger schedule spaces, and demonstrates that the substrate (executor
//! snapshots, clock engines, collectors) is `Send`-clean.

use crate::config::ExploreConfig;
use crate::explore::Explorer;
use crate::stats::{Collector, Continue, ExploreStats};
use lazylocks_model::{Program, ThreadId};
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The parallel DFS explorer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelDfs {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub workers: usize,
}

/// A subtree root handed to a worker.
struct WorkItem<'p> {
    exec: Executor<'p>,
    trace: Vec<Event>,
    schedule: Vec<ThreadId>,
    last: Option<ThreadId>,
    preemptions: u32,
}

impl Explorer for ParallelDfs {
    fn name(&self) -> String {
        "parallel-dfs".to_string()
    }

    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let start = Instant::now();
        let workers = if self.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.workers
        };

        let mut root_collector = Collector::new(config);
        let budget = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);

        // --- frontier expansion (sequential BFS near the root) ---
        let mut frontier: VecDeque<WorkItem> = VecDeque::new();
        frontier.push_back(WorkItem {
            exec: Executor::new(program),
            trace: Vec::new(),
            schedule: Vec::new(),
            last: None,
            preemptions: 0,
        });
        let target = workers * 4;
        while frontier.len() < target {
            if root_collector.cancel_requested() {
                break;
            }
            let Some(item) = frontier.pop_front() else {
                break;
            };
            if !matches!(item.exec.phase(), ExecPhase::Running) {
                // Terminal during expansion: record directly.
                if record_with_budget(
                    &mut root_collector,
                    program,
                    &item.exec,
                    &item.trace,
                    &item.schedule,
                    &budget,
                    config,
                ) == Continue::Stop
                {
                    stop.store(true, Ordering::Relaxed);
                }
                continue;
            }
            if item.trace.len() >= config.max_run_length {
                root_collector.record_truncated();
                continue;
            }
            let mut expanded = false;
            for t in item.exec.enabled_iter() {
                let preempt = item.last.is_some_and(|l| l != t && item.exec.is_enabled(l));
                let p = item.preemptions + u32::from(preempt);
                if let Some(bound) = config.preemption_bound {
                    if p > bound {
                        root_collector.stats.bound_prunes += 1;
                        continue;
                    }
                }
                let mut child = item.exec.clone();
                let out = child.step(t);
                let mut trace = item.trace.clone();
                let mut schedule = item.schedule.clone();
                schedule.push(t);
                if let Some(e) = out.event {
                    trace.push(e);
                }
                frontier.push_back(WorkItem {
                    exec: child,
                    trace,
                    schedule,
                    last: Some(t),
                    preemptions: p,
                });
                expanded = true;
            }
            if !expanded {
                // Every choice was pruned by the bound; nothing to explore.
                continue;
            }
            if stop.load(Ordering::Relaxed) {
                break;
            }
        }

        // --- parallel phase ---
        let queue: Mutex<VecDeque<WorkItem>> = Mutex::new(frontier);

        let worker_results: Vec<Collector> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    let budget = &budget;
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut collector = Collector::new(config);
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let item = queue.lock().expect("queue poisoned").pop_front();
                            let Some(item) = item else {
                                break;
                            };
                            let mut ctx = WorkerCtx {
                                program,
                                collector: &mut collector,
                                trace: item.trace,
                                schedule: item.schedule,
                                budget,
                                stop,
                                config,
                            };
                            ctx.visit(&item.exec, item.last, item.preemptions);
                        }
                        collector
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        for w in worker_results {
            root_collector.merge(w);
        }
        let mut stats = root_collector.into_stats();
        if budget.load(Ordering::Relaxed) >= config.schedule_limit {
            stats.limit_hit = true;
        }
        stats.wall_time = start.elapsed();
        stats
    }
}

/// Claims one unit of the global schedule budget, then records the
/// terminal locally. Returns `Stop` when the budget is exhausted or the
/// collector says so (stop-on-bug).
fn record_with_budget(
    collector: &mut Collector,
    program: &Program,
    exec: &Executor,
    trace: &[Event],
    schedule: &[ThreadId],
    budget: &AtomicUsize,
    config: &ExploreConfig,
) -> Continue {
    let claimed = budget.fetch_add(1, Ordering::Relaxed);
    if claimed >= config.schedule_limit {
        return Continue::Stop;
    }
    collector.record_terminal(program, exec, trace, schedule)
}

struct WorkerCtx<'a, 'p> {
    program: &'p Program,
    collector: &'a mut Collector,
    trace: Vec<Event>,
    schedule: Vec<ThreadId>,
    budget: &'a AtomicUsize,
    stop: &'a AtomicBool,
    config: &'a ExploreConfig,
}

impl<'p> WorkerCtx<'_, 'p> {
    fn visit(&mut self, exec: &Executor<'p>, last: Option<ThreadId>, preemptions: u32) -> Continue {
        if self.stop.load(Ordering::Relaxed) {
            return Continue::Stop;
        }
        if self.collector.cancel_requested() {
            self.stop.store(true, Ordering::Relaxed);
            return Continue::Stop;
        }
        if !matches!(exec.phase(), ExecPhase::Running) {
            let cont = record_with_budget(
                self.collector,
                self.program,
                exec,
                &self.trace,
                &self.schedule,
                self.budget,
                self.config,
            );
            if cont == Continue::Stop {
                self.stop.store(true, Ordering::Relaxed);
            }
            return cont;
        }
        if self.trace.len() >= self.config.max_run_length {
            self.collector.record_truncated();
            return Continue::Yes;
        }
        for t in exec.enabled_iter() {
            let preempt = last.is_some_and(|l| l != t && exec.is_enabled(l));
            let p = preemptions + u32::from(preempt);
            if let Some(bound) = self.config.preemption_bound {
                if p > bound {
                    self.collector.stats.bound_prunes += 1;
                    continue;
                }
            }
            let mut child = exec.clone();
            let out = child.step(t);
            self.schedule.push(t);
            let pushed = out.event.is_some();
            if let Some(e) = out.event {
                self.trace.push(e);
            }
            let cont = self.visit(&child, Some(t), p);
            if pushed {
                self.trace.pop();
            }
            self.schedule.pop();
            if cont == Continue::Stop {
                return Continue::Stop;
            }
        }
        Continue::Yes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::dfs::DfsEnumeration;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn counter_program(threads: usize) -> Program {
        let mut b = ProgramBuilder::new("counters");
        let x = b.var("x", 0);
        for i in 0..threads {
            b.thread(format!("T{i}"), |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0); // normalise registers out of the state
            });
        }
        b.build()
    }

    #[test]
    fn matches_sequential_dfs_exactly_when_exhaustive() {
        let p = counter_program(3);
        let cfg = ExploreConfig::with_limit(1_000_000);
        let seq = DfsEnumeration.explore(&p, &cfg);
        assert!(!seq.limit_hit);
        for workers in [1, 2, 4] {
            let par = ParallelDfs { workers }.explore(&p, &cfg);
            assert_eq!(par.schedules, seq.schedules, "workers={workers}");
            assert_eq!(par.unique_states, seq.unique_states);
            assert_eq!(par.unique_hbrs, seq.unique_hbrs);
            assert_eq!(par.unique_lazy_hbrs, seq.unique_lazy_hbrs);
            assert_eq!(par.events, seq.events);
        }
    }

    #[test]
    fn budget_is_respected_globally() {
        let p = counter_program(4);
        let par = ParallelDfs { workers: 4 }.explore(&p, &ExploreConfig::with_limit(100));
        assert!(par.schedules <= 100);
        assert!(par.limit_hit);
    }

    #[test]
    fn finds_bugs_in_parallel() {
        let mut b = ProgramBuilder::new("buggy");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| {
            t.load(Reg(0), x);
            t.assert_true(Reg(0), "must see the write");
        });
        let p = b.build();
        let stats = ParallelDfs { workers: 2 }.explore(&p, &ExploreConfig::with_limit(10_000));
        assert!(stats.found_bug());
        assert!(stats.faulted_schedules > 0);
    }

    #[test]
    fn tiny_programs_terminate_during_expansion() {
        let mut b = ProgramBuilder::new("tiny");
        b.thread("T", |_| {});
        let p = b.build();
        let stats = ParallelDfs { workers: 8 }.explore(&p, &ExploreConfig::with_limit(10));
        assert_eq!(stats.schedules, 1);
        assert_eq!(stats.unique_states, 1);
    }
}
