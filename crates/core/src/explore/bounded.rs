//! Iterative preemption bounding (CHESS-style context bounding).
//!
//! Explores the schedule tree in waves of increasing preemption budget:
//! first every schedule with 0 preemptive context switches, then 1, then 2…
//! Most real concurrency bugs manifest within one or two preemptions
//! (Musuvathi & Qadeer), so this ordering front-loads the schedules most
//! likely to expose them — and gives partial explorations a meaningful
//! coverage statement ("correct up to k preemptions") instead of an
//! arbitrary truncation.
//!
//! Each wave reuses the prefix-caching explorer (in the mode of
//! [`IterativeBounding::cache_mode`]) restricted to the wave's bound; the
//! schedule budget is shared across waves.

use crate::config::ExploreConfig;
use crate::explore::{Explorer, HbrCaching};
use crate::stats::ExploreStats;
use lazylocks_hbr::HbMode;
use lazylocks_model::Program;
use std::time::Instant;

/// The iterative preemption-bounding explorer.
#[derive(Debug, Clone, Copy)]
pub struct IterativeBounding {
    /// First preemption bound to try.
    pub start_bound: u32,
    /// Highest preemption bound to try (inclusive).
    pub max_bound: u32,
    /// Increment between waves (must be positive). A step above 1 trades
    /// the per-bound coverage statement for fewer re-explorations.
    pub bound_step: u32,
    /// Happens-before mode for the per-wave prefix cache. Lazy composes
    /// the paper's contribution with context bounding — exactly the
    /// setting of Musuvathi & Qadeer's HBR-caching report.
    pub cache_mode: HbMode,
}

impl Default for IterativeBounding {
    fn default() -> Self {
        IterativeBounding {
            start_bound: 0,
            max_bound: 3,
            bound_step: 1,
            cache_mode: HbMode::Lazy,
        }
    }
}

/// Result of an iterative run: the merged stats plus the per-wave detail.
#[derive(Debug, Clone)]
pub struct BoundedRun {
    /// Stats of the final (largest-bound) wave — cumulative over the whole
    /// schedule tree visible at that bound.
    pub final_stats: ExploreStats,
    /// `(bound, stats)` per completed wave, in order.
    pub waves: Vec<(u32, ExploreStats)>,
    /// The smallest preemption bound at which a bug appeared, if any.
    pub bug_bound: Option<u32>,
}

impl IterativeBounding {
    /// Runs waves of increasing bound until a bug is found (when
    /// `config.stop_on_bug`), the budget is spent, or `max_bound` is done.
    pub fn run(&self, program: &Program, config: &ExploreConfig) -> BoundedRun {
        let start = Instant::now();
        let mut waves: Vec<(u32, ExploreStats)> = Vec::new();
        let mut bug_bound = None;
        let mut remaining = config.schedule_limit;
        let step = self.bound_step.max(1) as usize;

        for bound in (self.start_bound..=self.max_bound).step_by(step) {
            if remaining == 0 {
                break;
            }
            if config.control.cancel_requested() {
                if let Some(&mut (_, ref mut s)) = waves.last_mut() {
                    s.cancelled = true;
                }
                break;
            }
            let mut wave_config = config.clone();
            wave_config.schedule_limit = remaining;
            wave_config.preemption_bound = Some(bound);
            let stats = HbrCaching {
                mode: self.cache_mode,
            }
            .explore(program, &wave_config);
            remaining = remaining.saturating_sub(stats.schedules);
            let found = stats.found_bug();
            waves.push((bound, stats));
            if found && bug_bound.is_none() {
                bug_bound = Some(bound);
                if config.stop_on_bug {
                    break;
                }
            }
            // A wave that was not cut short by the bound has seen the whole
            // tree: higher bounds cannot add anything.
            if waves
                .last()
                .is_some_and(|(_, s)| s.bound_prunes == 0 && !s.limit_hit)
            {
                break;
            }
        }

        let mut final_stats = waves.last().map(|(_, s)| s.clone()).unwrap_or_default();
        if waves.is_empty() && config.control.cancel_requested() {
            // Cancelled before the first wave could run: record the
            // truncation so the outcome is not mistaken for a clean finish.
            final_stats.cancelled = true;
        }
        final_stats.wall_time = start.elapsed();
        BoundedRun {
            final_stats,
            waves,
            bug_bound,
        }
    }
}

impl Explorer for IterativeBounding {
    fn name(&self) -> String {
        "bounded".to_string()
    }

    /// Runs the waves and reports the final wave's (cumulative) stats —
    /// the per-wave detail of [`IterativeBounding::run`] is collapsed, the
    /// total wall time is kept. A bug found in an *earlier* wave is
    /// carried over: the final wave shares its budget with its
    /// predecessors and may not re-reach the buggy schedule.
    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let run = self.run(program, config);
        let mut stats = run.final_stats;
        if stats.first_bug.is_none() {
            stats.first_bug = run.waves.into_iter().find_map(|(_, s)| s.first_bug);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn racy_counter() -> Program {
        let mut b = ProgramBuilder::new("racy");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0);
            });
        }
        b.build()
    }

    #[test]
    fn lost_update_found_at_bound_one() {
        // Turn the racy counter into an assertion so the bug is visible.
        let mut b = ProgramBuilder::new("racy-assert");
        let x = b.var("x", 0);
        let done = b.var("done", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.load(Reg(1), done);
                t.add(Reg(1), Reg(1), 1);
                t.store(done, Reg(1));
                // When I finish second, the counter must show 2 — false
                // under the lost update.
                let skip = t.label();
                t.ne(Reg(1), Reg(1), 2);
                t.branch_if(Reg(1), skip);
                t.load(Reg(0), x);
                t.eq(Reg(0), Reg(0), 2);
                t.assert_true(Reg(0), "lost update");
                t.bind(skip);
                t.set(Reg(0), 0);
                t.set(Reg(1), 0);
            });
        }
        let p = b.build();
        let run = IterativeBounding::default().run(&p, &ExploreConfig::with_limit(50_000));
        assert_eq!(run.bug_bound, Some(1), "one preemption exposes the race");
        // Wave 0 must have been clean.
        assert!(!run.waves[0].1.found_bug());
    }

    #[test]
    fn waves_stop_once_the_tree_is_fully_covered() {
        let p = racy_counter();
        let run = IterativeBounding {
            max_bound: 10,
            cache_mode: HbMode::Regular,
            ..IterativeBounding::default()
        }
        .run(&p, &ExploreConfig::with_limit(100_000));
        // The schedule tree has at most 3 preemptions; waves end early.
        assert!(run.waves.len() <= 5);
        let (_, last) = run.waves.last().unwrap();
        assert_eq!(last.bound_prunes, 0, "final wave saw the whole tree");
        assert_eq!(last.unique_states, 2, "both outcomes reached");
    }

    #[test]
    fn budget_is_shared_across_waves() {
        let p = racy_counter();
        let run = IterativeBounding::default().run(&p, &ExploreConfig::with_limit(4));
        let total: usize = run.waves.iter().map(|(_, s)| s.schedules).sum();
        assert!(total <= 4, "waves must share the schedule budget");
    }

    #[test]
    fn stop_on_bug_halts_at_the_bug_bound() {
        let mut b = ProgramBuilder::new("abba");
        let l0 = b.mutex("a");
        let l1 = b.mutex("b");
        b.thread("T1", |t| {
            t.lock(l0);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l0);
        });
        b.thread("T2", |t| {
            t.lock(l1);
            t.lock(l0);
            t.unlock(l0);
            t.unlock(l1);
        });
        let p = b.build();
        let run = IterativeBounding::default()
            .run(&p, &ExploreConfig::with_limit(50_000).stopping_on_bug());
        let bound = run.bug_bound.expect("deadlock found");
        assert!(
            bound <= 1,
            "the AB-BA deadlock needs at most one preemption"
        );
        assert_eq!(
            run.waves.last().unwrap().0,
            bound,
            "stopped at the bug wave"
        );
    }
}
