//! A small, fast, dependency-free pseudo-random generator.
//!
//! The exploration strategies only need reproducible schedule shuffling,
//! not cryptographic quality, so a SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA 2014 — the seeding generator of `java.util.SplittableRandom`
//! and the reference seeder for xoshiro) is plenty: it passes BigCrush,
//! costs a handful of arithmetic ops per draw, and keeps the workspace
//! free of external dependencies.

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `n / 2^64`, irrelevant for schedule selection.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range needs a non-empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_reference_values() {
        // Reference vector for seed 1234567 from the SplitMix64 paper's
        // published implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = SplitMix64::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
