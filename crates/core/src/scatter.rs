//! ASCII log-log scatter plots, in the style of the paper's Figures 2–3.
//!
//! Each benchmark is plotted as its id at `(x, y)` on logarithmic axes with
//! the diagonal marked — points below the diagonal are the benchmarks where
//! the y-axis technique wins. Pure text output, so the figure binaries can
//! render directly into a terminal or a report file.

use crate::report::Row;
use std::fmt::Write as _;

/// Renders a log-log scatter plot of `rows` with the given axis labels.
///
/// `width` and `height` are the plot body size in characters; ids longer
/// than one digit occupy several cells (clipped at the right edge). Points
/// whose benchmark hit the schedule limit are marked with a trailing `*`
/// in the legend.
pub fn scatter_plot(
    x_label: &str,
    y_label: &str,
    rows: &[Row],
    width: usize,
    height: usize,
) -> String {
    let max_val = rows.iter().map(|r| r.x.max(r.y)).max().unwrap_or(1).max(1) as f64;
    let log_max = max_val.ln_1p();

    // grid[y][x] holds a character; y = 0 is the top row.
    let mut grid = vec![vec![' '; width]; height];

    // Diagonal y = x.
    for i in 0..width.min(height) {
        let gx = i * (width - 1) / (width.min(height) - 1).max(1);
        let gy = i * (height - 1) / (width.min(height) - 1).max(1);
        grid[height - 1 - gy][gx] = '·';
    }

    let scale = |v: usize, extent: usize| -> usize {
        let f = (v as f64).ln_1p() / log_max;
        ((f * (extent - 1) as f64).round() as usize).min(extent - 1)
    };

    for r in rows {
        let gx = scale(r.x, width);
        let gy = scale(r.y, height);
        let label = r.id.to_string();
        // Shift multi-digit ids left at the right edge so they stay whole.
        let start = gx.min(width.saturating_sub(label.len()));
        let row = &mut grid[height - 1 - gy];
        for (k, ch) in label.chars().enumerate() {
            if start + k < width {
                row[start + k] = ch;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{y_label} (log) ↑");
    for line in &grid {
        let _ = writeln!(out, "  |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "  +{}", "-".repeat(width));
    let _ = writeln!(out, "   {x_label} (log) →   (max = {max_val:.0})");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: usize, x: usize, y: usize) -> Row {
        Row {
            id,
            name: format!("b{id}"),
            x,
            y,
            schedules: 0,
            limit_hit: false,
        }
    }

    #[test]
    fn plot_contains_labels_and_ids() {
        let plot = scatter_plot("#HBRs", "#lazy HBRs", &[row(7, 100, 10)], 40, 12);
        assert!(plot.contains("#HBRs (log)"));
        assert!(plot.contains("#lazy HBRs (log)"));
        assert!(plot.contains('7'));
        assert!(plot.contains('·'), "diagonal rendered");
    }

    #[test]
    fn extreme_points_stay_in_bounds() {
        let rows = vec![row(1, 1, 1), row(99, 1_000_000, 1)];
        let plot = scatter_plot("x", "y", &rows, 30, 10);
        for line in plot.lines() {
            assert!(line.chars().count() <= 34 + 30, "line too long: {line}");
        }
        assert!(plot.contains("99"));
    }

    #[test]
    fn empty_rows_render_axes_only() {
        let plot = scatter_plot("x", "y", &[], 20, 5);
        assert!(plot.contains("x (log)"));
    }
}
