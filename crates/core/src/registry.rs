//! The string-keyed strategy registry.
//!
//! Exploration strategies are addressed by **spec strings** of the form
//! `name` or `name(key=value, key=value)` — e.g. `dpor(sleep=true)`,
//! `parallel(workers=8)` or `bounded(start=0, step=1)`. A
//! [`StrategyRegistry`] maps canonical names to boxed [`Explorer`]
//! factories and resolves aliases (including every legacy
//! `Strategy`-enum name), so new strategies can be plugged in — by
//! downstream crates too — without touching any enum, parser or CLI
//! table.
//!
//! ```
//! use lazylocks::{ExploreConfig, StrategyRegistry};
//! use lazylocks_model::ProgramBuilder;
//!
//! let registry = StrategyRegistry::default();
//! let explorer = registry.create("dpor(sleep=true)").unwrap();
//!
//! let mut b = ProgramBuilder::new("p");
//! let x = b.var("x", 0);
//! b.thread("T1", |t| t.store(x, 1));
//! b.thread("T2", |t| t.store(x, 2));
//! let stats = explorer.explore(&b.build(), &ExploreConfig::with_limit(100));
//! assert_eq!(stats.unique_states, 2);
//! ```

use crate::explore::{
    DependenceMode, DfsEnumeration, Dpor, Explorer, HbrCaching, IterativeBounding, LazyDpor,
    LazyDporStyle, ParallelDfs, ParallelDpor, RandomWalk,
};
use lazylocks_hbr::HbMode;
use std::collections::BTreeMap;
use std::fmt;

/// Why a spec string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec does not match `name` / `name(k=v, …)`.
    Malformed {
        /// The offending spec.
        spec: String,
        /// What went wrong.
        reason: String,
    },
    /// No strategy or alias with this name is registered.
    UnknownStrategy {
        /// The unknown name.
        name: String,
        /// Every registered name and alias, for the error message.
        known: Vec<String>,
    },
    /// The strategy exists but does not take this parameter.
    UnknownParam {
        /// The strategy name.
        strategy: String,
        /// The rejected parameter key.
        param: String,
    },
    /// The parameter exists but the value does not parse.
    InvalidValue {
        /// The strategy name.
        strategy: String,
        /// The parameter key.
        param: String,
        /// The rejected value.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Malformed { spec, reason } => {
                write!(f, "malformed strategy spec {spec:?}: {reason}")
            }
            SpecError::UnknownStrategy { name, known } => {
                write!(f, "unknown strategy {name:?}; known: {}", known.join(", "))
            }
            SpecError::UnknownParam { strategy, param } => {
                write!(f, "strategy {strategy:?} takes no parameter {param:?}")
            }
            SpecError::InvalidValue {
                strategy,
                param,
                value,
                expected,
            } => write!(
                f,
                "invalid value {value:?} for {strategy}({param}=…): expected {expected}"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// A parsed spec: strategy name plus its remaining key=value parameters.
///
/// Factories *take* the parameters they understand; whatever is left when
/// the factory returns is reported as [`SpecError::UnknownParam`], so
/// typos fail loudly instead of silently running a default.
#[derive(Debug, Clone)]
pub struct SpecParams {
    name: String,
    params: BTreeMap<String, String>,
}

impl SpecParams {
    /// Parses `name` or `name(k=v, …)`.
    pub fn parse(spec: &str) -> Result<SpecParams, SpecError> {
        let malformed = |reason: &str| SpecError::Malformed {
            spec: spec.to_string(),
            reason: reason.to_string(),
        };
        let s = spec.trim();
        if s.is_empty() {
            return Err(malformed("empty spec"));
        }
        let (name, body) = match s.find('(') {
            None => (s, None),
            Some(open) => {
                let Some(rest) = s[open + 1..].strip_suffix(')') else {
                    return Err(malformed("missing closing parenthesis"));
                };
                (&s[..open], Some(rest))
            }
        };
        let name = name.trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(malformed("strategy names are [a-zA-Z0-9_-]+"));
        }
        let mut params = BTreeMap::new();
        if let Some(body) = body {
            for pair in body.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    // Tolerate `name()` and trailing commas.
                    continue;
                }
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(malformed("parameters are key=value pairs"));
                };
                let (k, v) = (k.trim(), v.trim());
                if k.is_empty() || v.is_empty() {
                    return Err(malformed("parameters are key=value pairs"));
                }
                if params.insert(k.to_string(), v.to_string()).is_some() {
                    return Err(malformed("duplicate parameter"));
                }
            }
        }
        Ok(SpecParams {
            name: name.to_string(),
            params,
        })
    }

    /// The strategy name of the spec.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Consumes a boolean parameter (`true`/`false`/`yes`/`no`/`1`/`0`).
    pub fn take_bool(&mut self, key: &str, default: bool) -> Result<bool, SpecError> {
        match self.params.remove(key) {
            None => Ok(default),
            Some(v) => match v.as_str() {
                "true" | "yes" | "1" | "on" => Ok(true),
                "false" | "no" | "0" | "off" => Ok(false),
                _ => Err(self.invalid(key, &v, "a boolean (true/false)")),
            },
        }
    }

    /// Consumes an unsigned-integer parameter.
    pub fn take_usize(&mut self, key: &str, default: usize) -> Result<usize, SpecError> {
        match self.params.remove(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| self.invalid(key, &v, "an unsigned integer")),
        }
    }

    /// Consumes a `u32` parameter.
    pub fn take_u32(&mut self, key: &str, default: u32) -> Result<u32, SpecError> {
        match self.params.remove(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| self.invalid(key, &v, "an unsigned integer")),
        }
    }

    /// Consumes an enumerated parameter; the value must be one of
    /// `choices`.
    pub fn take_choice(
        &mut self,
        key: &str,
        choices: &[&str],
        default: &str,
    ) -> Result<String, SpecError> {
        debug_assert!(choices.contains(&default));
        match self.params.remove(key) {
            None => Ok(default.to_string()),
            Some(v) if choices.contains(&v.as_str()) => Ok(v),
            Some(v) => Err(self.invalid(key, &v, &format!("one of {}", choices.join("/")))),
        }
    }

    fn invalid(&self, param: &str, value: &str, expected: &str) -> SpecError {
        SpecError::InvalidValue {
            strategy: self.name.clone(),
            param: param.to_string(),
            value: value.to_string(),
            expected: expected.to_string(),
        }
    }

    /// The first parameter a factory did not consume, if any.
    fn leftover(&self) -> Option<&String> {
        self.params.keys().next()
    }
}

/// A boxed constructor turning spec parameters into a ready explorer.
pub type ExplorerFactory =
    Box<dyn Fn(&mut SpecParams) -> Result<Box<dyn Explorer>, SpecError> + Send + Sync>;

struct Entry {
    help: &'static str,
    factory: ExplorerFactory,
}

/// Maps spec strings to [`Explorer`] factories.
///
/// [`StrategyRegistry::default`] registers the seven built-in strategy
/// families plus aliases for every legacy `Strategy`-enum name (including
/// both `dpor-sleep`/`dpor-nosleep` spellings); [`StrategyRegistry::empty`]
/// starts blank for fully custom harnesses. Registering a name that
/// already exists replaces the previous factory.
pub struct StrategyRegistry {
    entries: BTreeMap<String, Entry>,
    aliases: BTreeMap<String, String>,
}

impl Default for StrategyRegistry {
    fn default() -> Self {
        let mut r = StrategyRegistry::empty();

        r.register("dfs", "exhaustive depth-first enumeration", |p| {
            let _ = p;
            Ok(Box::new(DfsEnumeration))
        });
        r.register(
            "dpor",
            "dynamic partial-order reduction [sleep=bool, deps=regular/lazy-vars/lazy-locks]",
            |p| {
                let sleep_sets = p.take_bool("sleep", false)?;
                let dependence = match p
                    .take_choice("deps", &["regular", "lazy-vars", "lazy-locks"], "regular")?
                    .as_str()
                {
                    "lazy-vars" => DependenceMode::LazyVarsOnly,
                    "lazy-locks" => DependenceMode::LazyLockAcquisitions,
                    _ => DependenceMode::Regular,
                };
                Ok(Box::new(Dpor {
                    sleep_sets,
                    dependence,
                }))
            },
        );
        r.register(
            "caching",
            "prefix-HBR caching [mode=regular/lazy/sync]",
            |p| {
                let mode = match p
                    .take_choice("mode", &["regular", "lazy", "sync"], "regular")?
                    .as_str()
                {
                    "lazy" => HbMode::Lazy,
                    "sync" => HbMode::SyncOnly,
                    _ => HbMode::Regular,
                };
                Ok(Box::new(HbrCaching { mode }))
            },
        );
        r.register(
            "lazy-dpor",
            "prototype lazy DPOR (paper §4) [style=locks/vars]",
            |p| {
                let style = match p
                    .take_choice("style", &["locks", "vars"], "locks")?
                    .as_str()
                {
                    "vars" => LazyDporStyle::VarsOnly,
                    _ => LazyDporStyle::LockAcquisitions,
                };
                Ok(Box::new(LazyDpor { style }))
            },
        );
        r.register(
            "random",
            "uniform random walks (seed from the config)",
            |p| {
                let _ = p;
                Ok(Box::new(RandomWalk))
            },
        );
        r.register(
            "parallel",
            "work-stealing exploration across OS threads \
             [workers=N (0=auto), reduction=none/dpor/lazy, sleep=bool]",
            |p| {
                let workers = p.take_usize("workers", 0)?;
                match p
                    .take_choice("reduction", &["none", "dpor", "lazy"], "none")?
                    .as_str()
                {
                    "dpor" => {
                        let sleep_sets = p.take_bool("sleep", false)?;
                        Ok(Box::new(ParallelDpor {
                            workers,
                            sleep_sets,
                            dependence: DependenceMode::Regular,
                        }))
                    }
                    // Sleep sets stay off for the lazy reduction, exactly
                    // as in the sequential `lazy-dpor` (the open problem
                    // the paper's §4 states); `sleep=` is rejected as an
                    // unknown parameter.
                    "lazy" => Ok(Box::new(ParallelDpor {
                        workers,
                        sleep_sets: false,
                        dependence: DependenceMode::LazyLockAcquisitions,
                    })),
                    _ => Ok(Box::new(ParallelDfs { workers })),
                }
            },
        );
        r.register(
            "bounded",
            "CHESS-style iterative preemption bounding \
             [start=N, max=N, step=N, mode=regular/lazy/sync]",
            |p| {
                let start_bound = p.take_u32("start", 0)?;
                let max_bound = p.take_u32("max", 3)?;
                let bound_step = p.take_u32("step", 1)?;
                if bound_step == 0 {
                    return Err(SpecError::InvalidValue {
                        strategy: "bounded".to_string(),
                        param: "step".to_string(),
                        value: "0".to_string(),
                        expected: "a positive step".to_string(),
                    });
                }
                let cache_mode = match p
                    .take_choice("mode", &["regular", "lazy", "sync"], "lazy")?
                    .as_str()
                {
                    "regular" => HbMode::Regular,
                    "sync" => HbMode::SyncOnly,
                    _ => HbMode::Lazy,
                };
                Ok(Box::new(IterativeBounding {
                    start_bound,
                    max_bound,
                    bound_step,
                    cache_mode,
                }))
            },
        );

        // Legacy `Strategy`-enum names (and the historically advertised
        // `dpor-nosleep` spelling) stay available as aliases.
        r.alias("dpor-sleep", "dpor(sleep=true)");
        r.alias("dpor-nosleep", "dpor(sleep=false)");
        r.alias("lazy-caching", "caching(mode=lazy)");
        r.alias("sync-caching", "caching(mode=sync)");
        r.alias("lazy-dpor-vars", "lazy-dpor(style=vars)");
        r.alias("parallel-dfs", "parallel");
        r.alias("parallel-dpor", "parallel(reduction=dpor)");
        r.alias("parallel-lazy-dpor", "parallel(reduction=lazy)");
        r.alias("chess", "bounded");
        r
    }
}

impl StrategyRegistry {
    /// An empty registry (no strategies, no aliases).
    pub fn empty() -> Self {
        StrategyRegistry {
            entries: BTreeMap::new(),
            aliases: BTreeMap::new(),
        }
    }

    /// Registers (or replaces) a strategy factory under a canonical name.
    pub fn register(
        &mut self,
        name: &str,
        help: &'static str,
        factory: impl Fn(&mut SpecParams) -> Result<Box<dyn Explorer>, SpecError>
            + Send
            + Sync
            + 'static,
    ) {
        self.entries.insert(
            name.to_string(),
            Entry {
                help,
                factory: Box::new(factory),
            },
        );
    }

    /// Registers `alias` as shorthand for `target` (itself a spec string;
    /// parameters given with the alias are merged in on top).
    pub fn alias(&mut self, alias: &str, target: &str) {
        self.aliases.insert(alias.to_string(), target.to_string());
    }

    /// Builds the explorer described by `spec`.
    pub fn create(&self, spec: &str) -> Result<Box<dyn Explorer>, SpecError> {
        let mut parsed = SpecParams::parse(spec)?;
        // Resolve alias chains (bounded, to reject accidental cycles).
        for _ in 0..8 {
            let Some(target) = self.aliases.get(&parsed.name) else {
                break;
            };
            let base = SpecParams::parse(target)?;
            let user_params = std::mem::take(&mut parsed.params);
            parsed = base;
            // Parameters written with the alias override the baked ones.
            parsed.params.extend(user_params);
        }
        let Some(entry) = self.entries.get(&parsed.name) else {
            return Err(SpecError::UnknownStrategy {
                name: parsed.name,
                known: self.specs(),
            });
        };
        let explorer = (entry.factory)(&mut parsed)?;
        if let Some(param) = parsed.leftover() {
            return Err(SpecError::UnknownParam {
                strategy: parsed.name.clone(),
                param: param.clone(),
            });
        }
        Ok(explorer)
    }

    /// Every canonical strategy name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Every registered `(alias, target)` pair, sorted by alias.
    pub fn alias_table(&self) -> Vec<(String, String)> {
        self.aliases
            .iter()
            .map(|(a, t)| (a.clone(), t.clone()))
            .collect()
    }

    /// Every accepted spec name: canonical names plus aliases, sorted.
    pub fn specs(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .entries
            .keys()
            .chain(self.aliases.keys())
            .cloned()
            .collect();
        out.sort();
        out
    }

    /// `(name, help)` for every canonical strategy, for CLI listings.
    pub fn entries(&self) -> Vec<(String, &'static str)> {
        self.entries
            .iter()
            .map(|(name, e)| (name.clone(), e.help))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExploreConfig;
    use lazylocks_model::ProgramBuilder;

    fn tiny_program() -> lazylocks_model::Program {
        let mut b = ProgramBuilder::new("tiny");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        b.build()
    }

    #[test]
    fn default_registry_exposes_all_legacy_strategies() {
        let r = StrategyRegistry::default();
        for name in [
            "dfs",
            "dpor",
            "dpor-sleep",
            "caching",
            "lazy-caching",
            "lazy-dpor",
            "random",
            "parallel",
        ] {
            assert!(r.create(name).is_ok(), "{name} must resolve");
        }
    }

    #[test]
    fn every_advertised_spec_creates_a_working_explorer() {
        let r = StrategyRegistry::default();
        let p = tiny_program();
        for spec in r.specs() {
            let explorer = r.create(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            let stats = explorer.explore(&p, &ExploreConfig::with_limit(50));
            assert!(stats.schedules >= 1, "{spec} explored nothing");
        }
    }

    #[test]
    fn parameterised_specs_configure_the_explorer() {
        let r = StrategyRegistry::default();
        assert_eq!(r.create("dpor(sleep=true)").unwrap().name(), "dpor-sleep");
        assert_eq!(r.create("dpor(sleep=false)").unwrap().name(), "dpor");
        assert_eq!(r.create("dpor-nosleep").unwrap().name(), "dpor");
        assert_eq!(
            r.create("caching(mode=lazy)").unwrap().name(),
            "lazy-caching"
        );
        assert_eq!(
            r.create("lazy-dpor(style=vars)").unwrap().name(),
            "lazy-dpor-vars"
        );
        assert_eq!(
            r.create("parallel(workers=2)").unwrap().name(),
            "parallel-dfs"
        );
        assert_eq!(
            r.create("parallel(reduction=dpor, workers=2)")
                .unwrap()
                .name(),
            "parallel-dpor"
        );
        assert_eq!(
            r.create("parallel(reduction=dpor, sleep=true)")
                .unwrap()
                .name(),
            "parallel-dpor-sleep"
        );
        assert_eq!(
            r.create("parallel(reduction=lazy)").unwrap().name(),
            "parallel-lazy-dpor"
        );
        assert_eq!(r.create("parallel-dpor").unwrap().name(), "parallel-dpor");
        assert_eq!(
            r.create("parallel-lazy-dpor(workers=4)").unwrap().name(),
            "parallel-lazy-dpor"
        );
        // Sleep sets do not compose with the lazy reduction (nor with the
        // unreduced parallel DFS): the parameter is rejected.
        assert!(matches!(
            r.create("parallel(reduction=lazy, sleep=true)"),
            Err(SpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            r.create("parallel(sleep=true)"),
            Err(SpecError::UnknownParam { .. })
        ));
        assert_eq!(
            r.create("bounded(start=1, max=2)").unwrap().name(),
            "bounded"
        );
    }

    #[test]
    fn alias_params_merge_with_user_params() {
        let r = StrategyRegistry::default();
        // `dpor-sleep(deps=lazy-locks)` = alias target + extra parameter.
        let e = r.create("dpor-sleep(deps=lazy-locks)").unwrap();
        assert_eq!(e.name(), "lazy-dpor");
        // The alias parameter can also be overridden outright.
        let e = r.create("dpor-sleep(sleep=false)").unwrap();
        assert_eq!(e.name(), "dpor");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let r = StrategyRegistry::default();
        for bad in [
            "",
            "   ",
            "dpor(",
            "dpor)",
            "dpor(sleep)",
            "dpor(sleep=)",
            "dpor(=true)",
            "dpor(sleep=true,sleep=false)",
            "dp or",
        ] {
            assert!(
                matches!(r.create(bad), Err(SpecError::Malformed { .. })),
                "{bad:?} must be malformed"
            );
        }
    }

    #[test]
    fn unknown_names_params_and_values_are_rejected() {
        let r = StrategyRegistry::default();
        assert!(matches!(
            r.create("zen-garden"),
            Err(SpecError::UnknownStrategy { .. })
        ));
        assert!(matches!(
            r.create("dfs(workers=3)"),
            Err(SpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            r.create("dpor(sleep=maybe)"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            r.create("bounded(step=0)"),
            Err(SpecError::InvalidValue { .. })
        ));
        // Error messages name the offender.
        let Err(err) = r.create("zen-garden") else {
            panic!("unknown strategy must not resolve");
        };
        let err = err.to_string();
        assert!(err.contains("zen-garden") && err.contains("dpor"));
    }

    #[test]
    fn custom_strategies_can_be_registered() {
        struct Nop;
        impl Explorer for Nop {
            fn name(&self) -> String {
                "nop".to_string()
            }
            fn explore(
                &self,
                _: &lazylocks_model::Program,
                _: &ExploreConfig,
            ) -> crate::ExploreStats {
                crate::ExploreStats::default()
            }
        }
        let mut r = StrategyRegistry::empty();
        r.register("nop", "does nothing", |_| Ok(Box::new(Nop)));
        r.alias("noop", "nop");
        assert_eq!(r.create("noop").unwrap().name(), "nop");
        assert_eq!(r.names(), vec!["nop".to_string()]);
    }
}
