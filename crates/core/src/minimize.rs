//! Bug-schedule minimisation.
//!
//! A schedule recorded by an explorer reproduces its bug deterministically,
//! but often contains irrelevant context switches. [`minimize_schedule`]
//! shrinks it with replay-based delta debugging: repeatedly try removing
//! chunks of scheduling choices and keep any shortened schedule that still
//! exhibits *the same class of bug*. The result is typically close to the
//! minimal preemption pattern a human would write in a regression test.
//!
//! Removal works because [`run_schedule`] treats its input as a prefix:
//! deleted choices are re-filled deterministically (thread order), so every
//! candidate is a feasible complete run.

use crate::bug::{BugKind, BugReport};
use lazylocks_model::{Program, ThreadId};
use lazylocks_runtime::{run_schedule, RunStatus};

/// Does `schedule` still reproduce a bug of the same class as `kind`?
fn still_buggy(program: &Program, schedule: &[ThreadId], kind: &BugKind) -> bool {
    let Ok(run) = run_schedule(program, schedule) else {
        return false;
    };
    match kind {
        BugKind::Deadlock { .. } => matches!(run.status, RunStatus::Deadlock { .. }),
        BugKind::Fault(original) => run
            .faults
            .iter()
            .any(|f| f.thread == original.thread && f.kind == original.kind),
    }
}

/// Minimises the schedule of `report` by delta debugging (ddmin over the
/// choice list, then single-choice elimination). Returns a new report whose
/// schedule is no longer than the original and reproduces the same bug.
///
/// ```
/// use lazylocks::{minimize_schedule, Dpor, ExploreConfig, Explorer};
/// use lazylocks_model::ProgramBuilder;
///
/// // The classic AB-BA deadlock with noise around it.
/// let mut b = ProgramBuilder::new("abba");
/// let noise = b.var("noise", 0);
/// let l0 = b.mutex("l0");
/// let l1 = b.mutex("l1");
/// b.thread("T1", |t| {
///     t.store(noise, 1);
///     t.lock(l0);
///     t.lock(l1);
///     t.unlock(l1);
///     t.unlock(l0);
/// });
/// b.thread("T2", |t| {
///     t.store(noise, 2);
///     t.lock(l1);
///     t.lock(l0);
///     t.unlock(l0);
///     t.unlock(l1);
/// });
/// let program = b.build();
///
/// let stats = Dpor::default()
///     .explore(&program, &ExploreConfig::with_limit(10_000).stopping_on_bug());
/// let bug = stats.first_bug.unwrap();
/// let minimal = minimize_schedule(&program, &bug);
/// assert!(minimal.schedule.len() <= bug.schedule.len());
/// assert!(minimal.reproduce(&program).unwrap().status.is_deadlock());
/// ```
pub fn minimize_schedule(program: &Program, report: &BugReport) -> BugReport {
    let mut schedule = report.schedule.clone();
    debug_assert!(
        still_buggy(program, &schedule, &report.kind),
        "the input report must reproduce"
    );

    // Phase 1: ddmin-style chunk removal with shrinking granularity.
    let mut chunk = (schedule.len() / 2).max(1);
    while chunk >= 1 {
        let mut start = 0;
        let mut removed_any = false;
        while start < schedule.len() {
            let end = (start + chunk).min(schedule.len());
            let mut candidate = schedule.clone();
            candidate.drain(start..end);
            if still_buggy(program, &candidate, &report.kind) {
                schedule = candidate;
                removed_any = true;
                // Retry the same position: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }

    // Phase 2: trim the feasible-prefix tail — trailing choices that the
    // deterministic completion re-creates anyway.
    while !schedule.is_empty() {
        let candidate = &schedule[..schedule.len() - 1];
        if still_buggy(program, candidate, &report.kind) {
            schedule.pop();
        } else {
            break;
        }
    }

    let run = run_schedule(program, &schedule).expect("minimised schedule replays");
    BugReport {
        kind: report.kind.clone(),
        schedule,
        trace_len: run.trace.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExploreConfig;
    use crate::explore::{Dpor, Explorer};
    use lazylocks_model::{ProgramBuilder, Reg};

    fn find_bug(program: &Program) -> BugReport {
        Dpor::default()
            .explore(
                program,
                &ExploreConfig::with_limit(50_000).stopping_on_bug(),
            )
            .first_bug
            .expect("program must have a bug")
    }

    #[test]
    fn minimised_deadlock_still_deadlocks() {
        let bench = philosophers(3);
        let bug = find_bug(&bench);
        let minimal = minimize_schedule(&bench, &bug);
        assert!(minimal.schedule.len() <= bug.schedule.len());
        let run = minimal.reproduce(&bench).unwrap();
        assert!(run.status.is_deadlock());
    }

    #[test]
    fn minimised_assertion_failure_keeps_the_fault() {
        let mut b = ProgramBuilder::new("buggy");
        let x = b.var("x", 0);
        let noise = b.var("noise", 0);
        b.thread("T1", |t| {
            // Irrelevant noise before the relevant write.
            t.repeat(4, |t, i| t.store(noise, i as i64));
            t.store(x, 1);
        });
        b.thread("T2", |t| {
            t.repeat(4, |t, i| t.store(noise, 10 + i as i64));
            t.load(Reg(0), x);
            t.assert_true(Reg(0), "x must be set");
        });
        let p = b.build();
        let bug = find_bug(&p);
        let minimal = minimize_schedule(&p, &bug);
        let run = minimal.reproduce(&p).unwrap();
        assert!(
            run.faults
                .iter()
                .any(|f| f.to_string().contains("x must be set")),
            "minimised schedule keeps the fault"
        );
        assert!(minimal.schedule.len() <= bug.schedule.len());
    }

    #[test]
    fn empty_tail_is_trimmed() {
        // A bug reproducible by the empty schedule (thread-order completion
        // already fails) minimises to an empty choice list.
        let mut b = ProgramBuilder::new("always");
        let x = b.var("x", 0);
        b.thread("T1", |t| {
            t.load(Reg(0), x);
            t.assert_true(Reg(0), "always fails first");
        });
        b.thread("T2", |t| t.store(x, 1));
        let p = b.build();
        let bug = find_bug(&p);
        let minimal = minimize_schedule(&p, &bug);
        assert!(minimal.schedule.is_empty());
        assert!(!minimal.reproduce(&p).unwrap().faults.is_empty());
    }

    /// Local philosophers builder (the suite crate depends on this crate,
    /// so tests here cannot use the corpus).
    fn philosophers(n: usize) -> Program {
        let mut b = ProgramBuilder::new("philosophers");
        let forks = b.mutex_array("fork", n);
        let plates = b.var_array("plate", n, 0);
        for i in 0..n {
            let left = forks[i];
            let right = forks[(i + 1) % n];
            let plate = plates[i];
            b.thread(format!("P{i}"), move |t| {
                t.lock(left);
                t.lock(right);
                t.store(plate, (i + 1) as i64);
                t.unlock(right);
                t.unlock(left);
            });
        }
        b.build()
    }
}
