//! # lazylocks — systematic concurrency testing with the lazy happens-before relation
//!
//! A Rust reproduction of *“The Lazy Happens-Before Relation: Better
//! Partial-Order Reduction for Systematic Concurrency Testing”* (Thomson &
//! Donaldson, PPoPP 2015), complete with every substrate the paper's
//! `LAZYLOCKS` tool relies on:
//!
//! * a guest-program model and deterministic controlled scheduler
//!   ([`lazylocks_model`], [`lazylocks_runtime`]);
//! * vector clocks and the regular / lazy / sync-only happens-before
//!   engines ([`lazylocks_clock`], [`lazylocks_hbr`]);
//! * exploration strategies: exhaustive DFS, **DPOR** (Flanagan–Godefroid
//!   with sleep sets), **HBR caching** and **lazy HBR caching**
//!   (Musuvathi–Qadeer style), a prototype **lazy DPOR** (the paper's §4
//!   future work), random walks, a parallel DFS and CHESS-style iterative
//!   preemption bounding ([`explore`]);
//! * safety-property checkers: deadlocks, assertion failures, and a
//!   happens-before data-race detector ([`race`]);
//! * statistics matching the paper's evaluation: schedules, unique terminal
//!   states, unique terminal HBRs and lazy HBRs, with the §3 inequality
//!   `#states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules` checked throughout.
//!
//! ## Quick start
//!
//! Explorations run through an [`ExploreSession`]: it owns a program plus
//! an [`ExploreConfig`], takes strategies as **registry spec strings**
//! (`dpor(sleep=true)`, `caching(mode=lazy)`, `parallel(workers=8)`, …),
//! supports [`Observer`] hooks, wall-clock deadlines and cooperative
//! cancellation, and returns a structured [`ExploreOutcome`]:
//!
//! ```
//! use lazylocks::{ExploreConfig, ExploreSession, Verdict};
//! use lazylocks_model::{ProgramBuilder, Reg};
//!
//! // The paper's Figure 1: two threads, a mutex, disjoint extra writes.
//! let mut b = ProgramBuilder::new("figure1");
//! let x = b.var("x", 0);
//! let y = b.var("y", 0);
//! let z = b.var("z", 0);
//! let m = b.mutex("m");
//! b.thread("T1", |t| {
//!     t.lock(m);
//!     t.load(Reg(0), x);
//!     t.unlock(m);
//!     t.store(y, Reg(0));
//! });
//! b.thread("T2", |t| {
//!     t.store(z, 1);
//!     t.lock(m);
//!     t.load(Reg(0), x);
//!     t.unlock(m);
//! });
//! let program = b.build();
//!
//! let session = ExploreSession::new(&program)
//!     .with_config(ExploreConfig::with_limit(10_000));
//!
//! // DPOR distinguishes the two lock orders (two regular HBR classes)...
//! let outcome = session.run_spec("dpor").unwrap();
//! assert_eq!(outcome.verdict, Verdict::Clean);
//! assert_eq!(outcome.stats.unique_hbrs, 2);       // two lock orders
//! assert_eq!(outcome.stats.unique_lazy_hbrs, 1);  // ...but a single lazy class
//! assert_eq!(outcome.stats.unique_states, 1);     // ...reaching a single state
//!
//! // ...while lazy HBR caching needs a single schedule for this program.
//! let outcome = session.run_spec("caching(mode=lazy)").unwrap();
//! assert_eq!(outcome.stats.schedules, 1);
//! ```
//!
//! Strategies can still be constructed and run directly (the
//! [`Explorer`] trait is unchanged), and custom strategies join the party
//! by registering a factory in a [`StrategyRegistry`]:
//!
//! ```
//! use lazylocks::{Dpor, ExploreConfig, Explorer, StrategyRegistry};
//! # use lazylocks_model::ProgramBuilder;
//! # let mut b = ProgramBuilder::new("p");
//! # let x = b.var("x", 0);
//! # b.thread("T1", |t| t.store(x, 1));
//! # let program = b.build();
//!
//! let mut registry = StrategyRegistry::default();
//! registry.register("my-dpor", "sleep-set DPOR shorthand", |_| {
//!     Ok(Box::new(Dpor { sleep_sets: true, ..Dpor::default() }))
//! });
//! let stats = registry
//!     .create("my-dpor")
//!     .unwrap()
//!     .explore(&program, &ExploreConfig::with_limit(100));
//! assert_eq!(stats.schedules, 1);
//! ```

mod bug;
pub mod checkpoint;
mod config;
pub mod explore;
mod minimize;
pub mod race;
mod registry;
pub mod report;
pub mod rng;
pub mod scatter;
mod session;
mod stats;

pub use bug::{BugKind, BugReport};
pub use checkpoint::{CheckpointState, FrameSets};
pub use config::ExploreConfig;
pub use explore::{
    BoundedRun, DependenceMode, DfsEnumeration, Dpor, Explorer, HbrCaching, IterativeBounding,
    LazyDpor, LazyDporStyle, ParallelDfs, ParallelDpor, RandomWalk,
};
pub use minimize::minimize_schedule;
pub use race::{detect_races, is_race_free, RaceReport};
pub use registry::{ExplorerFactory, SpecError, SpecParams, StrategyRegistry};
pub use session::{
    CancelToken, ExploreControl, ExploreOutcome, ExploreSession, Observer, Progress, Verdict,
};
pub use stats::ExploreStats;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use lazylocks_clock as clock;
pub use lazylocks_hbr as hbr;
pub use lazylocks_model as model;
pub use lazylocks_obs as obs;
pub use lazylocks_runtime as runtime;

// The metrics switch appears directly on [`ExploreConfig`], so surface
// its types at the crate root too.
pub use lazylocks_obs::{MetricsHandle, MetricsSnapshot, ProfileHandle, ProfileSnapshot};
