//! # lazylocks — systematic concurrency testing with the lazy happens-before relation
//!
//! A Rust reproduction of *“The Lazy Happens-Before Relation: Better
//! Partial-Order Reduction for Systematic Concurrency Testing”* (Thomson &
//! Donaldson, PPoPP 2015), complete with every substrate the paper's
//! `LAZYLOCKS` tool relies on:
//!
//! * a guest-program model and deterministic controlled scheduler
//!   ([`lazylocks_model`], [`lazylocks_runtime`]);
//! * vector clocks and the regular / lazy / sync-only happens-before
//!   engines ([`lazylocks_clock`], [`lazylocks_hbr`]);
//! * exploration strategies: exhaustive DFS, **DPOR** (Flanagan–Godefroid
//!   with sleep sets), **HBR caching** and **lazy HBR caching**
//!   (Musuvathi–Qadeer style), a prototype **lazy DPOR** (the paper's §4
//!   future work), random walks, and a parallel DFS ([`explore`]);
//! * safety-property checkers: deadlocks, assertion failures, and a
//!   happens-before data-race detector ([`race`]);
//! * statistics matching the paper's evaluation: schedules, unique terminal
//!   states, unique terminal HBRs and lazy HBRs, with the §3 inequality
//!   `#states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules` checked throughout.
//!
//! ## Quick start
//!
//! ```
//! use lazylocks::{ExploreConfig, Explorer, HbrCaching, Dpor};
//! use lazylocks_model::{ProgramBuilder, Reg};
//!
//! // The paper's Figure 1: two threads, a mutex, disjoint extra writes.
//! let mut b = ProgramBuilder::new("figure1");
//! let x = b.var("x", 0);
//! let y = b.var("y", 0);
//! let z = b.var("z", 0);
//! let m = b.mutex("m");
//! b.thread("T1", |t| {
//!     t.lock(m);
//!     t.load(Reg(0), x);
//!     t.unlock(m);
//!     t.store(y, Reg(0));
//! });
//! b.thread("T2", |t| {
//!     t.store(z, 1);
//!     t.lock(m);
//!     t.load(Reg(0), x);
//!     t.unlock(m);
//! });
//! let program = b.build();
//!
//! let config = ExploreConfig::with_limit(10_000);
//! let stats = Dpor::default().explore(&program, &config);
//! assert_eq!(stats.unique_hbrs, 2);       // two lock orders
//! assert_eq!(stats.unique_lazy_hbrs, 1);  // ...but a single lazy class
//! assert_eq!(stats.unique_states, 1);     // ...reaching a single state
//!
//! // Lazy HBR caching needs a single schedule for this program.
//! let stats = HbrCaching::lazy().explore(&program, &config);
//! assert_eq!(stats.schedules, 1);
//! ```

mod bug;
mod config;
pub mod explore;
mod minimize;
pub mod race;
pub mod report;
pub mod scatter;
mod stats;

pub use bug::{BugKind, BugReport};
pub use config::ExploreConfig;
pub use explore::{
    BoundedRun, DependenceMode, DfsEnumeration, Dpor, Explorer, HbrCaching, IterativeBounding,
    LazyDpor, LazyDporStyle, ParallelDfs, RandomWalk, Strategy,
};
pub use minimize::minimize_schedule;
pub use race::{detect_races, is_race_free, RaceReport};
pub use stats::ExploreStats;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use lazylocks_clock as clock;
pub use lazylocks_hbr as hbr;
pub use lazylocks_model as model;
pub use lazylocks_runtime as runtime;
