//! The session-based exploration entry point.
//!
//! [`ExploreSession`] owns a program plus an [`ExploreConfig`] and runs any
//! [`Explorer`](crate::Explorer) — usually one built from a
//! [`StrategyRegistry`](crate::StrategyRegistry) spec string — under
//! observation: pluggable [`Observer`] hooks receive progress ticks and bug
//! reports, a wall-clock deadline or a shared [`CancelToken`] stops the
//! exploration cooperatively, and the result comes back as a structured
//! [`ExploreOutcome`] instead of a bare counter block.
//!
//! ```
//! use lazylocks::{ExploreConfig, ExploreSession, Verdict};
//! use lazylocks_model::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new("two-writers");
//! let x = b.var("x", 0);
//! b.thread("T1", |t| t.store(x, 1));
//! b.thread("T2", |t| t.store(x, 2));
//! let program = b.build();
//!
//! let outcome = ExploreSession::new(&program)
//!     .with_config(ExploreConfig::with_limit(1_000))
//!     .run_spec("dpor(sleep=true)")
//!     .unwrap();
//! assert_eq!(outcome.verdict, Verdict::Clean);
//! assert_eq!(outcome.strategy_id, "dpor-sleep");
//! assert_eq!(outcome.stats.unique_states, 2);
//! ```

use crate::bug::BugReport;
use crate::checkpoint::CheckpointState;
use crate::config::ExploreConfig;
use crate::explore::Explorer;
use crate::registry::{SpecError, StrategyRegistry};
use crate::stats::ExploreStats;
use lazylocks_model::Program;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cheap, clonable cooperative-cancellation handle.
///
/// Clones share one flag: cancelling any clone cancels them all. Every
/// explorer's main loop polls the flag (through its
/// [`Collector`](crate::ExploreStats)) and winds down at the next
/// scheduling point, recording the truncation in
/// [`ExploreStats::cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A progress snapshot handed to [`Observer::on_progress`].
#[derive(Debug, Clone)]
pub struct Progress {
    /// Complete schedules recorded so far across the whole exploration
    /// (all workers, for parallel strategies).
    pub schedules: usize,
    /// Events executed by the reporting worker so far.
    pub events: u64,
    /// Distinct terminal states seen by the reporting worker so far.
    pub unique_states: usize,
    /// Bugs (deadlocks + faults) seen by the reporting worker so far.
    pub bugs: usize,
}

/// Hooks into a running exploration.
///
/// All methods have no-op defaults; implement what you need. Observers are
/// shared across worker threads (parallel strategies call them
/// concurrently), hence the `Send + Sync` bound.
pub trait Observer: Send + Sync {
    /// Called every `progress_every` complete schedules (see
    /// [`ExploreSession::progress_every`]).
    fn on_progress(&self, progress: &Progress) {
        let _ = progress;
    }

    /// Called once for every buggy terminal execution (deadlock or fault),
    /// with a replayable report.
    fn on_bug(&self, bug: &BugReport) {
        let _ = bug;
    }

    /// Polled by every explorer's main loop alongside the cancellation
    /// token; return `true` to stop the exploration cooperatively.
    fn should_stop(&self) -> bool {
        false
    }

    /// Called with a resumable frontier snapshot every
    /// [`ExploreConfig::checkpoint_every`] schedules (sequential DPOR
    /// only). Persist it to survive a crash — see
    /// `lazylocks_trace::CheckpointWriter`.
    ///
    /// [`ExploreConfig::checkpoint_every`]: crate::ExploreConfig::checkpoint_every
    fn on_checkpoint(&self, checkpoint: &CheckpointState) {
        let _ = checkpoint;
    }
}

/// Shared run control carried inside [`ExploreConfig`]: cancellation
/// token, wall-clock deadline and observer fan-out.
///
/// The default value is inert (no token, no deadline, no observers) and
/// costs one `Option` check per terminal. [`ExploreSession`] installs a
/// live control for the duration of a run; explorers only ever consume it
/// through their `Collector`.
#[derive(Clone, Default)]
pub struct ExploreControl(Option<Arc<ControlInner>>);

struct ControlInner {
    cancel: CancelToken,
    deadline: Option<Instant>,
    observers: Vec<Arc<dyn Observer>>,
    /// Fire `on_progress` every this many schedules (0 = never).
    progress_every: usize,
    /// Global schedule counter, shared across parallel workers.
    schedules: AtomicUsize,
}

impl fmt::Debug for ExploreControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("ExploreControl(inert)"),
            Some(inner) => f
                .debug_struct("ExploreControl")
                .field("deadline", &inner.deadline)
                .field("observers", &inner.observers.len())
                .field("progress_every", &inner.progress_every)
                .finish(),
        }
    }
}

impl ExploreControl {
    /// A live control. Most users should go through [`ExploreSession`];
    /// this constructor exists for embedding the control machinery in
    /// custom harnesses.
    pub fn new(
        cancel: CancelToken,
        deadline: Option<Instant>,
        observers: Vec<Arc<dyn Observer>>,
        progress_every: usize,
    ) -> Self {
        ExploreControl(Some(Arc::new(ControlInner {
            cancel,
            deadline,
            observers,
            progress_every,
            schedules: AtomicUsize::new(0),
        })))
    }

    /// `true` once the token is cancelled, the deadline has passed, or any
    /// observer votes to stop.
    pub fn cancel_requested(&self) -> bool {
        let Some(inner) = &self.0 else {
            return false;
        };
        inner.cancel.is_cancelled()
            || inner.deadline.is_some_and(|d| Instant::now() >= d)
            || inner.observers.iter().any(|o| o.should_stop())
    }

    /// Bumps the shared schedule counter and fires a progress tick when
    /// due. Called by the `Collector` for every complete schedule.
    pub(crate) fn note_schedule(&self, stats: &ExploreStats) {
        let Some(inner) = &self.0 else {
            return;
        };
        let n = inner.schedules.fetch_add(1, Ordering::Relaxed) + 1;
        if inner.progress_every > 0 && n % inner.progress_every == 0 {
            let progress = Progress {
                schedules: n,
                events: stats.events,
                unique_states: stats.unique_states,
                bugs: stats.deadlocks + stats.faulted_schedules,
            };
            for o in &inner.observers {
                o.on_progress(&progress);
            }
        }
    }

    /// Fans a bug report out to every observer.
    pub(crate) fn note_bug(&self, bug: &BugReport) {
        let Some(inner) = &self.0 else {
            return;
        };
        for o in &inner.observers {
            o.on_bug(bug);
        }
    }

    /// Fans a frontier snapshot out to every observer.
    pub(crate) fn note_checkpoint(&self, checkpoint: &CheckpointState) {
        let Some(inner) = &self.0 else {
            return;
        };
        for o in &inner.observers {
            o.on_checkpoint(checkpoint);
        }
    }
}

/// How an exploration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Ran to natural completion without finding a bug.
    Clean,
    /// At least one bug (deadlock or assertion/fault) was found.
    BugFound,
    /// The schedule budget ran out before the tree was covered.
    LimitHit,
    /// Stopped early by the cancellation token, deadline or an observer.
    Cancelled,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Clean => "clean",
            Verdict::BugFound => "bug-found",
            Verdict::LimitHit => "limit-hit",
            Verdict::Cancelled => "cancelled",
        })
    }
}

/// The structured result of a session run.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The full counter block the strategy produced.
    pub stats: ExploreStats,
    /// Every distinct bug observed (deduplicated by kind, capped at
    /// [`ExploreSession::max_recorded_bugs`]), each with a replayable
    /// schedule. When `stats.first_bug` is set it equals `bugs.first()`.
    pub bugs: Vec<BugReport>,
    /// How the exploration ended.
    pub verdict: Verdict,
    /// The stable name of the strategy that ran (its `Explorer::name`).
    pub strategy_id: String,
}

impl ExploreOutcome {
    /// `true` if any bug was found.
    pub fn found_bug(&self) -> bool {
        self.verdict == Verdict::BugFound
    }
}

/// Internal observer that accumulates bug reports for the outcome.
struct BugSink {
    cap: usize,
    bugs: Mutex<Vec<BugReport>>,
}

impl Observer for BugSink {
    fn on_bug(&self, bug: &BugReport) {
        let mut bugs = self.bugs.lock().unwrap();
        if bugs.len() < self.cap && !bugs.iter().any(|b| b.kind == bug.kind) {
            bugs.push(bug.clone());
        }
    }
}

/// Builder-style owner of one exploration: program + config + observation.
///
/// A session is reusable: each [`ExploreSession::run`] call starts a fresh
/// exploration with a fresh deadline (the cancellation token, however, is
/// shared — once cancelled, every subsequent run stops immediately, which
/// is what a user hitting Ctrl-C expects).
pub struct ExploreSession<'p> {
    program: &'p Program,
    config: ExploreConfig,
    observers: Vec<Arc<dyn Observer>>,
    progress_every: usize,
    deadline: Option<Duration>,
    cancel: CancelToken,
    max_recorded_bugs: usize,
}

impl<'p> ExploreSession<'p> {
    /// A session over `program` with the default [`ExploreConfig`].
    pub fn new(program: &'p Program) -> Self {
        ExploreSession {
            program,
            config: ExploreConfig::default(),
            observers: Vec::new(),
            progress_every: 1_000,
            deadline: None,
            cancel: CancelToken::new(),
            max_recorded_bugs: 64,
        }
    }

    /// Replaces the exploration config (budget, bounds, seed, …).
    pub fn with_config(mut self, config: ExploreConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches an observer. May be called repeatedly; observers are
    /// notified in attachment order.
    pub fn observe(self, observer: impl Observer + 'static) -> Self {
        self.observe_arc(Arc::new(observer))
    }

    /// Attaches an already-shared observer.
    pub fn observe_arc(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Fires [`Observer::on_progress`] every `n` complete schedules
    /// (default 1000; 0 disables ticks).
    pub fn progress_every(mut self, n: usize) -> Self {
        self.progress_every = n;
        self
    }

    /// Stops the exploration once this much wall-clock time has elapsed,
    /// measured from the [`ExploreSession::run`] call.
    pub fn deadline(mut self, after: Duration) -> Self {
        self.deadline = Some(after);
        self
    }

    /// Caps [`ExploreOutcome::bugs`] (default 64).
    pub fn max_recorded_bugs(mut self, cap: usize) -> Self {
        self.max_recorded_bugs = cap;
        self
    }

    /// A handle for cancelling this session from another thread (or a
    /// signal handler). Cancel it and every running strategy winds down at
    /// its next scheduling point.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Replaces the session's cancellation token with an externally owned
    /// one, so a caller holding `token` can cancel a run it did not build
    /// — a job runner cancelling from another thread, say — without
    /// threading an observer through.
    pub fn cancel_with(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Runs `explorer` under this session's config and observation.
    pub fn run(&self, explorer: &dyn Explorer) -> ExploreOutcome {
        let sink = Arc::new(BugSink {
            cap: self.max_recorded_bugs,
            bugs: Mutex::new(Vec::new()),
        });
        let mut observers = self.observers.clone();
        observers.push(sink.clone());

        let mut config = self.config.clone();
        config.control = ExploreControl::new(
            self.cancel.clone(),
            self.deadline.map(|d| Instant::now() + d),
            observers,
            self.progress_every,
        );

        let stats = explorer.explore(self.program, &config);
        let bugs = std::mem::take(&mut *sink.bugs.lock().unwrap());
        // The bug sink hears every buggy terminal, even ones a composite
        // strategy (e.g. iterative bounding) drops from its merged stats —
        // any collected bug makes the verdict BugFound.
        let verdict = if stats.found_bug() || !bugs.is_empty() {
            Verdict::BugFound
        } else if stats.cancelled {
            Verdict::Cancelled
        } else if stats.limit_hit {
            Verdict::LimitHit
        } else {
            Verdict::Clean
        };
        ExploreOutcome {
            stats,
            bugs,
            verdict,
            strategy_id: explorer.name(),
        }
    }

    /// Builds the strategy named by `spec` from the default
    /// [`StrategyRegistry`] and runs it.
    pub fn run_spec(&self, spec: &str) -> Result<ExploreOutcome, SpecError> {
        self.run_with(&StrategyRegistry::default(), spec)
    }

    /// Builds the strategy named by `spec` from `registry` and runs it.
    pub fn run_with(
        &self,
        registry: &StrategyRegistry,
        spec: &str,
    ) -> Result<ExploreOutcome, SpecError> {
        Ok(self.run(registry.create(spec)?.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{DfsEnumeration, Dpor};
    use lazylocks_model::{ProgramBuilder, Reg};

    /// A program with a schedule space far too big to exhaust quickly.
    fn wide_program(threads: usize) -> Program {
        let mut b = ProgramBuilder::new("wide");
        let x = b.var("x", 0);
        for i in 0..threads {
            b.thread(format!("T{i}"), |t| {
                t.load(Reg(0), x);
                t.add(Reg(0), Reg(0), 1);
                t.store(x, Reg(0));
                t.set(Reg(0), 0);
            });
        }
        b.build()
    }

    fn buggy_program() -> Program {
        let mut b = ProgramBuilder::new("buggy");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| {
            t.load(Reg(0), x);
            t.assert_true(Reg(0), "x must be set");
        });
        b.build()
    }

    #[test]
    fn clean_run_reports_clean_verdict() {
        let p = wide_program(2);
        let outcome = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(100_000))
            .run(&DfsEnumeration);
        assert_eq!(outcome.verdict, Verdict::Clean);
        assert!(outcome.bugs.is_empty());
        assert_eq!(outcome.strategy_id, "dfs");
        assert!(!outcome.stats.cancelled);
    }

    #[test]
    fn limit_hit_verdict() {
        let p = wide_program(5);
        let outcome = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(10))
            .run(&DfsEnumeration);
        assert_eq!(outcome.verdict, Verdict::LimitHit);
        assert_eq!(outcome.stats.schedules, 10);
    }

    #[test]
    fn bug_sink_collects_reports() {
        let p = buggy_program();
        let outcome = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(1_000))
            .run(&DfsEnumeration);
        assert_eq!(outcome.verdict, Verdict::BugFound);
        assert!(outcome.found_bug());
        assert!(!outcome.bugs.is_empty());
        assert_eq!(
            outcome.stats.first_bug.as_ref().unwrap().kind,
            outcome.bugs[0].kind
        );
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let p = wide_program(5);
        let session = ExploreSession::new(&p).with_config(ExploreConfig::with_limit(1_000_000));
        session.cancel_token().cancel();
        let outcome = session.run(&DfsEnumeration);
        assert_eq!(outcome.verdict, Verdict::Cancelled);
        assert!(outcome.stats.cancelled);
        assert!(
            outcome.stats.schedules <= 1,
            "a pre-cancelled session must stop at the first check, saw {}",
            outcome.stats.schedules
        );
    }

    #[test]
    fn zero_deadline_cancels_dfs_before_the_limit() {
        let p = wide_program(6);
        let outcome = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(usize::MAX))
            .deadline(Duration::ZERO)
            .run(&DfsEnumeration);
        assert_eq!(outcome.verdict, Verdict::Cancelled);
        assert!(outcome.stats.cancelled);
    }

    #[test]
    fn observer_vote_stops_dpor() {
        struct StopAfter(AtomicUsize);
        impl Observer for StopAfter {
            fn on_progress(&self, _: &Progress) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn should_stop(&self) -> bool {
                self.0.load(Ordering::Relaxed) >= 3
            }
        }
        let p = wide_program(6);
        let outcome = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(usize::MAX))
            .progress_every(10)
            .observe(StopAfter(AtomicUsize::new(0)))
            .run(&Dpor::default());
        assert_eq!(outcome.verdict, Verdict::Cancelled);
        assert!(
            outcome.stats.schedules < 100,
            "observer vote must stop DPOR early, saw {} schedules",
            outcome.stats.schedules
        );
    }

    #[test]
    fn progress_ticks_fire_at_the_requested_cadence() {
        struct Ticks(Mutex<Vec<usize>>);
        impl Observer for Ticks {
            fn on_progress(&self, p: &Progress) {
                self.0.lock().unwrap().push(p.schedules);
            }
        }
        let ticks = Arc::new(Ticks(Mutex::new(Vec::new())));
        let p = wide_program(3);
        let outcome = ExploreSession::new(&p)
            .with_config(ExploreConfig::with_limit(80))
            .progress_every(20)
            .observe_arc(ticks.clone())
            .run(&DfsEnumeration);
        assert_eq!(outcome.stats.schedules, 80);
        assert_eq!(*ticks.0.lock().unwrap(), vec![20, 40, 60, 80]);
    }
}
