//! Exploration statistics and the shared terminal-state collector.

use crate::bug::{BugKind, BugReport};
use crate::checkpoint::CheckpointState;
use crate::config::ExploreConfig;
use lazylocks_hbr::{ClockEngine, HbMode};
use lazylocks_model::{Program, ThreadId};
use lazylocks_obs::{ids, pack_prefix, MetricsShard, ProfileDims, ProfileLeaf};
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::collections::HashSet;
use std::time::Duration;

/// Counters reported by every exploration strategy.
///
/// The four headline counters obey the paper's §3 inequality on every
/// benchmark (asserted by [`ExploreStats::check_inequality`] and by the
/// integration test suite):
///
/// ```text
/// #states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules ≤ schedule_limit
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Complete schedules executed.
    pub schedules: usize,
    /// Total visible events executed (across all schedules).
    pub events: u64,
    /// Distinct terminal states (fingerprints).
    pub unique_states: usize,
    /// Distinct terminal regular happens-before relations.
    pub unique_hbrs: usize,
    /// Distinct terminal lazy happens-before relations.
    pub unique_lazy_hbrs: usize,
    /// Terminal executions that deadlocked.
    pub deadlocks: usize,
    /// Terminal executions with at least one fault.
    pub faulted_schedules: usize,
    /// Longest schedule seen.
    pub max_depth: usize,
    /// `true` if the schedule limit stopped the exploration (the
    /// "underlined benchmark" marker of the paper's figures).
    pub limit_hit: bool,
    /// `true` if the exploration was stopped early by a cancellation
    /// token, wall-clock deadline or observer vote (see
    /// [`ExploreSession`](crate::ExploreSession)) — the cooperative
    /// counterpart of `limit_hit`.
    pub cancelled: bool,
    /// Subtrees pruned by the prefix-HBR cache (caching strategies only).
    pub cache_prunes: usize,
    /// Subtrees pruned by sleep sets (DPOR only).
    pub sleep_prunes: usize,
    /// Choices skipped by the preemption bound.
    pub bound_prunes: usize,
    /// Runs abandoned for exceeding `max_run_length`.
    pub truncated_runs: usize,
    /// Earlier events examined as race-partner candidates by DPOR's race
    /// detection (other strategies leave it 0). With the indexed detector
    /// this counts only actual dependence candidates — per-variable
    /// accesses and per-mutex acquisitions — rather than the full trace
    /// per step, so it grows with conflict density, not depth².
    pub events_compared: u64,
    /// Subtree roots taken off the shared work deque by the parallel DPOR
    /// engine (including the initial root item, so a single-worker run
    /// reports 1). Other strategies leave it 0.
    pub subtrees_stolen: u64,
    /// Frame bodies served from the frame pool's free list instead of
    /// being heap-cloned (DPOR-family strategies; other strategies leave
    /// it 0). In the steady state this tracks the step count: every push
    /// beyond the first full-depth descent is a pool hit.
    pub frames_pooled: u64,
    /// Worker threads the strategy ran with (0 for single-threaded
    /// strategies).
    pub workers: u32,
    /// The first bug found, with a replayable schedule.
    pub first_bug: Option<BugReport>,
    /// One witness schedule per distinct terminal state, populated only
    /// when [`ExploreConfig::collect_state_witnesses`] is set.
    ///
    /// [`ExploreConfig::collect_state_witnesses`]: crate::ExploreConfig::collect_state_witnesses
    pub state_witnesses: Vec<(u128, Vec<ThreadId>)>,
    /// One witness schedule per distinct terminal regular HBR, populated
    /// only when `collect_state_witnesses` is set.
    pub hbr_witnesses: Vec<(u128, Vec<ThreadId>)>,
    /// Wall-clock time of the exploration.
    pub wall_time: Duration,
}

impl ExploreStats {
    /// Asserts the paper's counting inequality; returns an error message on
    /// violation. (When `truncated_runs > 0` the relation between runs and
    /// relations is no longer meaningful, so the check is skipped.)
    pub fn check_inequality(&self) -> Result<(), String> {
        if self.truncated_runs > 0 {
            return Ok(());
        }
        let chain = [
            ("#states", self.unique_states),
            ("#lazy HBRs", self.unique_lazy_hbrs),
            ("#HBRs", self.unique_hbrs),
            ("#schedules", self.schedules),
        ];
        for w in chain.windows(2) {
            let ((na, a), (nb, b)) = (w[0], w[1]);
            if a > b {
                return Err(format!("{na} = {a} exceeds {nb} = {b}"));
            }
        }
        Ok(())
    }

    /// `true` if any bug (deadlock or fault) was observed.
    pub fn found_bug(&self) -> bool {
        self.first_bug.is_some()
    }

    /// Complete schedules per wall-clock second — the headline throughput
    /// of an exploration (0.0 when no time was measured).
    pub fn execs_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.schedules as f64 / secs
        } else {
            0.0
        }
    }

    /// Visible events executed per wall-clock second (0.0 when no time
    /// was measured).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// Shared leaf-processing for all strategies: counts schedules, classifies
/// terminal relations and states, records bugs, and signals when the
/// schedule budget is exhausted.
pub(crate) struct Collector {
    config: ExploreConfig,
    states: HashSet<u128>,
    hbrs: HashSet<u128>,
    lazy_hbrs: HashSet<u128>,
    /// Reusable clock engines for terminal-trace fingerprints (one per
    /// relation mode), allocated on first use and reset per trace — leaf
    /// processing stays off the allocator.
    hbr_engine: Option<ClockEngine>,
    lazy_engine: Option<ClockEngine>,
    pub(crate) stats: ExploreStats,
    /// This collector's metrics shard (inert when the config's handle is
    /// disabled). Per-schedule counters mirror live in
    /// [`Collector::record_terminal`]; counters that strategies write
    /// straight into [`Collector::stats`] mirror as deltas in
    /// [`Collector::sync_metrics`].
    shard: MetricsShard,
    /// This collector's profiler leaf shard (inert when the config's
    /// profile handle is disabled): per-HBR-class redundancy, subtree
    /// spans and depth buckets, recorded once per terminal execution.
    profile: ProfileLeaf,
    /// Stats values already mirrored to the shard, so repeated syncs (and
    /// merged-in collectors that synced themselves) are not re-counted.
    mirrored: MirroredCounters,
}

/// The dense slab shape the profiler needs for `program` — per-thread
/// instruction counts plus variable and mutex counts.
pub(crate) fn profile_dims(program: &Program) -> ProfileDims {
    ProfileDims {
        thread_ins: program
            .threads()
            .iter()
            .map(|t| t.code.len() as u32)
            .collect(),
        vars: program.vars().len() as u32,
        mutexes: program.mutexes().len() as u32,
    }
}

/// The stats fields mirrored to metrics lazily rather than at the point
/// of increment (strategies bump them directly on [`Collector::stats`]).
#[derive(Debug, Clone, Copy, Default)]
struct MirroredCounters {
    sleep_prunes: usize,
    cache_prunes: usize,
    bound_prunes: usize,
    events_compared: u64,
    frames_pooled: u64,
}

/// Whether exploration should continue after a leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Continue {
    Yes,
    /// Budget exhausted or stop-on-bug triggered.
    Stop,
}

impl Collector {
    pub(crate) fn new(config: &ExploreConfig) -> Self {
        let shard = config.metrics.shard();
        Collector::with_shard(config, shard)
    }

    /// A collector recording into a worker-labelled shard — the parallel
    /// explorer's per-worker breakdowns.
    pub(crate) fn new_for_worker(config: &ExploreConfig, worker: u32) -> Self {
        let shard = config.metrics.worker_shard(worker);
        Collector::with_shard(config, shard)
    }

    fn with_shard(config: &ExploreConfig, shard: MetricsShard) -> Self {
        Collector {
            config: config.clone(),
            states: HashSet::new(),
            hbrs: HashSet::new(),
            lazy_hbrs: HashSet::new(),
            hbr_engine: None,
            lazy_engine: None,
            stats: ExploreStats::default(),
            shard,
            profile: config.profile.leaf_shard(),
            mirrored: MirroredCounters::default(),
        }
    }

    pub(crate) fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// The collector's metrics shard — strategies clone it to time their
    /// own phases on the same series.
    pub(crate) fn shard(&self) -> &MetricsShard {
        &self.shard
    }

    /// `true` once the schedule budget is used up.
    pub(crate) fn budget_exhausted(&self) -> bool {
        self.stats.schedules >= self.config.schedule_limit
    }

    /// Cooperative cancellation poll, called by every strategy's main
    /// loop: `true` once the config's control (token, deadline or an
    /// observer vote) asks the exploration to stop. Records the
    /// truncation in [`ExploreStats::cancelled`].
    pub(crate) fn cancel_requested(&mut self) -> bool {
        if self.stats.cancelled {
            return true;
        }
        if self.config.control.cancel_requested() {
            self.stats.cancelled = true;
            return true;
        }
        false
    }

    /// Records one terminal execution.
    pub(crate) fn record_terminal(
        &mut self,
        program: &Program,
        exec: &Executor,
        trace: &[Event],
        schedule: &[ThreadId],
    ) -> Continue {
        self.stats.schedules += 1;
        self.stats.events += trace.len() as u64;
        self.stats.max_depth = self.stats.max_depth.max(trace.len());
        self.shard.inc(ids::SCHEDULES);
        self.shard.add(ids::EVENTS, trace.len() as u64);
        self.shard.observe(ids::SCHEDULE_DEPTH, trace.len() as u64);

        if self.config.collect_states {
            let fp = exec.state_fingerprint();
            if self.states.insert(fp) && self.config.collect_state_witnesses {
                self.stats.state_witnesses.push((fp, schedule.to_vec()));
            }
            self.stats.unique_states = self.states.len();
        }
        // The profiler's redundancy accounting reuses the terminal
        // fingerprints, so compute each relation once whether the stats
        // columns, the profiler, or both want it.
        let profiling = self.profile.is_enabled();
        let mut fp_regular = None;
        if self.config.collect_hbrs || profiling {
            let fp = self
                .hbr_engine
                .get_or_insert_with(|| ClockEngine::for_program(HbMode::Regular, program))
                .trace_fingerprint(trace);
            fp_regular = Some(fp);
            if self.config.collect_hbrs {
                if self.hbrs.insert(fp) && self.config.collect_state_witnesses {
                    self.stats.hbr_witnesses.push((fp, schedule.to_vec()));
                }
                self.stats.unique_hbrs = self.hbrs.len();
            }
        }
        let mut fp_lazy = None;
        if self.config.collect_lazy_hbrs || profiling {
            let fp = self
                .lazy_engine
                .get_or_insert_with(|| ClockEngine::for_program(HbMode::Lazy, program))
                .trace_fingerprint(trace);
            fp_lazy = Some(fp);
            if self.config.collect_lazy_hbrs {
                self.lazy_hbrs.insert(fp);
                self.stats.unique_lazy_hbrs = self.lazy_hbrs.len();
            }
        }
        if profiling {
            let key = pack_prefix(schedule.iter().map(|t| t.index() as u32));
            self.profile
                .record_leaf(trace.len() as u64, key, fp_regular, fp_lazy);
        }

        let mut bug: Option<BugKind> = None;
        if let ExecPhase::Deadlock { waiting } = exec.phase() {
            self.stats.deadlocks += 1;
            self.shard.inc(ids::DEADLOCKS);
            bug = Some(BugKind::Deadlock { waiting });
        }
        if !exec.faults().is_empty() {
            self.stats.faulted_schedules += 1;
            self.shard.inc(ids::FAULTS);
            if bug.is_none() {
                bug = Some(BugKind::Fault(exec.faults()[0].clone()));
            }
        }
        if let Some(kind) = bug {
            self.shard.inc(ids::BUGS);
            let report = BugReport {
                kind,
                schedule: schedule.to_vec(),
                trace_len: trace.len(),
            };
            self.config.control.note_bug(&report);
            if self.stats.first_bug.is_none() {
                self.stats.first_bug = Some(report);
            }
            if self.config.stop_on_bug {
                return Continue::Stop;
            }
        }

        self.config.control.note_schedule(&self.stats);
        if self.cancel_requested() {
            return Continue::Stop;
        }
        if self.budget_exhausted() {
            self.stats.limit_hit = true;
            return Continue::Stop;
        }
        Continue::Yes
    }

    /// Records a run abandoned for exceeding the run-length cap.
    pub(crate) fn record_truncated(&mut self) {
        self.stats.truncated_runs += 1;
        self.shard.inc(ids::TRUNCATED_RUNS);
    }

    /// Copies the accumulated statistics and fingerprint sets into `cp`
    /// (fingerprints sorted, so the serialised checkpoint is
    /// deterministic). Wall time is excluded — it restarts on resume.
    pub(crate) fn export_checkpoint(&self, cp: &mut CheckpointState) {
        fn sorted(set: &HashSet<u128>) -> Vec<u128> {
            let mut v: Vec<u128> = set.iter().copied().collect();
            v.sort_unstable();
            v
        }
        cp.stats = self.stats.clone();
        cp.stats.wall_time = Duration::ZERO;
        cp.states = sorted(&self.states);
        cp.hbrs = sorted(&self.hbrs);
        cp.lazy_hbrs = sorted(&self.lazy_hbrs);
    }

    /// Restores statistics and fingerprint sets from a checkpoint. The
    /// mirrored counters are aligned with the restored values so the
    /// metrics shard reports only work done by *this* process — the
    /// prefix's counters were already exported by the run that wrote the
    /// checkpoint.
    pub(crate) fn seed_from_checkpoint(&mut self, cp: &CheckpointState) {
        self.stats = cp.stats.clone();
        self.stats.wall_time = Duration::ZERO;
        self.states = cp.states.iter().copied().collect();
        self.hbrs = cp.hbrs.iter().copied().collect();
        self.lazy_hbrs = cp.lazy_hbrs.iter().copied().collect();
        self.mirrored = MirroredCounters {
            sleep_prunes: self.stats.sleep_prunes,
            cache_prunes: self.stats.cache_prunes,
            bound_prunes: self.stats.bound_prunes,
            events_compared: self.stats.events_compared,
            frames_pooled: self.stats.frames_pooled,
        };
    }

    /// Mirrors the stats counters that strategies bump directly (prune
    /// counts, race-detection comparisons, pool hits) to the metrics
    /// shard, as deltas since the previous sync — idempotent, and safe
    /// around [`Collector::merge`].
    fn sync_metrics(&mut self) {
        let deltas: [(lazylocks_obs::MetricId, u64); 5] = [
            (
                ids::SLEEP_PRUNES,
                (self.stats.sleep_prunes - self.mirrored.sleep_prunes) as u64,
            ),
            (
                ids::CACHE_PRUNES,
                (self.stats.cache_prunes - self.mirrored.cache_prunes) as u64,
            ),
            (
                ids::BOUND_PRUNES,
                (self.stats.bound_prunes - self.mirrored.bound_prunes) as u64,
            ),
            (
                ids::EVENTS_COMPARED,
                self.stats.events_compared - self.mirrored.events_compared,
            ),
            (
                ids::FRAMES_POOLED,
                self.stats.frames_pooled - self.mirrored.frames_pooled,
            ),
        ];
        for (id, delta) in deltas {
            if delta > 0 {
                self.shard.add(id, delta);
            }
        }
        self.mirrored = MirroredCounters {
            sleep_prunes: self.stats.sleep_prunes,
            cache_prunes: self.stats.cache_prunes,
            bound_prunes: self.stats.bound_prunes,
            events_compared: self.stats.events_compared,
            frames_pooled: self.stats.frames_pooled,
        };
    }

    /// Finalises the stats (strategies add their wall time themselves).
    pub(crate) fn into_stats(mut self) -> ExploreStats {
        self.sync_metrics();
        self.stats
    }

    /// Merges another collector's raw sets and counters into this one
    /// (used by the parallel explorer).
    pub(crate) fn merge(&mut self, mut other: Collector) {
        // The other collector flushes its own shard first; its
        // contribution then counts as already mirrored here, so a later
        // sync on `self` adds only `self`'s own increments.
        other.sync_metrics();
        self.mirrored.sleep_prunes += other.stats.sleep_prunes;
        self.mirrored.cache_prunes += other.stats.cache_prunes;
        self.mirrored.bound_prunes += other.stats.bound_prunes;
        self.mirrored.events_compared += other.stats.events_compared;
        self.mirrored.frames_pooled += other.stats.frames_pooled;
        self.states.extend(other.states);
        self.hbrs.extend(other.hbrs);
        self.lazy_hbrs.extend(other.lazy_hbrs);
        self.stats.schedules += other.stats.schedules;
        self.stats.events += other.stats.events;
        self.stats.deadlocks += other.stats.deadlocks;
        self.stats.faulted_schedules += other.stats.faulted_schedules;
        self.stats.max_depth = self.stats.max_depth.max(other.stats.max_depth);
        self.stats.limit_hit |= other.stats.limit_hit;
        self.stats.cancelled |= other.stats.cancelled;
        self.stats.cache_prunes += other.stats.cache_prunes;
        self.stats.sleep_prunes += other.stats.sleep_prunes;
        self.stats.bound_prunes += other.stats.bound_prunes;
        self.stats.truncated_runs += other.stats.truncated_runs;
        self.stats.events_compared += other.stats.events_compared;
        self.stats.subtrees_stolen += other.stats.subtrees_stolen;
        self.stats.frames_pooled += other.stats.frames_pooled;
        self.stats.workers = self.stats.workers.max(other.stats.workers);
        if self.stats.first_bug.is_none() {
            self.stats.first_bug = other.stats.first_bug;
        }
        self.stats
            .state_witnesses
            .extend(other.stats.state_witnesses);
        self.stats.hbr_witnesses.extend(other.stats.hbr_witnesses);
        self.stats.unique_states = self.states.len();
        self.stats.unique_hbrs = self.hbrs.len();
        self.stats.unique_lazy_hbrs = self.lazy_hbrs.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inequality_check_passes_on_consistent_counts() {
        let stats = ExploreStats {
            schedules: 10,
            unique_states: 2,
            unique_lazy_hbrs: 3,
            unique_hbrs: 5,
            ..ExploreStats::default()
        };
        assert!(stats.check_inequality().is_ok());
    }

    #[test]
    fn inequality_check_catches_violations() {
        let stats = ExploreStats {
            schedules: 10,
            unique_states: 7,
            unique_lazy_hbrs: 3,
            unique_hbrs: 5,
            ..ExploreStats::default()
        };
        let err = stats.check_inequality().unwrap_err();
        assert!(err.contains("#states"));
    }

    #[test]
    fn inequality_check_skipped_when_truncated() {
        let stats = ExploreStats {
            schedules: 1,
            unique_states: 5,
            truncated_runs: 1,
            ..ExploreStats::default()
        };
        assert!(stats.check_inequality().is_ok());
    }
}
